//! Differential equivalence suite for the arena-backed EIG engine.
//!
//! Campaigns sharing one oracle ([`degradable::reference_eval`], the
//! per-receiver recursive evaluator preserved verbatim):
//!
//! 1. **Exhaustive** — for every E10-certified shape (`1/1` on 4 nodes,
//!    `1/2` on 5 nodes), every sender position, every fault set of size
//!    `0..=u`, and *every* deterministic adversary table over
//!    `{V_d, 1, 2}` (the exact space [`degradable::certify`] explores,
//!    enumerated through the same [`choice_points`] function), the
//!    engine's decisions must be bit-identical to the reference — and,
//!    on the 4-node shape, bit-identical across 1/2/8 resolve workers.
//!    The early-stop + packed-VOTE engine is held to the same oracle
//!    over the same complete table space (DESIGN.md §5h soundness).
//! 2. **Randomized protocol sweep** — `N ∈ {7..13}` with `m ∈ {1, 2}`
//!    under random PR-2 link-chaos plans (drops, duplicates, reorders,
//!    cuts): [`run_protocol_full`] exposes every receiver's materialized
//!    [`EigView`]; re-resolving each view with the recursive fold must
//!    reproduce the shared-arena decision for that receiver exactly,
//!    chaos notwithstanding — both folds consume the same store, so any
//!    divergence is an engine bug, not a network artifact.

use degradable::adversary::{choice_points, Strategy};
use degradable::{
    reference_eval, run_protocol_full, AgreementValue, ByzInstance, Params, Path, Val,
};
use simnet::linkfault::{LinkFaultKind, LinkFaultPlan};
use simnet::{NodeId, SimRng};
use std::collections::{BTreeMap, BTreeSet};

/// Enumerates all `k`-subsets of `0..n` (mirrors `certify`'s private
/// helper).
fn subsets(n: usize, k: usize) -> Vec<BTreeSet<NodeId>> {
    fn rec(
        start: usize,
        n: usize,
        k: usize,
        acc: &mut Vec<usize>,
        out: &mut Vec<BTreeSet<NodeId>>,
    ) {
        if acc.len() == k {
            out.push(acc.iter().map(|&i| NodeId::new(i)).collect());
            return;
        }
        for v in start..n {
            acc.push(v);
            rec(v + 1, n, k, acc, out);
            acc.pop();
        }
    }
    let mut out = Vec::new();
    rec(0, n, k, &mut Vec::new(), &mut out);
    out
}

/// Calls `f` once per assignment of `domain_len` values to `points`
/// positions (the same odometer `ExhaustiveSearch` drives).
fn for_each_table(points: usize, domain_len: usize, mut f: impl FnMut(&[usize])) {
    let mut odo = vec![0usize; points];
    loop {
        f(&odo);
        let mut i = 0;
        loop {
            if i == points {
                return;
            }
            odo[i] += 1;
            if odo[i] < domain_len {
                break;
            }
            odo[i] = 0;
            i += 1;
        }
    }
}

/// Exhausts the full E10 space for one shape and differentially checks
/// every table. Returns the number of adversary tables executed.
fn exhaust_shape(n: usize, m: usize, u: usize, check_workers: bool) -> u64 {
    let domain = [Val::Default, Val::Value(1), Val::Value(2)];
    let params = Params::new(m, u).expect("u >= m");
    let mut tables = 0u64;
    for sender_idx in 0..n {
        let sender = NodeId::new(sender_idx);
        let instance = ByzInstance::new(n, params, sender).expect("n at the bound");
        let engine = instance.engine();
        let wide = [
            instance.engine().with_workers(2),
            instance.engine().with_workers(8),
        ];
        for f in 0..=u {
            for faulty in subsets(n, f) {
                // The optimized executor: certified-fault-set pruning
                // plus the bitpacked VOTE path, rebuilt per fault set
                // (the early-stop mask is per-run state). Its decisions
                // must match the oracle for EVERY adversary drawn from
                // `faulty` — the soundness claim of DESIGN.md §5h,
                // checked here over the complete table space.
                let pruned = instance
                    .engine()
                    .with_early_stop(&faulty)
                    .with_packed_vote();
                let points = choice_points(&instance, &faulty);
                for_each_table(points.len(), domain.len(), |odo| {
                    tables += 1;
                    let table: BTreeMap<(Path, NodeId), Val> = points
                        .iter()
                        .enumerate()
                        .map(|(i, p)| (p.clone(), domain[odo[i]]))
                        .collect();
                    let mut fabricate = |path: &Path, r: NodeId, _t: &Val| {
                        table
                            .get(&(path.clone(), r))
                            .copied()
                            .unwrap_or(AgreementValue::Default)
                    };
                    let oracle = reference_eval(
                        n,
                        sender,
                        instance.depth(),
                        instance.rule(),
                        &Val::Value(1),
                        &faulty,
                        &mut fabricate,
                    )
                    .decisions;
                    let run = instance.run_engine(&engine, &Val::Value(1), &faulty, &mut fabricate);
                    assert_eq!(
                        run.decisions, oracle,
                        "engine diverged from reference: n={n} m={m} u={u} \
                         sender={sender} faulty={faulty:?} table={table:?}"
                    );
                    let prun =
                        instance.run_engine(&pruned, &Val::Value(1), &faulty, &mut fabricate);
                    assert_eq!(
                        prun.decisions, oracle,
                        "early-stop + packed engine diverged from reference: \
                         n={n} m={m} u={u} sender={sender} faulty={faulty:?} table={table:?}"
                    );
                    if check_workers {
                        for w in &wide {
                            let wrun =
                                instance.run_engine(w, &Val::Value(1), &faulty, &mut fabricate);
                            assert_eq!(wrun.decisions, oracle, "workers={}", w.workers());
                            assert_eq!(
                                wrun.perf.deterministic_counters(),
                                run.perf.deterministic_counters(),
                                "counters must not depend on worker count"
                            );
                        }
                    }
                });
            }
        }
    }
    tables
}

#[test]
fn full_e10_space_n4_m1_u1_bit_identical() {
    // The classic OM(1) shape, fully exhausted, and additionally checked
    // across 1/2/8 resolve workers (decisions and counters).
    let tables = exhaust_shape(4, 1, 1, true);
    // 4 senders x (empty + sender-faulty 3^3 + three non-sender 3^2).
    assert_eq!(tables, 4 * (1 + 27 + 3 * 9));
}

#[test]
fn full_e10_space_n5_m1_u2_bit_identical() {
    // The paper's running example at the u = 2 bound: the exact space
    // certify(Params::new(1, 2), 5, ..) explores.
    let tables = exhaust_shape(5, 1, 2, false);
    // Per sender: empty (1) + sender alone (3^4) + four others (3^3)
    // + four sender-pairs (3^7) + six other-pairs (3^6).
    assert_eq!(tables, 5 * (1 + 81 + 4 * 27 + 4 * 2187 + 6 * 729));
}

/// A random link-chaos plan in the PR-2 vocabulary: a handful of faulty
/// directed links with drops, duplicates, reorders, or round-cuts.
fn random_plan(n: usize, rng: &mut SimRng) -> LinkFaultPlan {
    let mut plan = LinkFaultPlan::healthy();
    for _ in 0..(1 + rng.below(6)) {
        let from = NodeId::new(rng.below(n as u64) as usize);
        let to = NodeId::new(rng.below(n as u64) as usize);
        if from == to {
            continue;
        }
        let kind = match rng.below(4) {
            0 => LinkFaultKind::Drop { p: 0.5 },
            1 => LinkFaultKind::Duplicate { p: 0.7 },
            2 => LinkFaultKind::Reorder { window: 2 },
            _ => LinkFaultKind::Cut {
                from_round: rng.below(3) as usize,
            },
        };
        plan = plan.with(from, to, kind);
    }
    plan
}

#[test]
fn early_stop_packed_matches_reference_across_random_adversaries() {
    // Randomized differential at protocol scale: N ∈ {7..13}, m ∈ {1, 2},
    // random fault sets that may include the sender (the case where
    // certified-fault pruning fires below the root even with faults
    // present), random battery strategies. The early-stop + packed
    // engine must be bit-identical to reference_eval on every draw.
    let mut rng = SimRng::seed(0xE19_0DD);
    let mut saved_total = 0u64;
    for n in 7..=13usize {
        for m in [1usize, 2] {
            let params = Params::new(m, m).expect("u = m");
            let instance = ByzInstance::new(n, params, NodeId::new(0)).expect("n >= 3m + 1");
            for trial in 0..4usize {
                let battery = Strategy::battery(3, 9, rng.below(u64::MAX));
                // Trial 0 is fault-free (the expected case pruning
                // targets); later trials draw up to m + u faults over
                // ALL nodes, sender included.
                let fault_count = if trial == 0 {
                    0
                } else {
                    rng.below(2 * m as u64 + 1) as usize
                };
                let strategies: BTreeMap<NodeId, Strategy<u64>> = rng
                    .choose_indices(n, fault_count)
                    .into_iter()
                    .map(|i| {
                        let strategy = rng.pick(&battery).expect("non-empty").1.clone();
                        (NodeId::new(i), strategy)
                    })
                    .collect();
                let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
                let mut fabricate = |path: &Path, r: NodeId, truthful: &Val| {
                    strategies
                        .get(&path.last())
                        .expect("fabricate only called for faulty relayers")
                        .claim(path, r, truthful)
                };
                let oracle = reference_eval(
                    n,
                    instance.sender(),
                    instance.depth(),
                    instance.rule(),
                    &Val::Value(7),
                    &faulty,
                    &mut fabricate,
                )
                .decisions;
                let pruned = instance
                    .engine()
                    .with_early_stop(&faulty)
                    .with_packed_vote();
                let run = instance.run_engine(&pruned, &Val::Value(7), &faulty, &mut fabricate);
                assert_eq!(
                    run.decisions, oracle,
                    "early-stop + packed diverged: n={n} m={m} faulty={faulty:?}"
                );
                if faulty.is_empty() {
                    assert!(
                        run.perf.messages_saved > 0,
                        "fault-free runs must prune: n={n} m={m}"
                    );
                }
                saved_total += run.perf.messages_saved;
            }
        }
    }
    assert!(saved_total > 0);
}

#[test]
fn early_stop_chaos_transport_folds_are_internally_consistent() {
    // Early stopping under PR-2 link chaos: dropped or reordered
    // envelopes change what honest nodes observe, so decisions need not
    // match an unpruned run — but every receiver's decision must still
    // be exactly the pruned recursive fold of its OWN materialized
    // view, and fault-free runs must still report real savings.
    use transport::{run_kind_with, LinkChaos, MeshConfig, RunOptions, TransportKind};
    let mut rng = SimRng::seed(0xE19_C405);
    for n in [5usize, 7, 9] {
        for m in [1usize, 2] {
            if n < 3 * m + 1 {
                continue;
            }
            let params = Params::new(m, m).expect("u = m");
            let instance = ByzInstance::new(n, params, NodeId::new(0)).expect("n >= 3m + 1");
            for trial in 0..3usize {
                let battery = Strategy::battery(3, 9, rng.below(u64::MAX));
                let fault_count = if trial == 0 {
                    0
                } else {
                    rng.below(m as u64 + 1) as usize
                };
                let strategies: BTreeMap<NodeId, Strategy<u64>> = rng
                    .choose_indices(n - 1, fault_count)
                    .into_iter()
                    .map(|i| {
                        let strategy = rng.pick(&battery).expect("non-empty").1.clone();
                        (NodeId::new(i + 1), strategy)
                    })
                    .collect();
                let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
                let chaos = LinkChaos::new(random_plan(n, &mut rng), rng.below(u64::MAX));
                let run = run_kind_with(
                    TransportKind::Sim,
                    &instance,
                    Val::Value(7),
                    &strategies,
                    chaos,
                    MeshConfig::default(),
                    RunOptions::early_stop(),
                )
                .expect("sim transport cannot fail");
                for (r, view) in &run.views {
                    if *r == instance.sender() {
                        // The sender decides its own value directly; its
                        // view holds no relays to fold.
                        continue;
                    }
                    let folded = view.resolve_pruned(instance.sender(), instance.rule(), &faulty);
                    assert_eq!(
                        run.decisions.get(r),
                        Some(&folded),
                        "pruned transport decision diverged from the pruned fold of \
                         receiver {r}'s own view: n={n} m={m} faulty={faulty:?}"
                    );
                }
                if faulty.is_empty() {
                    assert!(
                        run.messages_saved > 0,
                        "fault-free chaos runs must still prune: n={n} m={m}"
                    );
                }
            }
        }
    }
}

#[test]
fn randomized_chaos_sweep_matches_per_receiver_folds() {
    let mut rng = SimRng::seed(0xE19_E14);
    for n in 7..=13usize {
        for m in [1usize, 2] {
            let params = Params::new(m, m).expect("u = m");
            let sender = NodeId::new(rng.below(n as u64) as usize);
            let instance = ByzInstance::new(n, params, sender).expect("n >= 3m + 1");
            for _ in 0..3 {
                // Random battery strategies on up to m + u non-sender nodes.
                let battery = Strategy::battery(3, 9, rng.below(u64::MAX));
                let fault_count = rng.below(2 * m as u64 + 1) as usize;
                let strategies: BTreeMap<NodeId, Strategy<u64>> = rng
                    .choose_indices(n - 1, fault_count)
                    .into_iter()
                    .map(|i| {
                        let node = NodeId::new((sender.index() + 1 + i) % n);
                        let strategy = rng.pick(&battery).expect("non-empty").1.clone();
                        (node, strategy)
                    })
                    .collect();
                let plan = random_plan(n, &mut rng);
                let seed = rng.below(u64::MAX);
                let (run, views) =
                    run_protocol_full(&instance, &Val::Value(7), &strategies, seed, |e| {
                        e.with_link_faults(plan.clone())
                    });
                assert_eq!(run.decisions.len(), views.len());
                assert!(run.net.eig.arena_nodes > 0);
                for (r, view) in &views {
                    let folded = view.resolve(sender, instance.rule());
                    assert_eq!(
                        run.decisions.get(r),
                        Some(&folded),
                        "arena decision diverged from the recursive fold of \
                         receiver {r}'s own view: n={n} m={m} plan={plan:?}"
                    );
                }
            }
        }
    }
}
