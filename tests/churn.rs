//! Mid-protocol failures and time-varying fault schedules.
//!
//! The paper's fault model counts a node as faulty for the whole
//! execution; a node that *crashes part-way through* the protocol is a
//! special case of Byzantine behaviour (it behaved correctly, then went
//! silent). These tests drive that case through the engine's
//! [`FaultSchedule`]: the process logic is honest, the engine kills its
//! messages from a chosen round on, and the agreement conditions must
//! still hold with the crashed node counted in `f`.

use degradable::{check_degradable, run_protocol_with, ByzInstance, Params, Val};
use simnet::{
    FaultKind, FaultPlan, FaultSchedule, LinkFaultKind, LinkFaultPlan, NodeId, RoundEngine,
    Topology, TraceEvent,
};
use std::collections::{BTreeMap, BTreeSet};

fn crash_from(node: usize, round: usize) -> FaultPlan {
    FaultPlan::healthy().with(NodeId::new(node), FaultKind::Crash { from_round: round })
}

#[test]
fn mid_protocol_crash_within_m_keeps_full_agreement() {
    // BYZ(2,2) on 7 nodes runs depth+1 = 4 engine rounds; node 5 is honest
    // in round 0..2 and silent from round 2 (its level-3 relays vanish).
    let inst = ByzInstance::new(7, Params::new(2, 2).unwrap(), NodeId::new(0)).unwrap();
    let schedule = FaultSchedule::healthy().then_from(2, crash_from(5, 0));
    let run = run_protocol_with(&inst, &Val::Value(7), &BTreeMap::new(), 1, |e| {
        e.with_fault_schedule(schedule)
    });
    let faulty: BTreeSet<NodeId> = [NodeId::new(5)].into_iter().collect();
    let record = run.record(&inst, Val::Value(7), faulty);
    let verdict = check_degradable(&record);
    assert!(verdict.is_satisfied(), "{verdict:?}");
    // f = 1 <= m = 2: D.1 demands everyone decides 7.
    for (r, v) in record.fault_free_decisions() {
        assert_eq!(v, Val::Value(7), "receiver {r}");
    }
}

#[test]
fn staggered_crashes_within_u_stay_degraded() {
    // 1/2-degradable on 5 nodes: node 3 crashes from round 1, node 4 from
    // round 2 — two mid-protocol failures, f = 2 = u.
    let inst = ByzInstance::new(5, Params::new(1, 2).unwrap(), NodeId::new(0)).unwrap();
    let schedule = FaultSchedule::healthy()
        .then_from(1, crash_from(3, 0))
        .then_from(2, {
            FaultPlan::healthy()
                .with(NodeId::new(3), FaultKind::Crash { from_round: 0 })
                .with(NodeId::new(4), FaultKind::Crash { from_round: 0 })
        });
    let run = run_protocol_with(&inst, &Val::Value(7), &BTreeMap::new(), 1, |e| {
        e.with_fault_schedule(schedule)
    });
    let faulty: BTreeSet<NodeId> = [NodeId::new(3), NodeId::new(4)].into_iter().collect();
    let record = run.record(&inst, Val::Value(7), faulty);
    let verdict = check_degradable(&record);
    assert!(verdict.is_satisfied(), "{verdict:?}");
}

#[test]
fn crashed_sender_mid_broadcast_is_condition_d2_or_d4() {
    // The sender emits its round-0 messages and dies... or dies first: with
    // crash from round 0 nothing is ever sent — every receiver decides V_d
    // identically (D.2 with f = 1 <= m).
    let inst = ByzInstance::new(5, Params::new(1, 2).unwrap(), NodeId::new(0)).unwrap();
    let schedule = FaultSchedule::constant(crash_from(0, 0));
    let run = run_protocol_with(&inst, &Val::Value(7), &BTreeMap::new(), 1, |e| {
        e.with_fault_schedule(schedule)
    });
    let faulty: BTreeSet<NodeId> = [NodeId::new(0)].into_iter().collect();
    let record = run.record(&inst, Val::Value(7), faulty);
    let verdict = check_degradable(&record);
    assert!(verdict.is_satisfied(), "{verdict:?}");
    for (_, v) in record.fault_free_decisions() {
        assert_eq!(v, Val::Default);
    }
}

#[test]
fn recovery_after_burst_is_clean_for_fresh_instances() {
    // A burst that ends before a later instance starts must not affect it:
    // fresh protocol run after the burst window is fault-free.
    let inst = ByzInstance::new(5, Params::new(1, 2).unwrap(), NodeId::new(0)).unwrap();
    // Burst covers rounds 0..2 of *this* run — then heals.
    let schedule = FaultSchedule::healthy()
        .then_from(0, crash_from(2, 0))
        .then_from(2, FaultPlan::healthy());
    let run = run_protocol_with(&inst, &Val::Value(7), &BTreeMap::new(), 1, |e| {
        e.with_fault_schedule(schedule)
    });
    // Node 2's early silence makes it "faulty" for this run.
    let faulty: BTreeSet<NodeId> = [NodeId::new(2)].into_iter().collect();
    let record = run.record(&inst, Val::Value(7), faulty);
    assert!(check_degradable(&record).is_satisfied());

    // A brand-new run with a healthy schedule: all clean, full agreement.
    let run = run_protocol_with(&inst, &Val::Value(7), &BTreeMap::new(), 1, |e| e);
    let record = run.record(&inst, Val::Value(7), BTreeSet::new());
    for (_, v) in record.fault_free_decisions() {
        assert_eq!(v, Val::Value(7));
    }
}

#[test]
fn drop_causes_are_attributed_distinctly_in_the_trace() {
    // Node 1 crashes mid-run AND the 2->3 link is cut mid-run: the trace
    // must attribute every lost message to exactly one explicit cause —
    // node fault (DroppedCrash) or link fault (LinkCut) — never both, and
    // the outcome counters must agree with the trace.
    let schedule = FaultSchedule::healthy().then_from(1, crash_from(1, 0));
    let links = LinkFaultPlan::healthy().with(
        NodeId::new(2),
        NodeId::new(3),
        LinkFaultKind::Cut { from_round: 1 },
    );
    let mut engine = RoundEngine::<u64>::new(Topology::complete(5), 3)
        .with_fault_schedule(schedule)
        .with_link_faults(links)
        .with_trace();
    let outcome = engine.run(3, |ctx| ctx.broadcast(ctx.me().index() as u64));
    let trace = engine.trace().expect("tracing enabled");

    let crashes = trace.count(|e| matches!(e, TraceEvent::DroppedCrash { .. }));
    let cuts = trace.count(|e| matches!(e, TraceEvent::LinkCut { .. }));
    assert_eq!(crashes, outcome.dropped_crash);
    assert_eq!(cuts, outcome.dropped_link_cut);
    assert!(crashes > 0 && cuts > 0);

    for event in trace.events() {
        match *event {
            // Only the crashed node's sends are attributed to the crash.
            TraceEvent::DroppedCrash { src, .. } => assert_eq!(src, NodeId::new(1)),
            // Only the cut edge, only from its activation round — and a
            // crashed sender's messages never reach the link layer, so
            // they are not double-attributed here.
            TraceEvent::LinkCut { round, src, dst } => {
                assert_eq!((src, dst), (NodeId::new(2), NodeId::new(3)));
                assert!(round >= 1);
            }
            _ => {}
        }
    }
}

#[test]
fn mid_run_link_isolation_acts_like_a_late_crash() {
    // BYZ(1,2) runs m+1 = 2 sending rounds; from round 1 every link
    // touching node 4 is cut, so it hears the sender's broadcast but its
    // relays vanish — exactly like a mid-protocol crash. Counting node 4
    // in `f` (f = 1 <= m), the conditions must still hold for the rest.
    let inst = ByzInstance::new(5, Params::new(1, 2).unwrap(), NodeId::new(0)).unwrap();
    let others: Vec<NodeId> = (0..4).map(NodeId::new).collect();
    let links = LinkFaultPlan::healthy().cut_between(&[NodeId::new(4)], &others, 1);
    let run = run_protocol_with(&inst, &Val::Value(7), &BTreeMap::new(), 1, |e| {
        e.with_link_faults(links)
    });
    let faulty: BTreeSet<NodeId> = [NodeId::new(4)].into_iter().collect();
    let record = run.record(&inst, Val::Value(7), faulty);
    let verdict = check_degradable(&record);
    assert!(verdict.is_satisfied(), "{verdict:?}");
    assert!(run.net.dropped_link_cut > 0);
    for (r, v) in record.fault_free_decisions() {
        assert_eq!(v, Val::Value(7), "receiver {r}");
    }
}
