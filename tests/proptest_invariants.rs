//! Property-based tests over the workspace's core invariants.

use degradable::adversary::Strategy;
use degradable::{
    check_degradable, k_of_n, largest_fault_free_class, majority, vote, AdversaryRun, ByzInstance,
    Params, Val, Verdict,
};
use proptest::prelude::*;
use proptest::strategy::Strategy as _;
use simnet::routing::{CopyAction, RelayHop, RelayNetwork};
use simnet::{vertex_connectivity, vertex_disjoint_paths, NodeId, SimRng, Topology};
use std::collections::{BTreeMap, BTreeSet};

fn arb_vals(max_len: usize) -> impl proptest::strategy::Strategy<Value = Vec<Val>> {
    proptest::collection::vec(
        prop_oneof![Just(Val::Default), (0u64..6).prop_map(Val::Value),],
        0..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// VOTE is permutation-invariant.
    #[test]
    fn vote_permutation_invariant(vals in arb_vals(24), alpha in 1usize..8, rot in 0usize..24) {
        let mut rotated = vals.clone();
        let len = rotated.len();
        if len > 0 {
            rotated.rotate_left(rot % len);
        }
        prop_assert_eq!(vote(alpha, &vals), vote(alpha, &rotated));
    }

    /// A non-default VOTE winner occurs at least alpha times and uniquely so.
    #[test]
    fn vote_winner_is_sound(vals in arb_vals(24), alpha in 1usize..8) {
        let w = vote(alpha, &vals);
        let count = |v: &Val| vals.iter().filter(|x| *x == v).count();
        match w {
            Val::Default => {
                // either V_d itself won (>= alpha and unique), or no unique
                // winner exists
                let winners: Vec<_> = {
                    let mut distinct: Vec<Val> = vals.clone();
                    distinct.sort();
                    distinct.dedup();
                    distinct.into_iter().filter(|v| count(v) >= alpha).collect()
                };
                prop_assert!(
                    winners.len() != 1 || winners[0] == Val::Default,
                    "vote returned V_d but unique winner {winners:?} exists"
                );
            }
            ref w => {
                prop_assert!(count(w) >= alpha);
                // uniqueness: no other value also reaches alpha
                let mut others: Vec<Val> = vals.clone();
                others.sort();
                others.dedup();
                for o in others {
                    if o != *w {
                        prop_assert!(count(&o) < alpha, "tie should yield V_d");
                    }
                }
            }
        }
    }

    /// Majority agrees with a direct count.
    #[test]
    fn majority_matches_count(vals in arb_vals(16)) {
        let w = majority(&vals);
        if let Val::Value(x) = w {
            let c = vals.iter().filter(|v| **v == Val::Value(x)).count();
            prop_assert!(2 * c > vals.len());
        }
    }

    /// k_of_n returns a value only when it truly has k copies.
    #[test]
    fn k_of_n_sound(vals in proptest::collection::vec(0u64..5, 0..16), k in 1usize..6) {
        if let Some(w) = k_of_n(k, &vals) {
            prop_assert!(vals.iter().filter(|v| **v == w).count() >= k);
        }
    }

    /// Harary graphs have exactly the requested connectivity.
    #[test]
    fn harary_connectivity_exact(k in 1usize..5, extra in 0usize..6) {
        let n = (k + 2 + extra).max(k + 1);
        let topo = Topology::harary(k, n);
        prop_assert_eq!(vertex_connectivity(topo.graph()), k.min(n - 1));
    }

    /// Disjoint-path extraction returns genuinely disjoint, valid paths.
    #[test]
    fn disjoint_paths_valid(k in 2usize..5, extra in 0usize..5, t in 1usize..12) {
        let n = k + 3 + extra;
        let topo = Topology::harary(k, n);
        let target = NodeId::new(1 + t % (n - 1));
        let paths = vertex_disjoint_paths(topo.graph(), NodeId::new(0), target);
        prop_assert!(paths.len() >= k);
        let mut interior = BTreeSet::new();
        for p in &paths {
            prop_assert_eq!(p[0], NodeId::new(0));
            prop_assert_eq!(*p.last().unwrap(), target);
            for w in p.windows(2) {
                prop_assert!(topo.graph().has_edge(w[0], w[1]));
            }
            for &v in &p[1..p.len() - 1] {
                prop_assert!(interior.insert(v), "interior vertex reused");
            }
        }
    }

    /// THE core theorem: BYZ never violates m/u-degradable agreement at
    /// N = 2m+u+1 for any battery adversary with f <= u.
    #[test]
    fn byz_never_violates_within_u(
        m in 0usize..3,
        du in 0usize..3,
        f_frac in 0usize..100,
        placement_seed in 0u64..10_000,
        strat_idx in 0usize..6,
        sender_value in 0u64..4,
    ) {
        let u = m + du;
        let params = Params::new(m, u).expect("u >= m");
        let n = params.min_nodes();
        let f = f_frac % (u + 1);
        let mut rng = SimRng::seed(placement_seed);
        let faulty = rng.choose_indices(n, f);
        let battery = Strategy::battery(sender_value, sender_value + 1, placement_seed);
        let (_, strat) = battery[strat_idx % battery.len()].clone();
        let strategies: BTreeMap<NodeId, Strategy<u64>> = faulty
            .into_iter()
            .map(|i| (NodeId::new(i), strat.clone()))
            .collect();
        let instance = ByzInstance::new(n, params, NodeId::new(0)).expect("at bound");
        let record = AdversaryRun {
            instance,
            sender_value: Val::Value(sender_value),
            strategies,
        }
        .run();
        let verdict = check_degradable(&record);
        prop_assert!(verdict.is_satisfied(), "{verdict:?} for {record:?}");
        // ... and the m+1 corollary:
        if record.f() <= u {
            prop_assert!(largest_fault_free_class(&record) > m);
        }
    }

    /// Per-node mixed strategies (not all faulty nodes alike) also never
    /// violate the conditions.
    #[test]
    fn byz_never_violates_with_mixed_strategies(
        seed in 0u64..10_000,
        f in 0usize..4,
    ) {
        let params = Params::new(1, 3).expect("1 <= 3");
        let n = params.min_nodes(); // 6
        let mut rng = SimRng::seed(seed);
        let faulty = rng.choose_indices(n, f.min(3));
        let battery = Strategy::battery(1, 2, seed);
        let strategies: BTreeMap<NodeId, Strategy<u64>> = faulty
            .into_iter()
            .map(|i| {
                let (_, s) = battery[rng.below(battery.len() as u64) as usize].clone();
                (NodeId::new(i), s)
            })
            .collect();
        let instance = ByzInstance::new(n, params, NodeId::new(0)).expect("bound");
        let verdict = AdversaryRun {
            instance,
            sender_value: Val::Value(1),
            strategies,
        }
        .verdict();
        prop_assert!(verdict.is_satisfied() , "{verdict:?}");
    }

    /// The degradable relay never accepts a wrong value when faults stay
    /// within u, on any Harary topology meeting the connectivity bound.
    #[test]
    fn relay_never_accepts_wrong_value(
        m in 0usize..2,
        du in 0usize..2,
        seed in 0u64..5_000,
    ) {
        let u = m + du;
        let k = m + u + 1;
        let n = (k + 3).max(6);
        let topo = Topology::harary(k, n);
        let net = RelayNetwork::new(&topo, m, u).expect("harary meets the bound");
        let mut rng = SimRng::seed(seed);
        let f = (rng.below((u + 1) as u64)) as usize;
        let faulty: BTreeSet<NodeId> = rng
            .choose_indices(n, f)
            .into_iter()
            .map(NodeId::new)
            .collect();
        let src = NodeId::new(0);
        let dst = NodeId::new(1 + (rng.below((n - 1) as u64)) as usize);
        if src == dst || faulty.contains(&src) || faulty.contains(&dst) {
            return Ok(());
        }
        let mut adversary = |_: RelayHop| CopyAction::Replace(99u64);
        let d = net.transmit(src, dst, &42u64, &faulty, &mut adversary);
        prop_assert_ne!(d, simnet::routing::Delivery::Accepted(99));
        if f <= m {
            prop_assert_eq!(d, simnet::routing::Delivery::Accepted(42));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SM consistency: under a two-faced sender plus a randomly-withholding
    /// faulty relayer, all fault-free receivers decide identically (the
    /// signed-messages guarantee holds for any withholding pattern).
    #[test]
    fn sm_consistency_under_random_withholding(mask in 0u64..u64::MAX, n in 4usize..7) {
        use degradable::sm::{run_sm, SmAdversary, SmRelayAction};
        let m = 2usize;
        let faulty: BTreeSet<NodeId> = [NodeId::new(0), NodeId::new(1)].into_iter().collect();
        let mut sender_claims =
            |r: NodeId| Some(Val::Value(if r.index().is_multiple_of(2) { 1 } else { 2 }));
        let mut relay_action = move |relayer: NodeId, chain: &[NodeId], r: NodeId| {
            if relayer != NodeId::new(1) {
                return SmRelayAction::Forward;
            }
            let bit = (chain.len() * 7 + r.index()) % 64;
            if mask & (1 << bit) != 0 {
                SmRelayAction::Withhold
            } else {
                SmRelayAction::Forward
            }
        };
        let d = run_sm(
            n,
            m,
            NodeId::new(0),
            &Val::Value(0),
            &faulty,
            &mut SmAdversary {
                sender_claims: &mut sender_claims,
                relay_action: &mut relay_action,
            },
        );
        let distinct: BTreeSet<_> = d
            .iter()
            .filter(|(r, _)| !faulty.contains(r))
            .map(|(_, v)| *v)
            .collect();
        prop_assert!(distinct.len() <= 1, "{d:?}");
    }

    /// Degradable IC never violates its per-slot conditions for battery
    /// adversaries with f <= u.
    #[test]
    fn degradable_ic_conditions(seed in 0u64..5_000, f in 0usize..3, strat_idx in 0usize..6) {
        use degradable::ic::{check_degradable_ic, run_degradable_ic};
        let params = Params::new(1, 2).unwrap();
        let n = 5usize;
        let values: Vec<Val> = (0..n).map(|i| Val::Value(100 + i as u64)).collect();
        let mut rng = SimRng::seed(seed);
        let battery = Strategy::battery(1, 2, seed);
        let (_, strat) = battery[strat_idx % battery.len()].clone();
        let strategies: BTreeMap<NodeId, Strategy<u64>> = rng
            .choose_indices(n, f)
            .into_iter()
            .map(|i| (NodeId::new(i), strat.clone()))
            .collect();
        let out = run_degradable_ic(params, &values, &strategies);
        prop_assert!(check_degradable_ic(&out).is_none(), "{:?}", check_degradable_ic(&out));
    }

    /// OM satisfies IC1/IC2 for f <= m when n > 3m (the baseline's classic
    /// guarantee, checked through the same condition machinery).
    #[test]
    fn om_baseline_guarantee(seed in 0u64..5_000, m in 1usize..3, f_pick in 0usize..3) {
        let n = 3 * m + 1;
        let f = f_pick % (m + 1);
        let mut rng = SimRng::seed(seed);
        let faulty_idx = rng.choose_indices(n, f);
        let battery = Strategy::battery(1, 2, seed);
        let strategies: BTreeMap<NodeId, Strategy<u64>> = faulty_idx
            .iter()
            .map(|&i| {
                let (_, s) = battery[rng.below(battery.len() as u64) as usize].clone();
                (NodeId::new(i), s)
            })
            .collect();
        let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
        let strategies2 = strategies.clone();
        let mut fab = move |p: &degradable::Path, r: NodeId, t: &Val| {
            strategies2.get(&p.last()).expect("faulty").claim(p, r, t)
        };
        let decisions = degradable::baselines::run_om(
            n, m, NodeId::new(0), &Val::Value(1), &faulty, &mut fab,
        );
        let record = degradable::RunRecord {
            params: Params::byzantine(m),
            n,
            sender: NodeId::new(0),
            sender_value: Val::Value(1),
            faulty,
            decisions,
        };
        let verdict = degradable::check_byzantine(&record);
        prop_assert!(
            matches!(verdict, Verdict::Satisfied(_) | Verdict::BeyondU { .. }),
            "{verdict:?}"
        );
        if record.f() <= m {
            prop_assert!(verdict.is_satisfied());
        }
    }
}
