//! Section 6.1: algorithm BYZ under **relaxed absence detection**.
//!
//! The paper proves BYZ correct assuming absence of a message is detected
//! correctly, then observes the assumption can be relaxed:
//!
//! 1. with `f <= m` faults, absence/presence detection must be correct
//!    (this needs clock synchronization, achievable since `m < N/3`);
//! 2. with `m < f <= u`, a fault-free node may *incorrectly* declare a
//!    message from another fault-free node absent (timeouts) — and the
//!    degraded conditions D.3/D.4 still hold.
//!
//! We reproduce both directions on the message-passing executor: random
//! late-message injection (latency spikes past the round deadline) never
//! breaks D.3/D.4 when `m < f <= u`; and we exhibit that the *same*
//! timeout process can break D.1 when `f <= m` — which is exactly why the
//! paper needs correct detection below `m`.

use degradable::adversary::Strategy;
use degradable::{check_degradable, run_protocol_with, ByzInstance, Params, Val};
use simnet::{LatencyModel, NodeId};
use std::collections::{BTreeMap, BTreeSet};

fn spike_latency() -> LatencyModel {
    // ~20% of messages arrive after the deadline.
    LatencyModel::Spike {
        base: 1,
        spike_p: 0.2,
        spike: 100,
    }
}

#[test]
fn d3_d4_hold_under_timeouts_beyond_m() {
    let inst = ByzInstance::new(5, Params::new(1, 2).unwrap(), NodeId::new(0)).unwrap();
    for sender_faulty in [false, true] {
        for seed in 0..30u64 {
            let mut strategies: BTreeMap<NodeId, Strategy<u64>> = BTreeMap::new();
            if sender_faulty {
                strategies.insert(
                    NodeId::new(0),
                    Strategy::TwoFaced {
                        even: Val::Value(1),
                        odd: Val::Value(2),
                    },
                );
                strategies.insert(NodeId::new(4), Strategy::ConstantLie(Val::Value(3)));
            } else {
                strategies.insert(NodeId::new(3), Strategy::ConstantLie(Val::Value(3)));
                strategies.insert(NodeId::new(4), Strategy::ConstantLie(Val::Value(3)));
            }
            let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
            let run = run_protocol_with(&inst, &Val::Value(7), &strategies, seed, |e| {
                e.with_latency(spike_latency()).with_deadline(50)
            });
            let record = run.record(&inst, Val::Value(7), faulty);
            let verdict = check_degradable(&record);
            assert!(
                verdict.is_satisfied(),
                "seed {seed} sender_faulty={sender_faulty}: {verdict:?} ({:?})",
                record.decisions
            );
        }
    }
}

#[test]
fn timeouts_can_break_d1_below_m() {
    // The complementary direction: with f <= m the paper *requires*
    // correct absence detection. Random timeouts between fault-free nodes
    // do break D.1 for some schedule — demonstrating the requirement is
    // not gratuitous.
    let inst = ByzInstance::new(5, Params::new(1, 2).unwrap(), NodeId::new(0)).unwrap();
    let strategies: BTreeMap<NodeId, Strategy<u64>> =
        [(NodeId::new(4), Strategy::ConstantLie(Val::Value(3)))]
            .into_iter()
            .collect();
    let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
    let mut broke = false;
    for seed in 0..200u64 {
        let run = run_protocol_with(&inst, &Val::Value(7), &strategies, seed, |e| {
            e.with_latency(LatencyModel::Spike {
                base: 1,
                spike_p: 0.4,
                spike: 100,
            })
            .with_deadline(50)
        });
        let record = run.record(&inst, Val::Value(7), faulty.clone());
        if check_degradable(&record).is_violated() {
            broke = true;
            break;
        }
    }
    assert!(
        broke,
        "expected some timeout schedule to break D.1 at f <= m (the assumption is load-bearing)"
    );
}

#[test]
fn reliable_network_restores_d1_below_m() {
    // Same scenario, deadline comfortably above worst-case latency: D.1
    // holds for every seed.
    let inst = ByzInstance::new(5, Params::new(1, 2).unwrap(), NodeId::new(0)).unwrap();
    let strategies: BTreeMap<NodeId, Strategy<u64>> =
        [(NodeId::new(4), Strategy::ConstantLie(Val::Value(3)))]
            .into_iter()
            .collect();
    let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
    for seed in 0..50u64 {
        let run = run_protocol_with(&inst, &Val::Value(7), &strategies, seed, |e| {
            e.with_latency(spike_latency()).with_deadline(1_000)
        });
        let record = run.record(&inst, Val::Value(7), faulty.clone());
        let verdict = check_degradable(&record);
        assert!(verdict.is_satisfied(), "seed {seed}: {verdict:?}");
        // and specifically D.1: everyone decided the sender's value
        for (r, v) in record.fault_free_decisions() {
            assert_eq!(v, Val::Value(7), "receiver {r}");
        }
    }
}

#[test]
fn crash_and_omission_faults_within_u_stay_degraded() {
    // Engine-level crash/omission faults (special cases of Byzantine)
    // count toward f; with f = u = 2 the degraded conditions hold.
    use simnet::{FaultKind, FaultPlan};
    let inst = ByzInstance::new(5, Params::new(1, 2).unwrap(), NodeId::new(0)).unwrap();
    // Nodes 3 and 4 are faulty at the engine level only (processes honest).
    let plan = FaultPlan::healthy()
        .with(NodeId::new(3), FaultKind::Crash { from_round: 1 })
        .with(NodeId::new(4), FaultKind::Omission { p: 0.6 });
    let faulty: BTreeSet<NodeId> = [NodeId::new(3), NodeId::new(4)].into_iter().collect();
    for seed in 0..30u64 {
        let run = run_protocol_with(&inst, &Val::Value(7), &BTreeMap::new(), seed, |e| {
            e.with_faults(plan.clone())
        });
        let record = run.record(&inst, Val::Value(7), faulty.clone());
        let verdict = check_degradable(&record);
        assert!(verdict.is_satisfied(), "seed {seed}: {verdict:?}");
    }
}
