//! Cross-executor equivalence: the reference executor (`eig::run_eig`),
//! the message-passing executor (`protocol::run_protocol` on the simnet
//! round engine) and the sparse executor on a complete topology must
//! produce identical decisions for identical scenarios.

use degradable::adversary::Strategy;
use degradable::sparse::{run_sparse, RelayCorruption};
use degradable::{run_protocol, AdversaryRun, ByzInstance, Params, Val};
use simnet::{NodeId, SimRng, Topology};
use std::collections::BTreeMap;

fn random_scenario(
    n: usize,
    m: usize,
    u: usize,
    f: usize,
    rng: &mut SimRng,
) -> (ByzInstance, BTreeMap<NodeId, Strategy<u64>>) {
    let inst = ByzInstance::new(n, Params::new(m, u).expect("u >= m"), NodeId::new(0))
        .expect("node bound");
    let faulty = rng.choose_indices(n, f);
    let battery = Strategy::battery(1, 2, rng.below(1 << 20));
    let strategies = faulty
        .into_iter()
        .map(|i| {
            let (_, s) = battery[rng.below(battery.len() as u64) as usize].clone();
            (NodeId::new(i), s)
        })
        .collect();
    (inst, strategies)
}

#[test]
fn reference_equals_protocol_across_random_scenarios() {
    let rng = SimRng::seed(0xE001);
    for (n, m, u) in [
        (4usize, 1usize, 1usize),
        (5, 1, 2),
        (6, 1, 3),
        (7, 2, 2),
        (8, 2, 3),
    ] {
        for f in 0..=u {
            for trial in 0..6usize {
                let mut trial_rng = rng.fork((n * 100 + f * 10 + trial) as u64);
                let (inst, strategies) = random_scenario(n, m, u, f, &mut trial_rng);
                let reference = AdversaryRun {
                    instance: inst,
                    sender_value: Val::Value(7),
                    strategies: strategies.clone(),
                }
                .run()
                .decisions;
                let protocol = run_protocol(&inst, &Val::Value(7), &strategies, 42).decisions;
                assert_eq!(
                    reference, protocol,
                    "divergence at n={n} m={m} u={u} f={f} trial={trial}: {strategies:?}"
                );
            }
        }
    }
}

#[test]
fn reference_equals_sparse_on_complete_topology() {
    let rng = SimRng::seed(0xE002);
    for (n, m, u) in [(5usize, 1usize, 2usize), (7, 2, 2)] {
        for f in 0..=u {
            for trial in 0..4usize {
                let mut trial_rng = rng.fork((n * 100 + f * 10 + trial) as u64);
                let (inst, strategies) = random_scenario(n, m, u, f, &mut trial_rng);
                let reference = AdversaryRun {
                    instance: inst,
                    sender_value: Val::Value(7),
                    strategies: strategies.clone(),
                }
                .run()
                .decisions;
                let sparse = run_sparse(
                    &inst,
                    &Topology::complete(n),
                    &Val::Value(7),
                    &strategies,
                    &RelayCorruption::Forward,
                    false,
                )
                .expect("complete graph has full connectivity")
                .decisions;
                assert_eq!(
                    reference, sparse,
                    "sparse divergence at n={n} m={m} u={u} f={f} trial={trial}"
                );
            }
        }
    }
}

#[test]
fn equivalence_holds_at_larger_scale() {
    // N = 10, m = 3: depth-4 recursion, ~5.8k messages per run.
    let rng = SimRng::seed(0xB16);
    let mut trial_rng = rng.fork(1);
    let (inst, strategies) = random_scenario(10, 3, 3, 3, &mut trial_rng);
    let reference = AdversaryRun {
        instance: inst,
        sender_value: Val::Value(7),
        strategies: strategies.clone(),
    }
    .run()
    .decisions;
    let protocol = run_protocol(&inst, &Val::Value(7), &strategies, 5).decisions;
    assert_eq!(reference, protocol);
}

#[test]
#[ignore = "scale probe: ~110k messages; run with --ignored"]
fn equivalence_at_maximum_tested_scale() {
    // N = 13, m = 4 (the largest instance in the paper's table): depth-5
    // recursion, 108 384 messages. Documents the practical scale ceiling
    // of the exhaustive EIG representation.
    let rng = SimRng::seed(0xB17);
    let mut trial_rng = rng.fork(1);
    let (inst, strategies) = random_scenario(13, 4, 4, 4, &mut trial_rng);
    let reference = AdversaryRun {
        instance: inst,
        sender_value: Val::Value(7),
        strategies: strategies.clone(),
    }
    .run()
    .decisions;
    let protocol = run_protocol(&inst, &Val::Value(7), &strategies, 5);
    assert_eq!(protocol.net.sent, 108_384);
    assert_eq!(reference, protocol.decisions);
}

#[test]
fn batch_executor_equals_sequential_for_random_batches() {
    use degradable::{run_batch, BatchInstance};
    let rng = SimRng::seed(0xBA7);
    for trial in 0..5u64 {
        let mut trial_rng = rng.fork(trial);
        let (inst, strategies) = random_scenario(5, 1, 2, (trial % 3) as usize, &mut trial_rng);
        let instances: Vec<BatchInstance<u64>> = (0..4)
            .map(|k| BatchInstance {
                sender: NodeId::new(k % 5),
                value: Val::Value(100 + k as u64),
            })
            .collect();
        let batch = run_batch(inst.params(), 5, &instances, &strategies, 9);
        for (k, bi) in instances.iter().enumerate() {
            let single = degradable::ByzInstance::new(5, inst.params(), bi.sender).expect("bound");
            let solo = run_protocol(&single, &bi.value, &strategies, 9);
            assert_eq!(
                batch.decisions[k], solo.decisions,
                "trial {trial} instance {k}"
            );
        }
    }
}

#[test]
fn protocol_seed_independence_without_stochastic_faults() {
    // Engine seeds only matter for latency/omission sampling; a pure
    // Byzantine scenario must be seed-independent.
    let inst = ByzInstance::new(7, Params::new(2, 2).unwrap(), NodeId::new(0)).unwrap();
    let strategies: BTreeMap<NodeId, Strategy<u64>> = [
        (
            NodeId::new(0),
            Strategy::TwoFaced {
                even: Val::Value(1),
                odd: Val::Value(2),
            },
        ),
        (NodeId::new(6), Strategy::Silent),
    ]
    .into_iter()
    .collect();
    let a = run_protocol(&inst, &Val::Value(7), &strategies, 1).decisions;
    let b = run_protocol(&inst, &Val::Value(7), &strategies, 999).decisions;
    assert_eq!(a, b);
}
