//! Differential suite for the arena-backed batch service.
//!
//! The batch service multiplexes K agreement instances over one engine
//! run and resolves each through the shared memoized arena. These tests
//! pin down the three identities that make that an *optimization* rather
//! than a semantic change:
//!
//! 1. **Batch ≡ solo.** Under healthy links and under deterministic
//!    chaos plans (cuts, `p = 1.0` duplication), every instance's
//!    decisions are bit-identical to a one-at-a-time
//!    [`degradable::run_protocol`] run. (Probabilistic chaos draws the
//!    shared link RNG in a different interleaving for batch vs solo, so
//!    identity there is asserted via oracle 2 instead.)
//! 2. **Arena ≡ view fold.** Under arbitrary random chaos, the batch's
//!    arena decisions equal an independent recursive
//!    [`degradable::EigView`] resolve over the *same* recorded
//!    observations ([`degradable::run_batch_full`]).
//! 3. **Worker-count and rerun invariance.** Decisions and deterministic
//!    counters are identical for 1/2/8 resolve workers and across
//!    repeated runs with the same seed.

use degradable::{
    run_batch, run_batch_full, run_batch_observed, run_batch_reference, run_batch_with,
    run_protocol, BatchInstance, ByzInstance, Params, Strategy, Val, VoteRule,
};
use obs::Obs;
use simnet::{LinkFaultKind, LinkFaultPlan, NodeId, SimRng};
use std::collections::BTreeMap;

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn chaos_plan(nodes: usize, seed: u64) -> LinkFaultPlan {
    let mut rng = SimRng::derive(seed, 77);
    let mut plan = LinkFaultPlan::healthy();
    for a in 0..nodes {
        for b in 0..nodes {
            if a == b {
                continue;
            }
            if rng.chance(0.3) {
                plan = plan.with(n(a), n(b), LinkFaultKind::Drop { p: 0.2 });
            }
            if rng.chance(0.3) {
                plan = plan.with(n(a), n(b), LinkFaultKind::Duplicate { p: 0.3 });
            }
            if rng.chance(0.3) {
                plan = plan.with(n(a), n(b), LinkFaultKind::Reorder { window: 2 });
            }
            if rng.chance(0.2) {
                plan = plan.with(n(a), n(b), LinkFaultKind::Corrupt { p: 0.15 });
            }
        }
    }
    plan
}

fn strategies(seed: u64, nodes: usize, faults: usize) -> BTreeMap<NodeId, Strategy<u64>> {
    let mut rng = SimRng::derive(seed, 999);
    let mut out = BTreeMap::new();
    while out.len() < faults {
        let who = n(rng.below(nodes as u64) as usize);
        let strat = match rng.below(4) {
            0 => Strategy::Silent,
            1 => Strategy::ConstantLie(Val::Value(rng.below(9))),
            2 => Strategy::TwoFaced {
                even: Val::Value(1),
                odd: Val::Value(2),
            },
            _ => Strategy::RandomLie {
                domain: vec![Val::Default, Val::Value(3), Val::Value(4)],
                seed,
            },
        };
        out.insert(who, strat);
    }
    out
}

fn mixed_instances(nodes: usize, k: usize) -> Vec<BatchInstance<u64>> {
    (0..k)
        .map(|i| BatchInstance {
            sender: n(i % nodes),
            value: Val::Value(1000 + i as u64),
        })
        .collect()
}

#[test]
fn healthy_batch_matches_solo_runs_across_shapes() {
    for (nodes, m, u, k) in [(4, 1, 1, 3), (5, 1, 2, 6), (7, 2, 2, 4)] {
        let params = Params::new(m, u).unwrap();
        for seed in 0..4u64 {
            let strategies = strategies(seed, nodes, m);
            let instances = mixed_instances(nodes, k);
            let batch = run_batch(params, nodes, &instances, &strategies, seed);
            assert_eq!(batch.spoofs_rejected, 0);
            for (i, inst) in instances.iter().enumerate() {
                let single = ByzInstance::new(nodes, params, inst.sender).unwrap();
                let solo = run_protocol(&single, &inst.value, &strategies, seed);
                assert_eq!(
                    batch.decisions[i], solo.decisions,
                    "n={nodes} m={m} u={u} k={k} seed={seed} instance {i}"
                );
            }
        }
    }
}

#[test]
fn cut_plans_affect_batch_and_solo_identically() {
    let params = Params::new(1, 2).unwrap();
    let plan = LinkFaultPlan::healthy()
        .with_symmetric(n(0), n(2), LinkFaultKind::Cut { from_round: 1 })
        .with(n(3), n(1), LinkFaultKind::Cut { from_round: 0 })
        .with(n(4), n(2), LinkFaultKind::Cut { from_round: 2 });
    let strategies = strategies(5, 5, 1);
    let instances = mixed_instances(5, 5);
    let batch = run_batch_with(params, 5, &instances, &strategies, 5, {
        let plan = plan.clone();
        |e| e.with_link_faults(plan)
    });
    assert!(batch.net.dropped_link_cut > 0);
    for (i, inst) in instances.iter().enumerate() {
        let single = ByzInstance::new(5, params, inst.sender).unwrap();
        let solo = degradable::run_protocol_with(&single, &inst.value, &strategies, 5, {
            let plan = plan.clone();
            |e| e.with_link_faults(plan)
        });
        assert_eq!(batch.decisions[i], solo.decisions, "instance {i}");
    }
}

#[test]
fn chaotic_arena_decisions_match_independent_view_folds() {
    // Oracle 2: whatever the chaos did to the observations, the arena's
    // memoized bottom-up resolve must agree with a from-scratch
    // recursive EigView resolve of the exact same recorded claims.
    let params = Params::new(1, 2).unwrap();
    let rule = VoteRule::Degradable { m: 1 };
    for seed in 0..6u64 {
        let plan = chaos_plan(5, seed);
        let strategies = strategies(seed, 5, 1);
        let instances = mixed_instances(5, 4);
        let (batch, views) = run_batch_full(params, 5, &instances, &strategies, seed, {
            let plan = plan.clone();
            |e| e.with_link_faults(plan)
        });
        assert!(batch.net.link_fault_injections() > 0, "seed {seed}");
        for (k, inst) in instances.iter().enumerate() {
            for (r, view) in &views[k] {
                assert_eq!(
                    batch.decisions[k][r],
                    view.resolve(inst.sender, rule),
                    "seed {seed} instance {k} receiver {r}"
                );
            }
        }
    }
}

#[test]
fn chaos_free_batch_matches_legacy_reference_executor() {
    let params = Params::new(2, 3).unwrap();
    for seed in 0..4u64 {
        let strategies = strategies(seed, 8, 2);
        let instances = mixed_instances(8, 3);
        let arena = run_batch(params, 8, &instances, &strategies, seed);
        let legacy = run_batch_reference(params, 8, &instances, &strategies, seed);
        assert_eq!(arena.decisions, legacy.decisions, "seed {seed}");
        assert_eq!(arena.net.sent, legacy.net.sent, "seed {seed}");
    }
}

#[test]
fn chaotic_batch_is_invariant_across_workers_and_reruns() {
    let params = Params::new(1, 2).unwrap();
    let plan = chaos_plan(5, 42);
    let strategies = strategies(42, 5, 1);
    let instances = mixed_instances(5, 6);
    let run_with_workers = |workers: usize| {
        let plan = plan.clone();
        run_batch_observed(
            params,
            5,
            &instances,
            &strategies,
            42,
            workers,
            |e| e.with_link_faults(plan),
            &mut Obs::disabled(),
        )
        .0
    };
    let one = run_with_workers(1);
    for workers in [2, 8] {
        let multi = run_with_workers(workers);
        assert_eq!(one.decisions, multi.decisions, "workers {workers}");
        assert_eq!(one.net.eig, multi.net.eig, "workers {workers}");
        assert_eq!(one.spoofs_rejected, multi.spoofs_rejected);
    }
    let again = run_with_workers(1);
    assert_eq!(one.decisions, again.decisions, "rerun determinism");
    assert_eq!(one.net.sent, again.net.sent);
}

#[test]
fn duplicate_everything_changes_no_decision() {
    let params = Params::new(1, 2).unwrap();
    let plan = LinkFaultPlan::uniform_complete(5, &[LinkFaultKind::Duplicate { p: 1.0 }]);
    let strategies = strategies(7, 5, 1);
    let instances = mixed_instances(5, 4);
    let clean = run_batch(params, 5, &instances, &strategies, 7);
    let doubled = run_batch_with(params, 5, &instances, &strategies, 7, |e| {
        e.with_link_faults(plan)
    });
    assert!(doubled.net.duplicated > 0);
    assert_eq!(clean.decisions, doubled.decisions);
    // First-write-wins: the duplicates never reach the stores.
    assert_eq!(clean.net.eig, doubled.net.eig);
}
