//! End-to-end integration across the workspace crates: the Section 3
//! channel system with recovery, the fly-by-wire loop, and degradable
//! clock synchronization driving message timeouts — the full stack the
//! paper sketches, wired together.

use channels::prelude::*;
use clocksync::prelude::*;
use degradable::adversary::Strategy;
use degradable::{Params, Val};
use simnet::NodeId;
use std::collections::BTreeMap;

#[test]
fn channel_system_with_recovery_full_story() {
    // 4-channel degradable system: a transient double fault degrades one
    // cycle, recovery retries, the mission completes with zero unsafe
    // actions.
    let system = ChannelSystem::new(Architecture::Degradable {
        params: Params::new(1, 2).unwrap(),
    });
    let mut driver = RecoveryDriver::new(system, RecoveryPolicy { max_retries: 3 });
    for cycle in 0..20u64 {
        let transient = cycle == 7;
        driver.run_cycle(1000 + cycle, |attempt| {
            if transient && attempt == 0 {
                [
                    (NodeId::new(1), Strategy::Silent),
                    (NodeId::new(2), Strategy::Silent),
                ]
                .into_iter()
                .collect()
            } else {
                BTreeMap::new()
            }
        });
    }
    let stats = driver.stats();
    assert_eq!(stats.cycles(), 20);
    assert_eq!(stats.forward, 19);
    assert_eq!(stats.backward, 1);
    assert!(stats.is_safe());
}

#[test]
fn architectures_disagree_exactly_where_the_paper_says() {
    // Identical double-fault attack against both Figure 1 architectures:
    // B-system -> incorrect (unsafe), C-system -> default (safe).
    let attack = |_: usize| -> BTreeMap<NodeId, Strategy<u64>> {
        [
            (NodeId::new(1), Strategy::ConstantLie(Val::Value(555))),
            (NodeId::new(2), Strategy::ConstantLie(Val::Value(555))),
        ]
        .into_iter()
        .collect()
    };
    let b = ChannelSystem::new(Architecture::Byzantine { m: 1 }).run_cycle(42, &attack(0));
    let c = ChannelSystem::new(Architecture::Degradable {
        params: Params::new(1, 2).unwrap(),
    })
    .run_cycle(42, &attack(0));
    assert_eq!(b.outcome, ExternalOutcome::Incorrect, "{b:?}");
    assert_eq!(c.outcome, ExternalOutcome::Default, "{c:?}");
}

#[test]
fn flight_outcomes_match_the_motivation() {
    let config = FlightConfig::default();
    let byz = fly(Architecture::Byzantine { m: 1 }, config);
    let deg = fly(
        Architecture::Degradable {
            params: Params::new(1, 2).unwrap(),
        },
        config,
    );
    assert!(byz.crashed, "3-channel system should crash: {byz:?}");
    assert!(
        !deg.crashed,
        "4-channel degradable system should survive: {deg:?}"
    );
    assert_eq!(deg.wrong_actuations, 0);
    assert!(deg.pilot_alerts > 0);
}

#[test]
fn clock_sync_conditions_across_fault_counts() {
    // One round of degradable clock sync per fault count on 7 clocks with
    // 1/4 parameters, lying clock nodes included.
    let params = Params::new(1, 4).unwrap();
    let config = SyncConfig {
        params,
        sync_tolerance: 10,
        real_time_tolerance: 2_000,
    };
    for f in 0..=4usize {
        let faulty: Vec<usize> = (7 - f..7).collect();
        let clocks = ensemble(7, 1_000, 0, &faulty, 5);
        let strategies: BTreeMap<NodeId, Strategy<u64>> = faulty
            .iter()
            .map(|&i| {
                (
                    NodeId::new(i),
                    Strategy::ConstantLie(Val::Value(99_000_000)),
                )
            })
            .collect();
        let out = run_degradable_sync(&clocks, &strategies, config, 10_000_000);
        match (out.condition1, out.condition2) {
            (Some(c1), _) => assert!(c1, "f={f}: condition 1 failed: {out:?}"),
            (_, Some(c2)) => assert!(c2, "f={f}: condition 2 failed: {out:?}"),
            _ => unreachable!("f <= u always checks something"),
        }
    }
}

#[test]
fn witness_clocks_keep_timing_plane_alive_while_processors_fail() {
    // Section 6.2 composition: 5 processors of which 3 are Byzantine at
    // the *processor* level (beyond N/3!), but only 1 clock is faulty and
    // 2 witnesses are added: the clock plane synchronizes, which is what
    // BYZ needs for absence detection.
    let e = HardwareEnsemble::new(
        ensemble(5, 500, 0, &[4], 11),
        ensemble(2, 500, 0, &[], 13),
        (0..7).map(|i| i == 4).collect(),
    );
    assert!(e.clock_plane_viable());
    let sync = e.synchronize(ConvergenceConfig::default());
    assert!(sync.final_skew() <= 2_000);

    // ... and with the clock plane alive, degradable agreement over the 5
    // processors (params 1/2, 3 of 5 faulty is beyond u, so use f = 2):
    let inst = degradable::ByzInstance::new(5, Params::new(1, 2).unwrap(), NodeId::new(0)).unwrap();
    let strategies: BTreeMap<NodeId, Strategy<u64>> = [
        (NodeId::new(3), Strategy::ConstantLie(Val::Value(9))),
        (NodeId::new(4), Strategy::ConstantLie(Val::Value(9))),
    ]
    .into_iter()
    .collect();
    let record = degradable::AdversaryRun {
        instance: inst,
        sender_value: Val::Value(7),
        strategies,
    }
    .run();
    assert!(degradable::check_degradable(&record).is_satisfied());
}
