//! The agreement machinery is generic over the value type; these tests
//! drive it with `String` payloads and a custom ordered struct to make
//! sure nothing silently assumes `u64`.

use degradable::adversary::Strategy;
use degradable::{
    check_degradable, run_protocol, AdversaryRun, AgreementValue, ByzInstance, Params,
};
use simnet::NodeId;
use std::collections::BTreeMap;

type SVal = AgreementValue<String>;

fn sval(s: &str) -> SVal {
    AgreementValue::Value(s.to_string())
}

#[test]
fn string_values_through_reference_executor() {
    let instance = ByzInstance::new(5, Params::new(1, 2).unwrap(), NodeId::new(0)).unwrap();
    let scenario: AdversaryRun<String> = AdversaryRun {
        instance,
        sender_value: sval("set-throttle=42"),
        strategies: [
            (
                NodeId::new(3),
                Strategy::ConstantLie(sval("set-throttle=9999")),
            ),
            (
                NodeId::new(4),
                Strategy::ConstantLie(sval("set-throttle=9999")),
            ),
        ]
        .into_iter()
        .collect(),
    };
    let record = scenario.run();
    assert!(check_degradable(&record).is_satisfied());
    for (_, v) in record.fault_free_decisions() {
        assert!(
            v == sval("set-throttle=42") || v.is_default(),
            "unexpected decision {v:?}"
        );
    }
}

#[test]
fn string_values_through_message_passing() {
    let instance = ByzInstance::new(5, Params::new(1, 2).unwrap(), NodeId::new(0)).unwrap();
    let strategies: BTreeMap<NodeId, Strategy<String>> = [(
        NodeId::new(4),
        Strategy::TwoFaced {
            even: sval("left"),
            odd: sval("right"),
        },
    )]
    .into_iter()
    .collect();
    let run = run_protocol(&instance, &sval("climb"), &strategies, 3);
    for r in [1usize, 2, 3] {
        assert_eq!(run.decisions[&NodeId::new(r)], sval("climb"));
    }
}

#[test]
fn custom_ordered_type() {
    // A composite command type: anything Clone + Ord + Hash works.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
    struct Command {
        target: u16,
        magnitude: i32,
    }
    let cmd = AgreementValue::Value(Command {
        target: 7,
        magnitude: -3,
    });
    let instance = ByzInstance::new(4, Params::new(1, 1).unwrap(), NodeId::new(0)).unwrap();
    let scenario = AdversaryRun {
        instance,
        sender_value: cmd.clone(),
        strategies: [(
            NodeId::new(3),
            Strategy::ConstantLie(AgreementValue::Value(Command {
                target: 7,
                magnitude: 9_999,
            })),
        )]
        .into_iter()
        .collect::<BTreeMap<_, _>>(),
    };
    let record = scenario.run();
    assert!(check_degradable(&record).is_satisfied());
    for (_, v) in record.fault_free_decisions() {
        assert_eq!(v, cmd);
    }
}

#[test]
fn default_value_is_distinguishable_from_empty_string() {
    // The type-level V_d guarantee: even the "empty" proper value is not
    // the default.
    assert_ne!(sval(""), SVal::Default);
    let vote = degradable::vote(2, &[SVal::Default, SVal::Default, sval("")]);
    assert!(vote.is_default());
    let vote = degradable::vote(2, &[sval(""), sval(""), SVal::Default]);
    assert_eq!(vote, sval(""));
}
