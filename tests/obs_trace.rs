//! Golden-trace test for the observability layer: a tiny N = 4 engine
//! run, observed and exported as a logical-clock Chrome trace, must be
//! **bit-identical** at 1, 2, and 8 resolve workers once wall times are
//! scrubbed — the `--no-timing` contract, pinned against a checked-in
//! snapshot.
//!
//! Regenerate the snapshot after an intentional format change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test obs_trace
//! ```

use degradable::{EigEngine, Path, Val, VoteRule};
use obs::{chrome_trace_json, parse_trace, Obs, TimeMode};
use simnet::NodeId;
use std::collections::BTreeSet;

const GOLDEN_PATH: &str = "tests/golden/obs_trace_n4.json";

/// The tiny deterministic scenario: N = 4, depth 2 (m = 1), node 2
/// faulty with a receiver-dependent lie.
fn observed_n4_run(workers: usize) -> Obs {
    let engine = EigEngine::new(4, NodeId::new(0), 2).with_workers(workers);
    let faulty: BTreeSet<NodeId> = [NodeId::new(2)].into();
    let mut fabricate = |_: &Path, receiver: NodeId, _: &Val| Val::Value(receiver.index() as u64);
    let mut obs = Obs::enabled();
    let run = engine.run_observed(
        VoteRule::Degradable { m: 1 },
        &Val::Value(7),
        &faulty,
        &mut fabricate,
        &mut obs,
    );
    assert_eq!(run.decisions.len(), 3, "three fault-free receivers");
    obs
}

/// The scrubbed logical-clock export — everything `--no-timing` emits.
fn logical_trace(workers: usize) -> String {
    let mut obs = observed_n4_run(workers);
    obs::scrub_timing(&mut obs);
    chrome_trace_json(&obs, TimeMode::Logical)
}

#[test]
fn golden_trace_is_bit_identical_across_worker_counts() {
    let reference = logical_trace(1);
    for workers in [2usize, 8] {
        assert_eq!(
            logical_trace(workers),
            reference,
            "scrubbed logical trace differs at {workers} workers"
        );
    }
}

#[test]
fn golden_trace_matches_checked_in_snapshot() {
    let actual = logical_trace(1);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all("tests/golden").unwrap();
        std::fs::write(GOLDEN_PATH, &actual).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden snapshot missing — run with UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        actual, golden,
        "trace format drifted from {GOLDEN_PATH}; if intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_trace_round_trips_losslessly() {
    let text = logical_trace(2);
    let parsed = parse_trace(&text).expect("exporter output parses");
    let obs = {
        let mut o = observed_n4_run(2);
        obs::scrub_timing(&mut o);
        o
    };
    assert_eq!(parsed.spans, obs.spans());
    assert_eq!(&parsed.registry, obs.registry());
}
