//! Umbrella crate for the reproduction of Vaidya's *Degradable Agreement
//! in the Presence of Byzantine Faults* (1993).
//!
//! The functionality lives in the member crates, re-exported here for
//! convenience; the repository-level `examples/` and `tests/` compile
//! against this crate.
//!
//! ```
//! use degradable_agreement_repro::degradable::{AdversaryRun, ByzInstance, Params, Val};
//! use degradable_agreement_repro::simnet::NodeId;
//!
//! let instance = ByzInstance::new(5, Params::new(1, 2)?, NodeId::new(0))?;
//! let record = AdversaryRun {
//!     instance,
//!     sender_value: Val::Value(42),
//!     strategies: Default::default(),
//! }
//! .run();
//! assert!(record.fault_free_decisions().values().all(|v| *v == Val::Value(42)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![forbid(unsafe_code)]

pub use channels;
pub use clocksync;
pub use degradable;
pub use simnet;
pub use transport;
