//! Hand-rolled argument parsing for `dagree`.

use degradable::{Strategy, Val};
use simnet::NodeId;
use std::collections::BTreeMap;
use std::fmt;
use transport::TransportKind;

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
dagree — explore m/u-degradable agreement (Vaidya 1993)

USAGE:
  dagree run --nodes N --m M --u U [--value V] [--faulty SPEC] [--explain NODE]
             [--transport sim|channel|tcp]
  dagree serve --index I --peers HOST:PORT,... --m M --u U [--value V]
               [--faulty SPEC] [--round-timeout-ms T] [--trace]
               [--metrics-out PATH] [--trace-out PATH]
  dagree serve --service --nodes N --m M --u U [--instances K] [--batch B]
               [--queue C] [--workers W] [--seed S] [--faulty SPEC]
               [--no-timing] [--metrics-out PATH]
  dagree bombard --nodes N --m M --u U [--instances K] [--burst B] [--queue C]
                 [--workers W] [--seed S] [--faulty SPEC] [--no-timing]
                 [--metrics-out PATH]
  dagree batch --nodes N --m M --u U [--k K] [--value V] [--faulty SPEC] [--seed S]
  dagree search --nodes N --m M --u U [--below-bound] [--method exhaustive|random|hillclimb]
  dagree table [--max-m M] [--max-u U]
  dagree tradeoffs --nodes N
  dagree topology --kind KIND [--m M --u U]
  dagree certify --m M --u U [--budget B]
  dagree flight --arch byzantine|degradable|crusader
  dagree obs TRACE [--top N] [--critical-path]
  dagree fuzz [--budget B] [--seed S] [--max-n N] [--mutate MUTATION]
              [--early-stop] [--repro-dir DIR] [--replay FILE]
  dagree help

FAULTY SPEC:
  comma-separated entries `node:strategy[:value]`, e.g.
  `3:constant-lie:9,4:silent` or `0:two-faced:1:2`.
  strategies: silent | truthful | constant-lie:V | two-faced:A:B |
              pretend-sender-said:V | random-lie:SEED

TOPOLOGY KIND:
  complete:N | ring:N | harary:K:N | hypercube:D | wheel:N | sender-cut:K:N

TRANSPORT:
  sim     — deterministic virtual-time simulator (default)
  channel — one OS thread per node over in-process channels
  tcp     — one OS thread per node over loopback TCP
  `serve` runs ONE node of a multi-process TCP mesh: every process gets
  the same --peers list (node i binds the i-th address) and its own
  --index; all flags but --index must match across processes.

SERVICE MODE:
  `serve --service` runs the persistent in-process agreement service
  instead: a pooled ServiceState ingests a seeded stream of K instances
  (senders round-robin) in waves of --batch, draining after each wave.
  Arenas and stores are pooled across drains (stores cleared, never
  rebuilt) and the bounded queue (--queue) sheds excess load with a
  counted error instead of growing. `bombard` is the matching load
  generator: same pipeline, but each wave offers --burst instances, so
  a --burst above --queue exercises the shed path deliberately. Both
  sample every 4th drain against one-shot `dagree batch` semantics
  (run_batch) and report decision mismatches; both write a scrubbed,
  worker-count-independent registry/span JSONL with --metrics-out when
  --no-timing is given.

EXAMPLES:
  dagree run --nodes 5 --m 1 --u 2 --value 42 --faulty 3:constant-lie:7,4:constant-lie:7
  dagree run --nodes 4 --m 1 --u 1 --transport tcp
  dagree serve --index 0 --peers 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103,127.0.0.1:7104 --m 1 --u 1
  dagree batch --nodes 5 --m 1 --u 2 --k 8 --faulty 3:constant-lie:7
  dagree run --nodes 5 --m 1 --u 2 --faulty 4:silent --explain 1
  dagree search --nodes 4 --m 1 --u 2 --below-bound --method exhaustive
  dagree topology --kind harary:4:8 --m 1 --u 2
  dagree obs results/perf_baseline.trace.json --top 10

OBS:
  summarizes a trace file written by an experiment's --trace-out flag
  (Chrome trace_event JSON or flat JSONL): top spans by logical cost,
  then the embedded counter/gauge/histogram registry. `--critical-path`
  additionally reconstructs the longest causal send/deliver chain ending
  in a decision from the trace's trace.* spans and prints it hop by hop.

SERVE OBSERVABILITY:
  `--trace` stamps every envelope with a causal trace context (carried on
  the wire as tagged frames; malformed trace sections degrade to untraced
  delivery, never kill the connection). `--metrics-out PATH` appends one
  JSONL registry snapshot per closed round (node, round, counters).
  `--trace-out PATH` writes this node's trace spans as JSONL at exit;
  both imply `--trace` and are readable by `dagree obs`.

FUZZ:
  drives randomized BYZ executions (N in 4..=--max-n, static + adaptive
  adversaries, churn crashes, link chaos) through the real node state
  machines with the abstract spec checker attached. Every 4th clean trial
  is additionally replayed through the batched service and the loopback
  TCP mesh under the same referee. Violations are shrunk to a minimal
  (seed, plan) repro under --repro-dir (default results/repros).
  `--mutate M` injects a deliberate implementation bug the checker must
  catch (the CI mutant gate); M is one of relay-suppression,
  wrong-value-relay, early-decision, vote-off-by-one. `--early-stop`
  forces certified-fault-set early stopping on in every generated plan
  (machines and checker armed together). `--replay FILE` re-runs a repro
  file and prints the first divergent step.
";

/// A parsed subcommand.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `dagree run`
    Run {
        /// Node count.
        nodes: usize,
        /// Strong threshold.
        m: usize,
        /// Degraded threshold.
        u: usize,
        /// Sender value.
        value: u64,
        /// Faulty nodes with strategies.
        faulty: BTreeMap<NodeId, Strategy<u64>>,
        /// Receiver to narrate, if any.
        explain: Option<NodeId>,
        /// Which network backend executes the protocol.
        transport: TransportKind,
    },
    /// `dagree serve` — one node of a multi-process TCP mesh.
    Serve {
        /// This process's node index (position in `peers`).
        index: usize,
        /// Every node's listen address, index order; the cluster size is
        /// the list length.
        peers: Vec<String>,
        /// Strong threshold.
        m: usize,
        /// Degraded threshold.
        u: usize,
        /// Sender value (node 0 proposes it; others ignore it but must
        /// agree on the flag so records match).
        value: u64,
        /// Faulty nodes with strategies.
        faulty: BTreeMap<NodeId, Strategy<u64>>,
        /// Per-round wall-clock budget before absent peers time out.
        round_timeout_ms: u64,
        /// Stamp causal trace contexts on every envelope.
        trace: bool,
        /// Append per-round registry snapshots (JSONL) to this path.
        metrics_out: Option<String>,
        /// Write this node's trace spans (JSONL) to this path at exit.
        trace_out: Option<String>,
    },
    /// `dagree serve --service` — the persistent in-process agreement
    /// service with pooled arenas/stores and a bounded ingest queue.
    ServeService {
        /// Node count.
        nodes: usize,
        /// Strong threshold.
        m: usize,
        /// Degraded threshold.
        u: usize,
        /// Total instances to offer over the run.
        instances: usize,
        /// Instances offered per wave (one drain per wave).
        batch: usize,
        /// Bounded ingest-queue capacity; excess offers are shed.
        queue: usize,
        /// Resolve shard workers (decisions are worker-count-independent).
        workers: usize,
        /// Value-stream seed.
        seed: u64,
        /// Faulty nodes with strategies.
        faulty: BTreeMap<NodeId, Strategy<u64>>,
        /// Suppress wall-clock lines and scrub timing from metrics output.
        no_timing: bool,
        /// Write the final scrubbed-or-not registry/span JSONL here.
        metrics_out: Option<String>,
    },
    /// `dagree bombard` — load generator for the service: offers bursts
    /// that may exceed the queue, exercising the shed path.
    Bombard {
        /// Node count.
        nodes: usize,
        /// Strong threshold.
        m: usize,
        /// Degraded threshold.
        u: usize,
        /// Total instances to offer over the run.
        instances: usize,
        /// Instances offered per burst before each drain.
        burst: usize,
        /// Bounded ingest-queue capacity; bursts above it shed.
        queue: usize,
        /// Resolve shard workers (decisions are worker-count-independent).
        workers: usize,
        /// Value-stream seed.
        seed: u64,
        /// Faulty nodes with strategies.
        faulty: BTreeMap<NodeId, Strategy<u64>>,
        /// Suppress wall-clock lines and scrub timing from metrics output.
        no_timing: bool,
        /// Write the final scrubbed-or-not registry/span JSONL here.
        metrics_out: Option<String>,
    },
    /// `dagree batch`
    Batch {
        /// Node count.
        nodes: usize,
        /// Strong threshold.
        m: usize,
        /// Degraded threshold.
        u: usize,
        /// Stream length: how many slots node 0 proposes.
        k: usize,
        /// Base value; slot `i` proposes `value + i`.
        value: u64,
        /// Faulty nodes with strategies.
        faulty: BTreeMap<NodeId, Strategy<u64>>,
        /// Engine seed.
        seed: u64,
    },
    /// `dagree search`
    Search {
        /// Node count (defaults to the bound, or one below with
        /// `below_bound`).
        nodes: usize,
        /// Strong threshold.
        m: usize,
        /// Degraded threshold.
        u: usize,
        /// Whether the instance is deliberately below the node bound.
        below_bound: bool,
        /// Search method.
        method: SearchMethod,
    },
    /// `dagree table`
    Table {
        /// Largest `m` row.
        max_m: usize,
        /// Largest `u` column.
        max_u: usize,
    },
    /// `dagree tradeoffs`
    Tradeoffs {
        /// Node count.
        nodes: usize,
    },
    /// `dagree topology`
    Topology {
        /// The topology specification string.
        kind: String,
        /// Optional params to check the Theorem 3 requirement against.
        params: Option<(usize, usize)>,
    },
    /// `dagree certify`
    Certify {
        /// Strong threshold.
        m: usize,
        /// Degraded threshold.
        u: usize,
        /// Per-configuration adversary budget.
        budget: u128,
    },
    /// `dagree flight`
    Flight {
        /// Architecture name.
        arch: String,
    },
    /// `dagree obs`
    Obs {
        /// Path to the trace file (Chrome trace JSON or JSONL).
        path: String,
        /// How many span groups to show, largest logical cost first.
        top: usize,
        /// Reconstruct and print the longest causal chain to a decision.
        critical_path: bool,
    },
    /// `dagree fuzz`
    Fuzz {
        /// Number of randomized executions.
        budget: usize,
        /// Campaign master seed.
        seed: u64,
        /// Cluster-size ceiling (inclusive).
        max_n: usize,
        /// Deliberate implementation bug to inject (mutant gate).
        mutate: Option<harness::Mutation>,
        /// Force early stopping on in every generated plan.
        early_stop: bool,
        /// Directory minimized repros are written to.
        repro_dir: String,
        /// Repro file to re-run instead of fuzzing.
        replay: Option<String>,
    },
    /// `dagree help`
    Help,
}

/// Search methods for `dagree search`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMethod {
    /// Full enumeration over a small domain.
    Exhaustive,
    /// Seeded randomized tables.
    Random,
    /// Coordinate-ascent.
    HillClimb,
}

/// A parse failure with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// Extracts `--flag value` pairs and standalone `--switches`.
struct Flags<'a> {
    pairs: BTreeMap<&'a str, &'a str>,
    switches: Vec<&'a str>,
}

fn collect_flags(args: &[String]) -> Result<Flags<'_>, ParseError> {
    let mut pairs = BTreeMap::new();
    let mut switches = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if !a.starts_with("--") {
            return err(format!("unexpected argument `{a}`"));
        }
        match a {
            "--below-bound" | "--early-stop" | "--critical-path" | "--trace" | "--service"
            | "--no-timing" => {
                switches.push(a);
                i += 1;
            }
            _ => {
                let Some(v) = args.get(i + 1) else {
                    return err(format!("flag `{a}` needs a value"));
                };
                pairs.insert(a, v.as_str());
                i += 2;
            }
        }
    }
    Ok(Flags { pairs, switches })
}

fn req_usize(flags: &Flags<'_>, name: &str) -> Result<usize, ParseError> {
    match flags.pairs.get(name) {
        None => err(format!("missing required flag `{name}`")),
        Some(v) => v
            .parse()
            .map_err(|_| ParseError(format!("`{name}` expects a number, got `{v}`"))),
    }
}

fn opt_usize(flags: &Flags<'_>, name: &str, default: usize) -> Result<usize, ParseError> {
    match flags.pairs.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| ParseError(format!("`{name}` expects a number, got `{v}`"))),
    }
}

/// Parses a faulty-node specification (see [`USAGE`]).
pub fn parse_faulty(spec: &str) -> Result<BTreeMap<NodeId, Strategy<u64>>, ParseError> {
    let mut out = BTreeMap::new();
    if spec.trim().is_empty() {
        return Ok(out);
    }
    for entry in spec.split(',') {
        let parts: Vec<&str> = entry.split(':').collect();
        if parts.len() < 2 {
            return err(format!("faulty entry `{entry}` needs `node:strategy`"));
        }
        let node: usize = parts[0]
            .parse()
            .map_err(|_| ParseError(format!("bad node id `{}`", parts[0])))?;
        let strategy = match (parts[1], parts.len()) {
            ("silent", 2) => Strategy::Silent,
            ("truthful", 2) => Strategy::Truthful,
            ("constant-lie", 3) => Strategy::ConstantLie(Val::Value(parse_u64(parts[2])?)),
            ("two-faced", 4) => Strategy::TwoFaced {
                even: Val::Value(parse_u64(parts[2])?),
                odd: Val::Value(parse_u64(parts[3])?),
            },
            ("pretend-sender-said", 3) => {
                Strategy::PretendSenderSaid(Val::Value(parse_u64(parts[2])?))
            }
            ("random-lie", 3) => Strategy::RandomLie {
                domain: vec![Val::Default, Val::Value(1), Val::Value(2)],
                seed: parse_u64(parts[2])?,
            },
            _ => return err(format!("unknown strategy spec `{entry}`")),
        };
        out.insert(NodeId::new(node), strategy);
    }
    Ok(out)
}

fn parse_u64(s: &str) -> Result<u64, ParseError> {
    s.parse()
        .map_err(|_| ParseError(format!("expected a number, got `{s}`")))
}

/// Flags shared by `serve --service` and `bombard`.
struct ServiceFlags {
    nodes: usize,
    m: usize,
    u: usize,
    instances: usize,
    queue: usize,
    workers: usize,
    seed: u64,
    faulty: BTreeMap<NodeId, Strategy<u64>>,
    no_timing: bool,
    metrics_out: Option<String>,
}

/// Parses the common service/load-generator flag set plus the per-mode
/// wave-size flag (`--batch` for serve --service, `--burst` for bombard).
fn parse_service_flags<'a>(
    flags: &Flags<'a>,
    wave_flag: &str,
    wave_default: usize,
    queue_default: usize,
) -> Result<(ServiceFlags, usize), ParseError> {
    let faulty = match flags.pairs.get("--faulty") {
        Some(spec) => parse_faulty(spec)?,
        None => BTreeMap::new(),
    };
    let wave = opt_usize(flags, wave_flag, wave_default)?;
    if wave == 0 {
        return err(format!("`{wave_flag}` must be at least 1"));
    }
    let queue = opt_usize(flags, "--queue", queue_default)?;
    if queue == 0 {
        return err("`--queue` must be at least 1");
    }
    let workers = opt_usize(flags, "--workers", 1)?;
    if workers == 0 {
        return err("`--workers` must be at least 1");
    }
    Ok((
        ServiceFlags {
            nodes: req_usize(flags, "--nodes")?,
            m: req_usize(flags, "--m")?,
            u: req_usize(flags, "--u")?,
            instances: opt_usize(flags, "--instances", 256)?,
            queue,
            workers,
            seed: flags
                .pairs
                .get("--seed")
                .map(|v| parse_u64(v))
                .transpose()?
                .unwrap_or(1),
            faulty,
            no_timing: flags.switches.contains(&"--no-timing"),
            metrics_out: flags.pairs.get("--metrics-out").map(|s| s.to_string()),
        },
        wave,
    ))
}

/// Parses a full argument vector (without the program name).
pub fn parse_args(argv: &[String]) -> Result<Command, ParseError> {
    let Some(sub) = argv.first() else {
        return Ok(Command::Help);
    };
    let rest = &argv[1..];
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "run" => {
            let flags = collect_flags(rest)?;
            let faulty = match flags.pairs.get("--faulty") {
                Some(spec) => parse_faulty(spec)?,
                None => BTreeMap::new(),
            };
            let explain = match flags.pairs.get("--explain") {
                Some(v) => Some(NodeId::new(v.parse().map_err(|_| {
                    ParseError(format!("`--explain` expects a node id, got `{v}`"))
                })?)),
                None => None,
            };
            let transport = match flags.pairs.get("--transport") {
                Some(v) => v.parse::<TransportKind>().map_err(ParseError)?,
                None => TransportKind::Sim,
            };
            Ok(Command::Run {
                nodes: req_usize(&flags, "--nodes")?,
                m: req_usize(&flags, "--m")?,
                u: req_usize(&flags, "--u")?,
                value: flags
                    .pairs
                    .get("--value")
                    .map(|v| parse_u64(v))
                    .transpose()?
                    .unwrap_or(42),
                faulty,
                explain,
                transport,
            })
        }
        "serve" => {
            let flags = collect_flags(rest)?;
            if flags.switches.contains(&"--service") {
                // Wave size defaults to 64 with a roomy queue: plain
                // service mode should not shed unless asked to.
                let (common, wave) = parse_service_flags(&flags, "--batch", 64, 10_000)?;
                return Ok(Command::ServeService {
                    nodes: common.nodes,
                    m: common.m,
                    u: common.u,
                    instances: common.instances,
                    batch: wave,
                    queue: common.queue,
                    workers: common.workers,
                    seed: common.seed,
                    faulty: common.faulty,
                    no_timing: common.no_timing,
                    metrics_out: common.metrics_out,
                });
            }
            let faulty = match flags.pairs.get("--faulty") {
                Some(spec) => parse_faulty(spec)?,
                None => BTreeMap::new(),
            };
            let peers: Vec<String> = match flags.pairs.get("--peers") {
                None => return err("missing required flag `--peers`"),
                Some(list) => list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect(),
            };
            if peers.len() < 2 {
                return err("`--peers` needs at least two comma-separated HOST:PORT entries");
            }
            let index = req_usize(&flags, "--index")?;
            if index >= peers.len() {
                return err(format!(
                    "`--index {index}` is out of range for {} peers",
                    peers.len()
                ));
            }
            Ok(Command::Serve {
                index,
                peers,
                m: req_usize(&flags, "--m")?,
                u: req_usize(&flags, "--u")?,
                value: flags
                    .pairs
                    .get("--value")
                    .map(|v| parse_u64(v))
                    .transpose()?
                    .unwrap_or(42),
                faulty,
                round_timeout_ms: flags
                    .pairs
                    .get("--round-timeout-ms")
                    .map(|v| parse_u64(v))
                    .transpose()?
                    .unwrap_or(5_000),
                // Writing metrics or traces requires the tracer, so the
                // output flags imply `--trace`.
                trace: flags.switches.contains(&"--trace")
                    || flags.pairs.contains_key("--metrics-out")
                    || flags.pairs.contains_key("--trace-out"),
                metrics_out: flags.pairs.get("--metrics-out").map(|s| s.to_string()),
                trace_out: flags.pairs.get("--trace-out").map(|s| s.to_string()),
            })
        }
        "bombard" => {
            let flags = collect_flags(rest)?;
            // Burst 96 over queue 64 by default: the generator exists to
            // exercise the shed path, so the defaults guarantee sheds.
            let (common, burst) = parse_service_flags(&flags, "--burst", 96, 64)?;
            Ok(Command::Bombard {
                nodes: common.nodes,
                m: common.m,
                u: common.u,
                instances: common.instances,
                burst,
                queue: common.queue,
                workers: common.workers,
                seed: common.seed,
                faulty: common.faulty,
                no_timing: common.no_timing,
                metrics_out: common.metrics_out,
            })
        }
        "batch" => {
            let flags = collect_flags(rest)?;
            let faulty = match flags.pairs.get("--faulty") {
                Some(spec) => parse_faulty(spec)?,
                None => BTreeMap::new(),
            };
            Ok(Command::Batch {
                nodes: req_usize(&flags, "--nodes")?,
                m: req_usize(&flags, "--m")?,
                u: req_usize(&flags, "--u")?,
                k: opt_usize(&flags, "--k", 4)?,
                value: flags
                    .pairs
                    .get("--value")
                    .map(|v| parse_u64(v))
                    .transpose()?
                    .unwrap_or(42),
                faulty,
                seed: flags
                    .pairs
                    .get("--seed")
                    .map(|v| parse_u64(v))
                    .transpose()?
                    .unwrap_or(1),
            })
        }
        "search" => {
            let flags = collect_flags(rest)?;
            let method = match flags.pairs.get("--method").copied().unwrap_or("exhaustive") {
                "exhaustive" => SearchMethod::Exhaustive,
                "random" => SearchMethod::Random,
                "hillclimb" => SearchMethod::HillClimb,
                other => return err(format!("unknown search method `{other}`")),
            };
            Ok(Command::Search {
                nodes: req_usize(&flags, "--nodes")?,
                m: req_usize(&flags, "--m")?,
                u: req_usize(&flags, "--u")?,
                below_bound: flags.switches.contains(&"--below-bound"),
                method,
            })
        }
        "table" => {
            let flags = collect_flags(rest)?;
            Ok(Command::Table {
                max_m: opt_usize(&flags, "--max-m", 3)?,
                max_u: opt_usize(&flags, "--max-u", 6)?,
            })
        }
        "tradeoffs" => {
            let flags = collect_flags(rest)?;
            Ok(Command::Tradeoffs {
                nodes: req_usize(&flags, "--nodes")?,
            })
        }
        "certify" => {
            let flags = collect_flags(rest)?;
            let budget = match flags.pairs.get("--budget") {
                None => 50_000_000u128,
                Some(v) => v
                    .parse()
                    .map_err(|_| ParseError(format!("bad `--budget` value `{v}`")))?,
            };
            Ok(Command::Certify {
                m: req_usize(&flags, "--m")?,
                u: req_usize(&flags, "--u")?,
                budget,
            })
        }
        "flight" => {
            let flags = collect_flags(rest)?;
            let arch = flags
                .pairs
                .get("--arch")
                .copied()
                .unwrap_or("degradable")
                .to_string();
            Ok(Command::Flight { arch })
        }
        "obs" => {
            let Some((path, rest)) = rest.split_first() else {
                return err("`obs` needs a trace file path");
            };
            if path.starts_with("--") {
                return err("`obs` needs a trace file path before any flags");
            }
            let flags = collect_flags(rest)?;
            Ok(Command::Obs {
                path: path.clone(),
                top: opt_usize(&flags, "--top", 10)?,
                critical_path: flags.switches.contains(&"--critical-path"),
            })
        }
        "fuzz" => {
            let flags = collect_flags(rest)?;
            let mutate = match flags.pairs.get("--mutate") {
                None => None,
                Some(name) => Some(harness::Mutation::from_name(name).map_err(ParseError)?),
            };
            Ok(Command::Fuzz {
                budget: opt_usize(&flags, "--budget", 200)?,
                seed: flags
                    .pairs
                    .get("--seed")
                    .map(|v| parse_u64(v))
                    .transpose()?
                    .unwrap_or(0xF055_F0CC),
                max_n: opt_usize(&flags, "--max-n", 9)?,
                mutate,
                early_stop: flags.switches.contains(&"--early-stop"),
                repro_dir: flags
                    .pairs
                    .get("--repro-dir")
                    .copied()
                    .unwrap_or("results/repros")
                    .to_string(),
                replay: flags.pairs.get("--replay").map(|s| s.to_string()),
            })
        }
        "topology" => {
            let flags = collect_flags(rest)?;
            let kind = flags
                .pairs
                .get("--kind")
                .copied()
                .ok_or_else(|| ParseError("missing required flag `--kind`".into()))?
                .to_string();
            let params = match (flags.pairs.get("--m"), flags.pairs.get("--u")) {
                (Some(m), Some(u)) => Some((
                    m.parse()
                        .map_err(|_| ParseError(format!("bad `--m` value `{m}`")))?,
                    u.parse()
                        .map_err(|_| ParseError(format!("bad `--u` value `{u}`")))?,
                )),
                (None, None) => None,
                _ => return err("`--m` and `--u` must be given together"),
            };
            Ok(Command::Topology { kind, params })
        }
        other => err(format!("unknown subcommand `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_run_minimal() {
        let cmd = parse_args(&sv(&["run", "--nodes", "5", "--m", "1", "--u", "2"])).unwrap();
        match cmd {
            Command::Run {
                nodes,
                m,
                u,
                value,
                faulty,
                explain,
                transport,
            } => {
                assert_eq!((nodes, m, u, value), (5, 1, 2, 42));
                assert!(faulty.is_empty());
                assert!(explain.is_none());
                assert_eq!(transport, TransportKind::Sim);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_run_transport_flag() {
        for (name, kind) in [
            ("sim", TransportKind::Sim),
            ("channel", TransportKind::Channel),
            ("tcp", TransportKind::Tcp),
        ] {
            let cmd = parse_args(&sv(&[
                "run",
                "--nodes",
                "4",
                "--m",
                "1",
                "--u",
                "1",
                "--transport",
                name,
            ]))
            .unwrap();
            match cmd {
                Command::Run { transport, .. } => assert_eq!(transport, kind),
                other => panic!("{other:?}"),
            }
        }
        let e = parse_args(&sv(&[
            "run",
            "--nodes",
            "4",
            "--m",
            "1",
            "--u",
            "1",
            "--transport",
            "udp",
        ]))
        .unwrap_err();
        assert!(e.0.contains("unknown transport"), "{e}");
    }

    #[test]
    fn parse_serve() {
        let cmd = parse_args(&sv(&[
            "serve",
            "--index",
            "1",
            "--peers",
            "127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103",
            "--m",
            "1",
            "--u",
            "1",
            "--round-timeout-ms",
            "250",
        ]))
        .unwrap();
        match cmd {
            Command::Serve {
                index,
                peers,
                m,
                u,
                value,
                faulty,
                round_timeout_ms,
                trace,
                metrics_out,
                trace_out,
            } => {
                assert_eq!((index, m, u, value, round_timeout_ms), (1, 1, 1, 42, 250));
                assert_eq!(peers.len(), 3);
                assert_eq!(peers[2], "127.0.0.1:7103");
                assert!(faulty.is_empty());
                assert!(!trace);
                assert!(metrics_out.is_none() && trace_out.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn serve_observability_flags_imply_tracing() {
        let base = [
            "serve",
            "--index",
            "0",
            "--peers",
            "127.0.0.1:1,127.0.0.1:2",
            "--m",
            "1",
            "--u",
            "1",
        ];
        for extra in [
            &["--trace"][..],
            &["--metrics-out", "m.jsonl"][..],
            &["--trace-out", "t.jsonl"][..],
        ] {
            let mut argv = base.to_vec();
            argv.extend_from_slice(extra);
            match parse_args(&sv(&argv)).unwrap() {
                Command::Serve {
                    trace,
                    metrics_out,
                    trace_out,
                    ..
                } => {
                    assert!(trace, "{extra:?} must arm the tracer");
                    assert_eq!(metrics_out.is_some(), extra[0] == "--metrics-out");
                    assert_eq!(trace_out.is_some(), extra[0] == "--trace-out");
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn serve_rejects_bad_shapes() {
        // Index out of range for the peer list.
        let e = parse_args(&sv(&[
            "serve",
            "--index",
            "3",
            "--peers",
            "127.0.0.1:1,127.0.0.1:2",
            "--m",
            "1",
            "--u",
            "1",
        ]))
        .unwrap_err();
        assert!(e.0.contains("out of range"), "{e}");
        // A mesh of one is not a mesh.
        let e = parse_args(&sv(&[
            "serve",
            "--index",
            "0",
            "--peers",
            "127.0.0.1:1",
            "--m",
            "1",
            "--u",
            "1",
        ]))
        .unwrap_err();
        assert!(e.0.contains("at least two"), "{e}");
        // Peers are required.
        let e = parse_args(&sv(&["serve", "--index", "0", "--m", "1", "--u", "1"])).unwrap_err();
        assert!(e.0.contains("--peers"), "{e}");
    }

    #[test]
    fn parse_serve_service_mode() {
        let cmd = parse_args(&sv(&[
            "serve",
            "--service",
            "--nodes",
            "5",
            "--m",
            "1",
            "--u",
            "2",
        ]))
        .unwrap();
        match cmd {
            Command::ServeService {
                nodes,
                m,
                u,
                instances,
                batch,
                queue,
                workers,
                seed,
                faulty,
                no_timing,
                metrics_out,
            } => {
                assert_eq!((nodes, m, u), (5, 1, 2));
                assert_eq!(
                    (instances, batch, queue, workers, seed),
                    (256, 64, 10_000, 1, 1)
                );
                assert!(faulty.is_empty() && !no_timing && metrics_out.is_none());
            }
            other => panic!("{other:?}"),
        }
        // Without --service, serve still demands a peer list.
        let e = parse_args(&sv(&["serve", "--nodes", "5", "--m", "1", "--u", "2"])).unwrap_err();
        assert!(e.0.contains("--peers"), "{e}");
    }

    #[test]
    fn parse_bombard_defaults_guarantee_sheds() {
        match parse_args(&sv(&["bombard", "--nodes", "5", "--m", "1", "--u", "2"])).unwrap() {
            Command::Bombard { burst, queue, .. } => {
                assert!(
                    burst > queue,
                    "default burst {burst} must exceed queue {queue}"
                );
                assert_eq!((burst, queue), (96, 64));
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&sv(&[
            "bombard",
            "--nodes",
            "7",
            "--m",
            "2",
            "--u",
            "2",
            "--instances",
            "512",
            "--burst",
            "32",
            "--queue",
            "16",
            "--workers",
            "8",
            "--seed",
            "9",
            "--no-timing",
            "--metrics-out",
            "svc.jsonl",
            "--faulty",
            "3:silent",
        ]))
        .unwrap()
        {
            Command::Bombard {
                nodes,
                m,
                u,
                instances,
                burst,
                queue,
                workers,
                seed,
                faulty,
                no_timing,
                metrics_out,
            } => {
                assert_eq!((nodes, m, u, instances), (7, 2, 2, 512));
                assert_eq!((burst, queue, workers, seed), (32, 16, 8, 9));
                assert_eq!(faulty.len(), 1);
                assert!(no_timing);
                assert_eq!(metrics_out.as_deref(), Some("svc.jsonl"));
            }
            other => panic!("{other:?}"),
        }
        for bad in [
            &[
                "bombard", "--nodes", "5", "--m", "1", "--u", "2", "--burst", "0",
            ][..],
            &[
                "bombard", "--nodes", "5", "--m", "1", "--u", "2", "--queue", "0",
            ][..],
            &[
                "bombard",
                "--nodes",
                "5",
                "--m",
                "1",
                "--u",
                "2",
                "--workers",
                "0",
            ][..],
        ] {
            assert!(parse_args(&sv(bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn parse_run_full() {
        let cmd = parse_args(&sv(&[
            "run",
            "--nodes",
            "5",
            "--m",
            "1",
            "--u",
            "2",
            "--value",
            "9",
            "--faulty",
            "3:constant-lie:7,4:silent",
            "--explain",
            "1",
        ]))
        .unwrap();
        match cmd {
            Command::Run {
                value,
                faulty,
                explain,
                ..
            } => {
                assert_eq!(value, 9);
                assert_eq!(faulty.len(), 2);
                assert_eq!(faulty[&NodeId::new(4)], Strategy::Silent);
                assert_eq!(explain, Some(NodeId::new(1)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_faulty_variants() {
        let f = parse_faulty("0:two-faced:1:2,3:pretend-sender-said:5,4:random-lie:99").unwrap();
        assert_eq!(f.len(), 3);
        assert!(matches!(f[&NodeId::new(0)], Strategy::TwoFaced { .. }));
        assert!(matches!(
            f[&NodeId::new(4)],
            Strategy::RandomLie { seed: 99, .. }
        ));
    }

    #[test]
    fn parse_faulty_rejects_garbage() {
        assert!(parse_faulty("3").is_err());
        assert!(parse_faulty("x:silent").is_err());
        assert!(parse_faulty("3:mystery").is_err());
        assert!(parse_faulty("3:constant-lie").is_err());
    }

    #[test]
    fn parse_search() {
        let cmd = parse_args(&sv(&[
            "search",
            "--nodes",
            "4",
            "--m",
            "1",
            "--u",
            "2",
            "--below-bound",
            "--method",
            "hillclimb",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Search {
                nodes: 4,
                m: 1,
                u: 2,
                below_bound: true,
                method: SearchMethod::HillClimb,
            }
        );
    }

    #[test]
    fn parse_batch() {
        let cmd = parse_args(&sv(&[
            "batch", "--nodes", "5", "--m", "1", "--u", "2", "--k", "8", "--faulty", "3:silent",
        ]))
        .unwrap();
        match cmd {
            Command::Batch {
                nodes,
                m,
                u,
                k,
                value,
                faulty,
                seed,
            } => {
                assert_eq!((nodes, m, u, k, value, seed), (5, 1, 2, 8, 42, 1));
                assert_eq!(faulty.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_table_defaults() {
        assert_eq!(
            parse_args(&sv(&["table"])).unwrap(),
            Command::Table { max_m: 3, max_u: 6 }
        );
    }

    #[test]
    fn parse_topology() {
        let cmd = parse_args(&sv(&[
            "topology",
            "--kind",
            "harary:4:8",
            "--m",
            "1",
            "--u",
            "2",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Topology {
                kind: "harary:4:8".into(),
                params: Some((1, 2)),
            }
        );
    }

    #[test]
    fn topology_requires_both_params() {
        assert!(parse_args(&sv(&["topology", "--kind", "ring:5", "--m", "1"])).is_err());
    }

    #[test]
    fn missing_flags_are_reported() {
        let e = parse_args(&sv(&["run", "--nodes", "5"])).unwrap_err();
        assert!(e.0.contains("--m"));
    }

    #[test]
    fn parse_certify() {
        assert_eq!(
            parse_args(&sv(&["certify", "--m", "1", "--u", "2"])).unwrap(),
            Command::Certify {
                m: 1,
                u: 2,
                budget: 50_000_000
            }
        );
        assert_eq!(
            parse_args(&sv(&["certify", "--m", "1", "--u", "1", "--budget", "99"])).unwrap(),
            Command::Certify {
                m: 1,
                u: 1,
                budget: 99
            }
        );
    }

    #[test]
    fn parse_flight() {
        assert_eq!(
            parse_args(&sv(&["flight", "--arch", "byzantine"])).unwrap(),
            Command::Flight {
                arch: "byzantine".into()
            }
        );
        assert_eq!(
            parse_args(&sv(&["flight"])).unwrap(),
            Command::Flight {
                arch: "degradable".into()
            }
        );
    }

    #[test]
    fn parse_obs() {
        assert_eq!(
            parse_args(&sv(&["obs", "trace.json"])).unwrap(),
            Command::Obs {
                path: "trace.json".into(),
                top: 10,
                critical_path: false,
            }
        );
        assert_eq!(
            parse_args(&sv(&["obs", "t.jsonl", "--top", "3", "--critical-path"])).unwrap(),
            Command::Obs {
                path: "t.jsonl".into(),
                top: 3,
                critical_path: true,
            }
        );
        assert!(parse_args(&sv(&["obs"])).is_err());
        assert!(parse_args(&sv(&["obs", "--top", "3"])).is_err());
    }

    #[test]
    fn parse_fuzz_defaults_and_flags() {
        assert_eq!(
            parse_args(&sv(&["fuzz"])).unwrap(),
            Command::Fuzz {
                budget: 200,
                seed: 0xF055_F0CC,
                max_n: 9,
                mutate: None,
                early_stop: false,
                repro_dir: "results/repros".into(),
                replay: None,
            }
        );
        assert_eq!(
            parse_args(&sv(&[
                "fuzz",
                "--budget",
                "50",
                "--seed",
                "7",
                "--max-n",
                "6",
                "--mutate",
                "relay-suppression",
                "--early-stop",
                "--repro-dir",
                "/tmp/r",
            ]))
            .unwrap(),
            Command::Fuzz {
                budget: 50,
                seed: 7,
                max_n: 6,
                mutate: Some(harness::Mutation::SuppressRelay),
                early_stop: true,
                repro_dir: "/tmp/r".into(),
                replay: None,
            }
        );
        for name in ["wrong-value-relay", "early-decision", "vote-off-by-one"] {
            match parse_args(&sv(&["fuzz", "--mutate", name])).unwrap() {
                Command::Fuzz {
                    mutate: Some(m), ..
                } => assert_eq!(m.name(), name),
                other => panic!("{other:?}"),
            }
        }
        let e = parse_args(&sv(&["fuzz", "--mutate", "nope"])).unwrap_err();
        assert!(e.0.contains("unknown mutation"), "{e}");
        match parse_args(&sv(&["fuzz", "--replay", "results/repros/x.json"])).unwrap() {
            Command::Fuzz { replay, .. } => {
                assert_eq!(replay.as_deref(), Some("results/repros/x.json"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_argv_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn unknown_subcommand_rejected() {
        assert!(parse_args(&sv(&["frobnicate"])).is_err());
    }
}
