//! `dagree` — command-line explorer for m/u-degradable agreement.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match degradable_cli::run(&argv) {
        Ok(text) => println!("{text}"),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}
