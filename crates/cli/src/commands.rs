//! Subcommand implementations; each returns the text to print.

use crate::args::{Command, SearchMethod, USAGE};
use degradable::analysis::{min_nodes_table, tradeoffs, MinNodesCell};
use degradable::{
    check_degradable, explain_receiver, AdversaryRun, ByzInstance, ExhaustiveSearch,
    HillClimbSearch, Params, RandomizedSearch, Val, Verdict,
};
use simnet::{vertex_connectivity, NodeId, Topology};
use std::fmt::Write as _;

/// Runs the parsed command and returns its output.
pub fn dispatch(cmd: &Command) -> String {
    match cmd {
        Command::Help => USAGE.to_string(),
        Command::Run {
            nodes,
            m,
            u,
            value,
            faulty,
            explain,
            transport,
        } => run_cmd(*nodes, *m, *u, *value, faulty, *explain, *transport),
        Command::Serve {
            index,
            peers,
            m,
            u,
            value,
            faulty,
            round_timeout_ms,
            trace,
            metrics_out,
            trace_out,
        } => serve_cmd(
            *index,
            peers,
            *m,
            *u,
            *value,
            faulty,
            *round_timeout_ms,
            *trace,
            metrics_out.as_deref(),
            trace_out.as_deref(),
        ),
        Command::ServeService {
            nodes,
            m,
            u,
            instances,
            batch,
            queue,
            workers,
            seed,
            faulty,
            no_timing,
            metrics_out,
        } => service_cmd(
            "service",
            *nodes,
            *m,
            *u,
            *instances,
            *batch,
            *queue,
            *workers,
            *seed,
            faulty,
            *no_timing,
            metrics_out.as_deref(),
        ),
        Command::Bombard {
            nodes,
            m,
            u,
            instances,
            burst,
            queue,
            workers,
            seed,
            faulty,
            no_timing,
            metrics_out,
        } => service_cmd(
            "bombard",
            *nodes,
            *m,
            *u,
            *instances,
            *burst,
            *queue,
            *workers,
            *seed,
            faulty,
            *no_timing,
            metrics_out.as_deref(),
        ),
        Command::Batch {
            nodes,
            m,
            u,
            k,
            value,
            faulty,
            seed,
        } => batch_cmd(*nodes, *m, *u, *k, *value, faulty, *seed),
        Command::Search {
            nodes,
            m,
            u,
            below_bound,
            method,
        } => search_cmd(*nodes, *m, *u, *below_bound, *method),
        Command::Table { max_m, max_u } => table_cmd(*max_m, *max_u),
        Command::Tradeoffs { nodes } => tradeoffs_cmd(*nodes),
        Command::Topology { kind, params } => topology_cmd(kind, *params),
        Command::Certify { m, u, budget } => certify_cmd(*m, *u, *budget),
        Command::Flight { arch } => flight_cmd(arch),
        Command::Obs {
            path,
            top,
            critical_path,
        } => obs_cmd(path, *top, *critical_path),
        Command::Fuzz {
            budget,
            seed,
            max_n,
            mutate,
            early_stop,
            repro_dir,
            replay,
        } => fuzz_cmd(
            *budget,
            *seed,
            *max_n,
            *mutate,
            *early_stop,
            repro_dir,
            replay.as_deref(),
        ),
    }
}

/// Renders a fuzz plan on one line (repro listings and failure reports).
fn fuzz_plan_line(plan: &harness::FuzzPlan) -> String {
    let faults: Vec<String> = plan
        .faults
        .iter()
        .map(|(node, spec)| format!("{node}:{spec}"))
        .collect();
    format!(
        "n={} m={} u={} sender={} value={} faults=[{}] drop_p={} hot_edge={} seed={:#x} \
         early_stop={}",
        plan.n,
        plan.m,
        plan.u,
        plan.sender,
        plan.sender_value,
        faults.join(","),
        plan.drop_p,
        plan.hot_edge_threshold
            .map_or("none".to_string(), |t| t.to_string()),
        plan.seed,
        plan.early_stop,
    )
}

fn fuzz_replay_cmd(path: &str) -> String {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return format!("error: cannot read `{path}`: {e}"),
    };
    let outcome = match harness::replay(&text) {
        Ok(o) => o,
        Err(e) => return format!("error: `{path}` is not a usable repro: {}", one_line(&e)),
    };
    let mut out = String::new();
    let _ = writeln!(out, "replaying {path}");
    let _ = writeln!(out, "plan: {}", fuzz_plan_line(&outcome.plan));
    let _ = writeln!(
        out,
        "mutation: {}",
        outcome.mutation.map_or("none", |m| m.name())
    );
    let _ = writeln!(out, "recorded violation: {}", outcome.recorded);
    if let Some(chain) = &outcome.recorded_trace {
        let _ = writeln!(out, "recorded causal chain: {chain}");
    }
    match &outcome.report.violation {
        Some(v) => {
            let _ = writeln!(out, "first divergent step: {v}");
            if let Some(chain) = &v.trace {
                let _ = writeln!(out, "  causal chain: {chain}");
            }
            let _ = writeln!(out, "REPRODUCED ({} steps driven)", outcome.report.steps);
        }
        None => {
            let _ = writeln!(
                out,
                "NO LONGER REPRODUCES — {} steps driven, all conformant (fixed?)",
                outcome.report.steps
            );
        }
    }
    out
}

fn fuzz_cmd(
    budget: usize,
    seed: u64,
    max_n: usize,
    mutate: Option<harness::Mutation>,
    early_stop: bool,
    repro_dir: &str,
    replay: Option<&str>,
) -> String {
    if let Some(path) = replay {
        return fuzz_replay_cmd(path);
    }
    let config = harness::FuzzConfig {
        seed,
        budget,
        max_n,
        mutation: mutate,
        force_early_stop: early_stop,
        backends: true,
    };
    let outcome = harness::fuzz(&config);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fuzz: budget={budget} seed={seed:#x} max_n={max_n} mutation={} early_stop={}",
        mutate.map_or("none", |m| m.name()),
        if early_stop { "forced" } else { "mixed" },
    );
    let _ = writeln!(
        out,
        "executions={} backend_executions={} violations={}",
        outcome.executions,
        outcome.backend_executions,
        outcome.failures.len()
    );
    for failure in &outcome.failures {
        let _ = writeln!(
            out,
            "failure trial={}: {}",
            failure.trial, failure.violation
        );
        if let Some(chain) = &failure.violation.trace {
            let _ = writeln!(out, "  causal chain: {chain}");
        }
        let _ = writeln!(out, "  shrunk plan: {}", fuzz_plan_line(&failure.shrunk));
        let _ = writeln!(out, "  shrink cost: {} executions", failure.shrink_iters);
        match harness::write_repro(std::path::Path::new(repro_dir), failure, seed, mutate) {
            Ok(path) => {
                let _ = writeln!(out, "  repro: {}", path.display());
            }
            Err(e) => {
                let _ = writeln!(out, "  repro: FAILED to write under {repro_dir}: {e}");
            }
        }
    }
    let _ = writeln!(
        out,
        "conformance: {}",
        if outcome.clean() {
            "OK — every execution matched the abstract BYZ(m, u) machine"
        } else if mutate.is_some() {
            "MUTANT CAUGHT — the checker detected the injected bug"
        } else {
            "VIOLATED — see repro files above"
        }
    );
    out
}

fn obs_cmd(path: &str, top: usize, critical_path: bool) -> String {
    // Every failure mode is exactly one line: these surface in scripts and
    // CI logs, where a multi-line parser dump buries the actual problem.
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return format!("error: cannot read `{path}`: {e}"),
    };
    if text.trim().is_empty() {
        return format!(
            "error: `{path}` is empty — expected a Chrome trace JSON or JSONL file \
             (was the experiment run with --trace-out?)"
        );
    }
    match obs::parse_trace(&text) {
        Err(e) => format!(
            "error: `{path}` is not a recognized trace (truncated write, or not a trace \
             at all?): {}",
            one_line(&e)
        ),
        Ok(trace) if critical_path => critical_path_report(path, &trace),
        Ok(trace) => summarize_trace(path, &trace, top),
    }
}

/// Reconstructs the longest causal chain ending in a decision from the
/// `trace.*` spans a traced run records (see `transport::NodeTracer`).
///
/// A context's ancestry is its own relay path — every prefix of the path
/// is the context one hop earlier ([`obs::TraceCtx::is_parent_of`] is
/// exactly one-hop path extension) — so the longest chain to a decision
/// is the deepest context delivered to a node that recorded
/// `trace.decide`. Ties break toward the lexicographically smallest
/// path, keeping the output byte-identical across worker counts.
fn critical_path_report(path: &str, trace: &obs::ParsedTrace) -> String {
    use std::collections::BTreeSet;
    let arg = |span: &obs::SpanRecord, name: &str| -> Option<u64> {
        span.args.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    };
    let mut deciders: BTreeSet<u64> = BTreeSet::new();
    let mut seen: BTreeSet<(u64, Vec<u64>)> = BTreeSet::new();
    let mut delivered: Vec<(obs::TraceCtx, u64)> = Vec::new();
    for span in &trace.spans {
        match span.name.as_str() {
            "trace.decide" => {
                if let Some(node) = arg(span, "node") {
                    deciders.insert(node);
                }
            }
            "trace.send" | "trace.deliver" => {
                if let Some(ctx) = obs::TraceCtx::from_span_args(&span.args) {
                    seen.insert((ctx.instance, ctx.path.clone()));
                    if span.name == "trace.deliver" {
                        if let Some(node) = arg(span, "node") {
                            delivered.push((ctx, node));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    if seen.is_empty() {
        return format!(
            "error: `{path}` carries no trace contexts — was the run traced \
             (--trace / RunOptions::traced)?"
        );
    }
    let deeper =
        |a: &(u64, &[u64]), b: &(u64, &[u64])| a.1.len().cmp(&b.1.len()).then_with(|| b.1.cmp(a.1));
    // Deepest delivery into a decider wins; a trace with no decision
    // (e.g. the designated sender's own file) falls back to the deepest
    // context observed anywhere, clearly labelled.
    let tip: Option<obs::TraceCtx> = delivered
        .iter()
        .filter(|(_, node)| deciders.contains(node))
        .map(|(ctx, _)| ctx)
        .max_by(|a, b| deeper(&(a.instance, &a.path), &(b.instance, &b.path)))
        .cloned();
    let (tip, decided) = match tip {
        Some(t) => (t, true),
        None => {
            let (inst, p) = seen
                .iter()
                .map(|(inst, p)| (*inst, p.as_slice()))
                .max_by(|a, b| deeper(a, b))
                .expect("seen is non-empty");
            (obs::TraceCtx::new(inst, p.to_vec()), false)
        }
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: critical path — {} hop(s){}",
        tip.path.len(),
        if decided {
            " to a decision"
        } else {
            " (no decision observed; deepest chain shown)"
        },
    );
    for k in 1..=tip.path.len() {
        let prefix = obs::TraceCtx::new(tip.instance, tip.path[..k].to_vec());
        let note = if seen.contains(&(prefix.instance, prefix.path.clone())) {
            ""
        } else {
            "  (unobserved — inferred from the tip's path)"
        };
        let _ = writeln!(out, "  hop {k}: {prefix}{note}");
    }
    if decided {
        let who: BTreeSet<u64> = delivered
            .iter()
            .filter(|(ctx, node)| *ctx == tip && deciders.contains(node))
            .map(|(_, node)| *node)
            .collect();
        let who: Vec<String> = who.into_iter().map(|n| format!("n{n}")).collect();
        let _ = writeln!(out, "  decided at {}", who.join(", "));
    }
    out
}

/// Collapses a (possibly multi-line) parser message onto one line.
fn one_line(msg: &str) -> String {
    msg.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Renders the `cli obs` summary: spans grouped by name (largest total
/// logical cost first), then the embedded registry sections. Split from
/// [`obs_cmd`] so tests can feed a parsed trace directly.
fn summarize_trace(path: &str, trace: &obs::ParsedTrace, top: usize) -> String {
    use harness::Table;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: {} spans, {} counters, {} gauges, {} histograms",
        trace.spans.len(),
        trace.registry.counters().count(),
        trace.registry.gauges().count(),
        trace.registry.histograms().count(),
    );

    // Group spans by name, preserving first-appearance order before
    // sorting, so ties break deterministically.
    let mut groups: Vec<(&str, u64, u64, u64)> = Vec::new(); // name, count, logical, wall
    for span in &trace.spans {
        match groups.iter_mut().find(|(n, ..)| *n == span.name) {
            Some((_, count, logical, wall)) => {
                *count += 1;
                *logical += span.logical;
                *wall += span.wall_nanos;
            }
            None => groups.push((&span.name, 1, span.logical, span.wall_nanos)),
        }
    }
    groups.sort_by_key(|g| std::cmp::Reverse(g.2));
    let shown = groups.len().min(top);
    let mut spans_table = Table::new(
        format!(
            "top {shown} of {} span groups by logical cost",
            groups.len()
        ),
        &["span", "count", "logical", "wall_ms"],
    );
    for (name, count, logical, wall) in groups.iter().take(top) {
        spans_table.push_row(vec![
            name.to_string(),
            count.to_string(),
            logical.to_string(),
            format!("{:.3}", *wall as f64 / 1e6),
        ]);
    }
    out.push_str(&spans_table.to_ascii());

    let registry = &trace.registry;
    if registry.counters().next().is_some() || registry.gauges().next().is_some() {
        let mut table = Table::new("registry: counters and gauges", &["name", "kind", "value"]);
        for (name, value) in registry.counters() {
            table.push_row(vec![name.to_string(), "counter".into(), value.to_string()]);
        }
        for (name, value) in registry.gauges() {
            table.push_row(vec![name.to_string(), "gauge".into(), value.to_string()]);
        }
        out.push_str(&table.to_ascii());
    }
    if registry.histograms().next().is_some() {
        let mut table = Table::new(
            "registry: histograms",
            &[
                "name",
                "count",
                "sum",
                "mean",
                "buckets (<=bound: n, last = overflow)",
            ],
        );
        for (name, h) in registry.histograms() {
            let mut cells: Vec<String> = h
                .bounds()
                .iter()
                .zip(h.buckets())
                .map(|(b, n)| format!("<={b}: {n}"))
                .collect();
            cells.push(format!(">: {}", h.buckets().last().copied().unwrap_or(0)));
            let mean = if h.count() > 0 {
                format!("{:.1}", h.sum() as f64 / h.count() as f64)
            } else {
                "-".into()
            };
            table.push_row(vec![
                name.to_string(),
                h.count().to_string(),
                h.sum().to_string(),
                mean,
                cells.join("  "),
            ]);
        }
        out.push_str(&table.to_ascii());
    }
    out
}

fn certify_cmd(m: usize, u: usize, budget: u128) -> String {
    let params = match Params::new(m, u) {
        Ok(p) => p,
        Err(e) => return format!("error: {e}"),
    };
    let n = params.min_nodes();
    match degradable::certify(params, n, budget) {
        Err(e) => format!("error: {e}"),
        Ok(report) => {
            if report.certified() {
                format!(
                    "CERTIFIED: {params} at N = {n}\n\
                     every sender x every fault set (f <= {u}) x every adversary over {{V_d,1,2}}\n\
                     {} configurations, {} adversary tables — no violation (Theorem 1, machine-checked)",
                    report.configurations, report.adversaries
                )
            } else {
                format!(
                    "VIOLATION at {params}, N = {n}: {:?}",
                    report.violation.map(|w| w.violation)
                )
            }
        }
    }
}

fn flight_cmd(arch: &str) -> String {
    use channels::prelude::*;
    let arch = match arch {
        "byzantine" => Architecture::Byzantine { m: 1 },
        "crusader" => Architecture::Crusader { t: 1 },
        "degradable" => Architecture::Degradable {
            params: Params::new(1, 2).expect("1 <= 2"),
        },
        other => return format!("error: unknown architecture `{other}`"),
    };
    let report = fly(arch, FlightConfig::default());
    let mut out = String::new();
    let _ = writeln!(out, "flight on {}:", report.architecture);
    let _ = writeln!(out, "  correct actuations : {}", report.correct_cycles);
    let _ = writeln!(out, "  pilot alerts (hold): {}", report.pilot_alerts);
    let _ = writeln!(out, "  wrong actuations   : {}", report.wrong_actuations);
    let _ = writeln!(
        out,
        "  outcome            : {}",
        if report.crashed {
            "LEFT SAFE ENVELOPE"
        } else {
            "completed safely"
        }
    );
    out
}

fn make_instance(
    nodes: usize,
    m: usize,
    u: usize,
    allow_below: bool,
) -> Result<ByzInstance, String> {
    let params = Params::new(m, u).map_err(|e| e.to_string())?;
    let result = if allow_below {
        ByzInstance::new_below_bound(nodes, params, NodeId::new(0))
    } else {
        ByzInstance::new(nodes, params, NodeId::new(0))
    };
    result.map_err(|e| e.to_string())
}

fn run_cmd(
    nodes: usize,
    m: usize,
    u: usize,
    value: u64,
    faulty: &std::collections::BTreeMap<NodeId, degradable::Strategy<u64>>,
    explain: Option<NodeId>,
    kind: transport::TransportKind,
) -> String {
    let instance = match make_instance(nodes, m, u, false) {
        Ok(i) => i,
        Err(e) => return format!("error: {e}"),
    };
    let scenario = harness::Scenario::new(nodes, m, u)
        .with_sender_value(Val::Value(value))
        .with_strategies(faulty.clone())
        .with_transport(kind);
    let (record, run) = match harness::TransportExecutor.execute_detailed(&scenario) {
        Ok(x) => x,
        Err(e) => return format!("error: {e}"),
    };
    let mut out = String::new();
    let _ = writeln!(out, "{instance}");
    let _ = writeln!(
        out,
        "sender value: {value}; f = {}; transport: {kind} \
         ({} envelopes sent, {} delivered)",
        record.f(),
        run.stats.sent,
        run.stats.delivered
    );
    for (r, v) in record.fault_free_decisions() {
        let _ = writeln!(out, "  fault-free {r} decided {v}");
    }
    match check_degradable(&record) {
        Verdict::Satisfied(s) => {
            let _ = writeln!(
                out,
                "verdict: condition {} satisfied ({} fault-free nodes agree on one value)",
                s.condition, s.largest_agreeing
            );
        }
        Verdict::Violated(v) => {
            let _ = writeln!(out, "verdict: VIOLATED — {v}");
        }
        Verdict::BeyondU { f } => {
            let _ = writeln!(out, "verdict: f = {f} > u — no promise applies");
        }
    }
    if let Some(r) = explain {
        // Narration walks the reference behaviour function; decisions are
        // identical to the transport run's (the differential suite's
        // invariant), so the story matches what the backend did.
        let reference = AdversaryRun {
            instance,
            sender_value: Val::Value(value),
            strategies: faulty.clone(),
        };
        let _ = writeln!(out, "\n{}", explain_receiver(&reference, r));
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn serve_cmd(
    index: usize,
    peers: &[String],
    m: usize,
    u: usize,
    value: u64,
    faulty: &std::collections::BTreeMap<NodeId, degradable::Strategy<u64>>,
    round_timeout_ms: u64,
    trace: bool,
    metrics_out: Option<&str>,
    trace_out: Option<&str>,
) -> String {
    use std::net::ToSocketAddrs;
    let mut addrs = Vec::with_capacity(peers.len());
    for peer in peers {
        match peer.to_socket_addrs() {
            Ok(mut resolved) => match resolved.next() {
                Some(a) => addrs.push(a),
                None => return format!("error: peer `{peer}` resolved to no address"),
            },
            Err(e) => return format!("error: cannot resolve peer `{peer}`: {e}"),
        }
    }
    let instance = match make_instance(addrs.len(), m, u, false) {
        Ok(i) => i,
        Err(e) => return format!("error: {e}"),
    };
    let me = NodeId::new(index);
    let config = transport::MeshConfig {
        round_timeout: std::time::Duration::from_millis(round_timeout_ms),
        dial_timeout: std::time::Duration::from_secs(30),
        ..transport::MeshConfig::default()
    };
    let endpoint = match transport::tcp_join(
        me,
        &addrs,
        instance.depth(),
        transport::LinkChaos::healthy(),
        config,
    ) {
        Ok(t) => t,
        Err(e) => return format!("error: node {index} failed to join the mesh: {e}"),
    };
    let machine = degradable::NodeStateMachine::new(
        &instance,
        me,
        Val::Value(value),
        faulty.get(&me).cloned(),
    );
    let drive = transport::MeshDriveOptions {
        record_events: false,
        trace,
        instance: 0,
        metrics_out: metrics_out.map(std::path::PathBuf::from),
    };
    let outcome = transport::drive_mesh_opts(endpoint, machine, &drive);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{instance}: node {me} served over tcp ({} peers)",
        addrs.len() - 1
    );
    match outcome.decision {
        Some(d) => {
            let _ = writeln!(out, "decided {d}");
        }
        None if me == instance.sender() => {
            let _ = writeln!(out, "sent {} as the designated sender", Val::Value(value));
        }
        None => {
            let _ = writeln!(out, "no decision recorded");
        }
    }
    let _ = writeln!(
        out,
        "traffic: {} envelopes sent, {} delivered, {} round timeouts expired",
        outcome.stats.sent, outcome.stats.delivered, outcome.stats.false_timeouts
    );
    if trace {
        let reg = outcome.obs.registry();
        let _ = writeln!(
            out,
            "trace: {} sends stamped, {} delivers ({} untraced), {} decides, {} spans dropped",
            reg.counter("trace.sends"),
            reg.counter("trace.delivers"),
            reg.counter("trace.delivers_untraced"),
            reg.counter("trace.decides"),
            outcome.obs.dropped_spans(),
        );
    }
    if let Some(path) = metrics_out {
        let _ = writeln!(out, "metrics snapshots appended to {path}");
    }
    if let Some(path) = trace_out {
        match std::fs::write(path, obs::jsonl(&outcome.obs)) {
            Ok(()) => {
                let _ = writeln!(out, "trace spans written to {path}");
            }
            Err(e) => {
                let _ = writeln!(out, "error: cannot write trace to {path}: {e}");
            }
        }
    }
    if let Some(failure) = &outcome.failure {
        let _ = writeln!(out, "error: {failure}");
    }
    out
}

fn batch_cmd(
    nodes: usize,
    m: usize,
    u: usize,
    k: usize,
    value: u64,
    faulty: &std::collections::BTreeMap<NodeId, degradable::Strategy<u64>>,
    seed: u64,
) -> String {
    let params = match Params::new(m, u) {
        Ok(p) => p,
        Err(e) => return format!("error: {e}"),
    };
    if !params.admits(nodes) {
        return format!(
            "error: BYZ({m},{u}) needs at least {} nodes, got {nodes}",
            params.min_nodes()
        );
    }
    let sender = NodeId::new(0);
    let instances: Vec<degradable::BatchInstance<u64>> = (0..k)
        .map(|slot| degradable::BatchInstance {
            sender,
            value: Val::Value(value + slot as u64),
        })
        .collect();
    let batch = degradable::run_batch(params, nodes, &instances, faulty, seed);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "batch: {k} slot(s) from {sender} on BYZ({m},{u}) with n = {nodes}, f = {}",
        faulty.len()
    );
    for (slot, decisions) in batch.decisions.iter().enumerate() {
        let fault_free: Vec<_> = decisions
            .iter()
            .filter(|(r, _)| !faulty.contains_key(r))
            .collect();
        let distinct: std::collections::BTreeSet<_> = fault_free.iter().map(|(_, v)| **v).collect();
        if distinct.len() == 1 {
            let _ = writeln!(
                out,
                "  slot {slot} (sent {}): all {} fault-free receivers decided {}",
                instances[slot].value,
                fault_free.len(),
                fault_free[0].1
            );
        } else {
            let _ = writeln!(
                out,
                "  slot {slot} (sent {}): SPLIT —",
                instances[slot].value
            );
            for (r, v) in fault_free {
                let _ = writeln!(out, "    {r} decided {v}");
            }
        }
    }
    let eig = batch.net.eig;
    let _ = writeln!(
        out,
        "transport: {} messages over {} rounds (one multiplexed engine run)",
        batch.net.sent, batch.net.rounds_run
    );
    let _ = writeln!(
        out,
        "arena: {} built, {} reused; {} votes evaluated, {} memo hits, \
         {} observations materialized; {} cross-instance spoofs rejected",
        batch.arena_builds,
        k - batch.arena_builds,
        eig.votes_evaluated,
        eig.votes_memo_hit,
        eig.messages_materialized,
        batch.spoofs_rejected
    );
    out
}

/// The `serve --service` / `bombard` driver: offers `instances` seeded
/// agreement instances to a persistent [`degradable::ServiceState`] in
/// waves of `wave`, draining after each wave. Senders round-robin over
/// the cluster, values cycle a small domain so store memoization has
/// something to reuse, and every 4th drain is re-decided through the
/// one-shot [`degradable::run_batch`] oracle as a live equivalence
/// sample. With `no_timing` the report (and any `--metrics-out` JSONL)
/// is deterministic and worker-count-independent.
#[allow(clippy::too_many_arguments)]
fn service_cmd(
    mode: &str,
    nodes: usize,
    m: usize,
    u: usize,
    instances: usize,
    wave: usize,
    queue: usize,
    workers: usize,
    seed: u64,
    faulty: &std::collections::BTreeMap<NodeId, degradable::Strategy<u64>>,
    no_timing: bool,
    metrics_out: Option<&str>,
) -> String {
    let params = match Params::new(m, u) {
        Ok(p) => p,
        Err(e) => return format!("error: {e}"),
    };
    let config = degradable::ServiceConfig {
        queue_capacity: queue,
        workers,
    };
    let mut svc: degradable::ServiceState<u64> =
        match degradable::ServiceState::new(params, nodes, config) {
            Ok(s) => s,
            Err(e) => return format!("error: {e}"),
        };
    let mut obs = obs::Obs::enabled();
    let started = std::time::Instant::now();

    // Mirror of the accepted-but-undrained queue, in ingestion order, so
    // equivalence samples can replay the exact drained batch through the
    // one-shot oracle.
    let mut mirror: Vec<degradable::BatchInstance<u64>> = Vec::new();
    let (mut offered, mut accepted, mut shed) = (0usize, 0usize, 0usize);
    let mut next_id = 0u64;
    let mut drains = 0u64;
    let (mut samples, mut mismatches) = (0usize, 0usize);
    let mut errors: Vec<String> = Vec::new();

    while offered < instances {
        let this_wave = wave.min(instances - offered);
        for _ in 0..this_wave {
            let inst = degradable::BatchInstance {
                sender: NodeId::new((next_id as usize) % nodes),
                value: Val::Value(next_id % 5),
            };
            match svc.ingest(next_id, inst.clone()) {
                Ok(()) => {
                    accepted += 1;
                    mirror.push(inst);
                }
                Err(degradable::ServiceError::QueueFull { .. }) => shed += 1,
                Err(e) => errors.push(format!("ingest {next_id}: {e}")),
            }
            next_id += 1;
            offered += 1;
        }
        let drain_seed = seed.wrapping_add(drains);
        let batch = svc.drain_observed(faulty, drain_seed, &mut obs);
        let drained = std::mem::take(&mut mirror);
        debug_assert_eq!(batch.ids.len(), drained.len());
        if drains.is_multiple_of(4) && !drained.is_empty() {
            samples += 1;
            let oracle = degradable::run_batch(params, nodes, &drained, faulty, drain_seed);
            if oracle.decisions != batch.run.decisions {
                mismatches += 1;
            }
        }
        drains += 1;
    }

    let stats = svc.stats();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{mode}: BYZ({m},{u}) with n = {nodes}, f = {} — offered {instances} instance(s) \
         in wave(s) of {wave} (queue {queue}, workers {workers})",
        faulty.len()
    );
    let _ = writeln!(
        out,
        "load: {offered} offered, {accepted} accepted, {shed} shed ({} queued at exit)",
        svc.pending_len()
    );
    let _ = writeln!(
        out,
        "decided: {} instance(s) over {} drain(s); equivalence samples {samples}, \
         mismatches {mismatches}",
        stats.decided, stats.batches
    );
    let arena_requests = stats.arena_builds + stats.arena_reuses;
    let store_requests = stats.store_builds + stats.store_reuses;
    let _ =
        writeln!(
        out,
        "pool: arenas {} built / {} reused ({}% reuse), stores {} built / {} reused ({}% reuse)",
        stats.arena_builds,
        stats.arena_reuses,
        (stats.arena_reuses * 100).checked_div(arena_requests).unwrap_or(0),
        stats.store_builds,
        stats.store_reuses,
        (stats.store_reuses * 100).checked_div(store_requests).unwrap_or(0),
    );
    for name in ["svc.instance.logical", "svc.instance.messages"] {
        if let Some(h) = obs.registry().histogram(name) {
            let _ = writeln!(
                out,
                "{name}: p50 <= {}, p99 <= {}",
                h.quantile(0.5).map_or(0, |v| v as u64),
                h.quantile(0.99).map_or(0, |v| v as u64),
            );
        }
    }
    for e in &errors {
        let _ = writeln!(out, "error: {e}");
    }
    if !no_timing {
        let elapsed = started.elapsed();
        let rate = stats.decided as f64 / elapsed.as_secs_f64().max(1e-9);
        let _ = writeln!(
            out,
            "timing: {:.1} ms wall, {rate:.0} instances/sec",
            elapsed.as_secs_f64() * 1e3
        );
    }
    if let Some(path) = metrics_out {
        if no_timing {
            obs::scrub_timing(&mut obs);
        }
        match std::fs::write(path, obs::jsonl(&obs)) {
            Ok(()) => {
                let _ = writeln!(out, "metrics: wrote registry JSONL to {path}");
            }
            Err(e) => {
                let _ = writeln!(out, "error: cannot write metrics to {path}: {e}");
            }
        }
    }
    out
}

fn search_cmd(nodes: usize, m: usize, u: usize, below_bound: bool, method: SearchMethod) -> String {
    let instance = match make_instance(nodes, m, u, below_bound) {
        Ok(i) => i,
        Err(e) => return format!("error: {e}"),
    };
    let faulty: std::collections::BTreeSet<NodeId> =
        (nodes.saturating_sub(u)..nodes).map(NodeId::new).collect();
    let domain = vec![Val::Default, Val::Value(1), Val::Value(2)];
    let witness = match method {
        SearchMethod::Exhaustive => {
            let search = ExhaustiveSearch::new(instance, Val::Value(1), faulty, domain);
            match search.find_violation() {
                Ok(w) => w,
                Err(e) => return format!("error: {e}"),
            }
        }
        SearchMethod::Random => {
            RandomizedSearch::new(instance, Val::Value(1), domain)
                .with_trials(3_000)
                .find_violation(u)
                .0
        }
        SearchMethod::HillClimb => {
            HillClimbSearch::new(instance, Val::Value(1), faulty, domain).find_violation()
        }
    };
    match witness {
        None => format!(
            "no violating adversary found for {instance} ({method:?})\n\
             (at N >= 2m+u+1 = {} this is Theorem 1 at work)",
            2 * m + u + 1
        ),
        Some(w) => {
            let mut out = String::new();
            let _ = writeln!(out, "VIOLATION found for {instance}: {}", w.violation);
            let _ = writeln!(out, "fault-free decisions:");
            for (r, v) in w.record.fault_free_decisions() {
                let _ = writeln!(out, "  {r} decided {v}");
            }
            let _ = writeln!(
                out,
                "adversary claim table ({} entries):",
                w.assignment.len()
            );
            for ((path, receiver), value) in w.assignment.iter().take(12) {
                let _ = writeln!(out, "  {path} -> {receiver}: {value}");
            }
            if w.assignment.len() > 12 {
                let _ = writeln!(out, "  … {} more", w.assignment.len() - 12);
            }
            out
        }
    }
}

fn table_cmd(max_m: usize, max_u: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "minimum nodes for m/u-degradable agreement (2m+u+1):");
    let _ = write!(out, "m\\u ");
    for u in 1..=max_u {
        let _ = write!(out, "{u:>4}");
    }
    let _ = writeln!(out);
    for (mi, row) in min_nodes_table(max_m, max_u).iter().enumerate() {
        let _ = write!(out, "{:>3} ", mi + 1);
        for cell in row {
            match cell {
                MinNodesCell::Invalid => {
                    let _ = write!(out, "{:>4}", "-");
                }
                MinNodesCell::Nodes(n) => {
                    let _ = write!(out, "{n:>4}");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

fn tradeoffs_cmd(nodes: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "maximal (m, u) configurations for {nodes} nodes:");
    let list = tradeoffs(nodes);
    if list.is_empty() {
        let _ = writeln!(out, "  none (need at least 2 nodes)");
    }
    for p in list {
        let _ = writeln!(
            out,
            "  {p}: Byzantine agreement up to {} faults, degraded up to {} (connectivity >= {})",
            p.m(),
            p.u(),
            p.min_connectivity()
        );
    }
    out
}

/// Parses a topology specification like `harary:4:8`.
pub fn parse_topology(kind: &str) -> Result<Topology, String> {
    let parts: Vec<&str> = kind.split(':').collect();
    let num = |i: usize| -> Result<usize, String> {
        parts
            .get(i)
            .ok_or_else(|| format!("`{kind}` is missing a parameter"))?
            .parse()
            .map_err(|_| format!("bad number in `{kind}`"))
    };
    match parts[0] {
        "complete" => Ok(Topology::complete(num(1)?)),
        "ring" => Ok(Topology::ring(num(1)?)),
        "harary" => Ok(Topology::harary(num(1)?, num(2)?)),
        "hypercube" => Ok(Topology::hypercube(num(1)?)),
        "wheel" => Ok(Topology::wheel(num(1)?)),
        "sender-cut" => Ok(degradable::sender_cut_topology(num(2)?, num(1)?)),
        other => Err(format!("unknown topology kind `{other}`")),
    }
}

fn topology_cmd(kind: &str, params: Option<(usize, usize)>) -> String {
    let topo = match parse_topology(kind) {
        Ok(t) => t,
        Err(e) => return format!("error: {e}"),
    };
    let kappa = vertex_connectivity(topo.graph());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} nodes, {} edges, vertex connectivity {}",
        topo.name(),
        topo.node_count(),
        topo.graph().edge_count(),
        kappa
    );
    if let Some(cut) = simnet::minimum_vertex_cut(topo.graph()) {
        let names: Vec<String> = cut.iter().map(|n| n.to_string()).collect();
        let _ = writeln!(out, "a minimum vertex cut: {{{}}}", names.join(", "));
    } else {
        let _ = writeln!(out, "no vertex cut (complete graph)");
    }
    if let Some((m, u)) = params {
        match Params::new(m, u) {
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
            }
            Ok(p) => {
                let need = p.min_connectivity();
                let _ = writeln!(
                    out,
                    "{p} needs connectivity >= {need}: {}",
                    if kappa >= need {
                        "SUFFICIENT (Theorem 3)"
                    } else {
                        "INSUFFICIENT — a cut adversary defeats agreement here"
                    }
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_faulty;

    use transport::TransportKind;

    #[test]
    fn run_clean_scenario() {
        let out = run_cmd(5, 1, 2, 42, &Default::default(), None, TransportKind::Sim);
        assert!(out.contains("condition D.1 satisfied"), "{out}");
        assert!(out.contains("transport: sim"), "{out}");
    }

    #[test]
    fn run_agrees_across_backends() {
        let faulty = parse_faulty("3:constant-lie:7").unwrap();
        let sim = run_cmd(4, 1, 1, 42, &faulty, None, TransportKind::Sim);
        for kind in [TransportKind::Channel, TransportKind::Tcp] {
            let out = run_cmd(4, 1, 1, 42, &faulty, None, kind);
            assert!(out.contains("condition D.1 satisfied"), "{kind}: {out}");
            // Identical modulo the transport banner line.
            let strip = |s: &str| {
                s.lines()
                    .filter(|l| !l.contains("transport:"))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(strip(&out), strip(&sim), "{kind}");
        }
    }

    #[test]
    fn batch_stream_reports_decisions_and_arena_reuse() {
        let faulty = parse_faulty("3:constant-lie:7").unwrap();
        let out = batch_cmd(5, 1, 2, 4, 42, &faulty, 1);
        assert!(out.contains("slot 3 (sent 45)"), "{out}");
        assert!(out.contains("decided 45"), "{out}");
        assert!(out.contains("arena: 1 built, 3 reused"), "{out}");
        assert!(out.contains("0 cross-instance spoofs rejected"), "{out}");
    }

    #[test]
    fn service_mode_report_is_worker_count_independent() {
        let faulty = parse_faulty("3:constant-lie:7").unwrap();
        let base = service_cmd("service", 5, 1, 2, 48, 16, 100, 1, 7, &faulty, true, None);
        assert!(base.contains("48 offered, 48 accepted, 0 shed"), "{base}");
        assert!(base.contains("mismatches 0"), "{base}");
        // 5 distinct senders -> 5 arena builds; everything else reuses.
        assert!(base.contains("arenas 5 built"), "{base}");
        assert!(base.contains("svc.instance.logical: p50 <= "), "{base}");
        assert!(!base.contains("timing:"), "{base}");
        // Identical modulo the banner line, which echoes the worker count.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("workers"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        for workers in [2, 8] {
            let other = service_cmd(
                "service", 5, 1, 2, 48, 16, 100, workers, 7, &faulty, true, None,
            );
            assert_eq!(strip(&base), strip(&other), "workers={workers}");
        }
    }

    #[test]
    fn bombard_sheds_without_losing_equivalence() {
        // Burst 24 against queue 16: every full wave sheds 8.
        let out = service_cmd(
            "bombard",
            5,
            1,
            2,
            72,
            24,
            16,
            2,
            3,
            &Default::default(),
            true,
            None,
        );
        assert!(out.contains("72 offered, 48 accepted, 24 shed"), "{out}");
        assert!(out.contains("mismatches 0"), "{out}");
        assert!(out.contains("(0 queued at exit)"), "{out}");
    }

    #[test]
    fn service_metrics_out_is_identical_across_workers() {
        let dir = std::env::temp_dir();
        let read = |workers: usize| {
            let path = dir.join(format!("dagree_svc_metrics_{workers}.jsonl"));
            let path = path.to_str().unwrap().to_string();
            let out = service_cmd(
                "service",
                5,
                1,
                2,
                32,
                8,
                100,
                workers,
                5,
                &Default::default(),
                true,
                Some(&path),
            );
            assert!(out.contains("metrics: wrote registry JSONL"), "{out}");
            let text = std::fs::read_to_string(&path).unwrap();
            let _ = std::fs::remove_file(&path);
            text
        };
        let one = read(1);
        assert!(one.contains("svc.pool.arena_reuses"), "{one}");
        assert_eq!(one, read(8));
    }

    #[test]
    fn service_mode_rejects_bad_shapes() {
        let out = service_cmd(
            "service",
            4,
            1,
            2,
            8,
            4,
            16,
            1,
            1,
            &Default::default(),
            true,
            None,
        );
        assert!(out.contains("error"), "{out}");
        let out = service_cmd(
            "service",
            70,
            1,
            2,
            8,
            4,
            16,
            1,
            1,
            &Default::default(),
            true,
            None,
        );
        assert!(out.contains("error"), "{out}");
        assert!(out.contains("64"), "{out}");
    }

    #[test]
    fn batch_rejects_bad_shapes() {
        let out = batch_cmd(4, 1, 2, 2, 42, &Default::default(), 1);
        assert!(out.contains("error"), "{out}");
        assert!(out.contains("at least 5 nodes"), "{out}");
    }

    #[test]
    fn run_degraded_scenario() {
        let faulty = parse_faulty("3:constant-lie:7,4:constant-lie:7").unwrap();
        let out = run_cmd(5, 1, 2, 42, &faulty, None, TransportKind::Sim);
        assert!(out.contains("condition D.3 satisfied"), "{out}");
    }

    #[test]
    fn run_with_explanation() {
        let faulty = parse_faulty("4:silent").unwrap();
        let out = run_cmd(
            5,
            1,
            2,
            42,
            &faulty,
            Some(NodeId::new(1)),
            TransportKind::Sim,
        );
        assert!(out.contains("view of receiver n1"), "{out}");
    }

    #[test]
    fn run_rejects_too_few_nodes() {
        let out = run_cmd(4, 1, 2, 42, &Default::default(), None, TransportKind::Sim);
        assert!(out.contains("error"), "{out}");
    }

    #[test]
    fn serve_rejects_unresolvable_peers_and_bad_shapes() {
        let peers: Vec<String> = vec!["not a host".into(), "127.0.0.1:1".into()];
        let out = serve_cmd(
            0,
            &peers,
            1,
            1,
            42,
            &Default::default(),
            100,
            false,
            None,
            None,
        );
        assert!(out.contains("error"), "{out}");
        assert!(out.contains("not a host"), "{out}");
        // Two peers cannot satisfy n >= 2m + u + 1 = 4.
        let peers: Vec<String> = vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()];
        let out = serve_cmd(
            0,
            &peers,
            1,
            1,
            42,
            &Default::default(),
            100,
            false,
            None,
            None,
        );
        assert!(out.contains("error"), "{out}");
    }

    #[test]
    fn serve_runs_a_full_mesh_across_threads() {
        // Reserve four loopback ports, release them, and have four `serve`
        // invocations (one per thread, exactly the multi-process shape)
        // re-bind and join each other.
        let addrs: Vec<String> = (0..4)
            .map(|_| {
                let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
                l.local_addr().unwrap().to_string()
            })
            .collect();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let peers = addrs.clone();
                std::thread::spawn(move || {
                    serve_cmd(
                        i,
                        &peers,
                        1,
                        1,
                        9,
                        &Default::default(),
                        5_000,
                        false,
                        None,
                        None,
                    )
                })
            })
            .collect();
        let outputs: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(
            outputs[0].contains("sent 9 as the designated sender"),
            "{}",
            outputs[0]
        );
        for out in &outputs[1..] {
            assert!(out.contains("decided 9"), "{out}");
        }
    }

    /// The full `dagree serve` observability loop: four traced nodes,
    /// each appending metrics JSONL and writing a span trace, and the
    /// decider traces feeding `dagree obs --critical-path`.
    #[test]
    fn serve_traced_mesh_emits_metrics_and_critical_path() {
        let dir = std::env::temp_dir().join(format!("dagree-serve-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let addrs: Vec<String> = (0..4)
            .map(|_| {
                let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
                l.local_addr().unwrap().to_string()
            })
            .collect();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let peers = addrs.clone();
                let metrics = dir.join(format!("metrics-{i}.jsonl"));
                let spans = dir.join(format!("trace-{i}.jsonl"));
                std::thread::spawn(move || {
                    serve_cmd(
                        i,
                        &peers,
                        1,
                        1,
                        9,
                        &Default::default(),
                        5_000,
                        true,
                        Some(metrics.to_str().unwrap()),
                        Some(spans.to_str().unwrap()),
                    )
                })
            })
            .collect();
        let outputs: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (i, out) in outputs.iter().enumerate() {
            assert!(out.contains("trace: "), "node {i}: {out}");
            assert!(out.contains("sends stamped"), "node {i}: {out}");
            assert!(
                out.contains("metrics snapshots appended"),
                "node {i}: {out}"
            );
            assert!(out.contains("trace spans written"), "node {i}: {out}");
        }
        // Every metrics line is well-formed JSON carrying node, round,
        // and a registry object — the contract CI's obs-smoke greps for.
        for i in 0..4 {
            let text = std::fs::read_to_string(dir.join(format!("metrics-{i}.jsonl"))).unwrap();
            assert!(!text.trim().is_empty(), "node {i} wrote no metrics");
            for line in text.lines() {
                let v = obs::JsonValue::parse(line).unwrap();
                assert_eq!(v.get("node").and_then(|n| n.as_u64()), Some(i as u64));
                assert!(v.get("round").is_some(), "{line}");
                assert!(v.get("registry").is_some(), "{line}");
            }
        }
        // A receiver's trace reconstructs a causal chain ending at its
        // own decision; the summary view still works on the same file.
        let trace_path = dir.join("trace-1.jsonl");
        let chain = obs_cmd(trace_path.to_str().unwrap(), 10, true);
        assert!(chain.contains("critical path"), "{chain}");
        assert!(chain.contains("to a decision"), "{chain}");
        assert!(chain.contains("decided at n1"), "{chain}");
        assert!(chain.contains("hop 1: inst 0 path 0 hop 1"), "{chain}");
        let summary = obs_cmd(trace_path.to_str().unwrap(), 10, false);
        assert!(summary.contains("trace.deliver"), "{summary}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Critical-path reconstruction on a hand-built trace: the deepest
    /// context delivered to a decider wins, hop by hop, and prefixes
    /// never observed on the wire are labelled as inferred.
    #[test]
    fn critical_path_walks_deepest_chain_to_the_decider() {
        let mut o = obs::Obs::enabled();
        let mut span = |name: &str, mut args: Vec<(String, u64)>, node: u64, clock: u64| {
            args.push(("node".to_string(), node));
            o.record_span(obs::SpanRecord {
                name: name.to_string(),
                args,
                logical: clock,
                wall_nanos: 0,
            });
        };
        let root = obs::TraceCtx::new(0, vec![0]);
        let relay = obs::TraceCtx::new(0, vec![0, 1]);
        let deep = obs::TraceCtx::new(0, vec![0, 1, 3]);
        span("trace.send", root.span_args(), 0, 1);
        span("trace.deliver", root.span_args(), 2, 1);
        span("trace.deliver", relay.span_args(), 2, 2);
        // The three-hop relay is delivered but its middle hop was never
        // seen as a send (e.g. the relaying node ran untraced).
        span("trace.deliver", deep.span_args(), 2, 3);
        span("trace.decide", vec![("instance".to_string(), 0)], 2, 4);
        let trace = obs::parse_trace(&obs::jsonl(&o)).unwrap();
        let out = critical_path_report("t", &trace);
        assert!(
            out.contains("critical path — 3 hop(s) to a decision"),
            "{out}"
        );
        assert!(out.contains("hop 1: inst 0 path 0 hop 1"), "{out}");
        assert!(out.contains("hop 2: inst 0 path 0->1 hop 2"), "{out}");
        assert!(out.contains("hop 3: inst 0 path 0->1->3 hop 3"), "{out}");
        assert!(
            !out.contains("hop 2: inst 0 path 0->1 hop 2  (unobserved"),
            "{out}"
        );
        assert!(out.contains("decided at n2"), "{out}");
    }

    /// A trace with sends but no decision still reports its deepest
    /// chain, clearly labelled; a trace with no contexts errors.
    #[test]
    fn critical_path_handles_senders_and_untraced_files() {
        let mut o = obs::Obs::enabled();
        let ctx = obs::TraceCtx::new(0, vec![0]);
        let mut args = ctx.span_args();
        args.push(("node".to_string(), 0));
        o.record_span(obs::SpanRecord {
            name: "trace.send".to_string(),
            args,
            logical: 1,
            wall_nanos: 0,
        });
        let trace = obs::parse_trace(&obs::jsonl(&o)).unwrap();
        let out = critical_path_report("t", &trace);
        assert!(out.contains("no decision observed"), "{out}");
        assert!(out.contains("hop 1: inst 0 path 0 hop 1"), "{out}");

        let untraced = obs::parse_trace(&obs::jsonl(&sample_obs())).unwrap();
        let out = critical_path_report("t", &untraced);
        assert!(out.starts_with("error:"), "{out}");
        assert!(out.contains("no trace contexts"), "{out}");
    }

    #[test]
    fn search_below_bound_finds_break() {
        let out = search_cmd(4, 1, 2, true, SearchMethod::Exhaustive);
        assert!(out.contains("VIOLATION found"), "{out}");
    }

    #[test]
    fn search_at_bound_is_clean() {
        let out = search_cmd(5, 1, 2, false, SearchMethod::Exhaustive);
        assert!(out.contains("no violating adversary"), "{out}");
    }

    #[test]
    fn table_renders() {
        let out = table_cmd(2, 3);
        assert!(out.contains("m\\u"));
        assert!(out.contains('7')); // (2,2) -> 7
    }

    #[test]
    fn tradeoffs_renders() {
        let out = tradeoffs_cmd(7);
        assert!(out.contains("2/2-degradable"));
        assert!(out.contains("0/6-degradable"));
    }

    #[test]
    fn topology_kinds_parse() {
        for kind in [
            "complete:5",
            "ring:6",
            "harary:3:8",
            "hypercube:3",
            "wheel:6",
            "sender-cut:3:8",
        ] {
            assert!(parse_topology(kind).is_ok(), "{kind}");
        }
        assert!(parse_topology("torus:3").is_err());
        assert!(parse_topology("harary:3").is_err());
    }

    #[test]
    fn topology_verdicts() {
        let out = topology_cmd("harary:4:8", Some((1, 2)));
        assert!(out.contains("SUFFICIENT"), "{out}");
        let out = topology_cmd("ring:8", Some((1, 2)));
        assert!(out.contains("INSUFFICIENT"), "{out}");
    }

    #[test]
    fn certify_small_instance() {
        let out = certify_cmd(1, 1, 1_000_000);
        assert!(out.contains("CERTIFIED"), "{out}");
    }

    #[test]
    fn certify_rejects_bad_params() {
        assert!(certify_cmd(2, 1, 1_000).contains("error"));
    }

    #[test]
    fn flight_variants() {
        assert!(flight_cmd("degradable").contains("completed safely"));
        assert!(flight_cmd("byzantine").contains("LEFT SAFE ENVELOPE"));
        assert!(flight_cmd("warp").contains("error"));
    }

    #[test]
    fn dispatch_help() {
        assert!(dispatch(&Command::Help).contains("USAGE"));
    }

    /// Builds a recorder with two span groups and a few metrics, the way
    /// an experiment binary would.
    fn sample_obs() -> obs::Obs {
        let mut o = obs::Obs::enabled();
        for (i, logical) in [(0u64, 5u64), (1, 7)] {
            let t = o.span("eig.resolve_level", vec![("level", i)]);
            o.finish(t, logical);
        }
        let t = o.span("eig.fill", vec![]);
        o.finish(t, 3);
        o.add("eig.votes_evaluated", 12);
        o.gauge_max("sweep.queue_depth", 4);
        o.observe("sim.latency", &[1, 8], 2);
        o.observe("sim.latency", &[1, 8], 64);
        o
    }

    #[test]
    fn obs_summarizes_chrome_trace_file() {
        let o = sample_obs();
        let dir = std::env::temp_dir().join(format!("dagree-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        std::fs::write(&path, obs::chrome_trace_json(&o, obs::TimeMode::Logical)).unwrap();
        let out = obs_cmd(path.to_str().unwrap(), 10, false);
        std::fs::remove_dir_all(&dir).ok();
        assert!(out.contains("3 spans"), "{out}");
        // Sorted by total logical cost: the resolve group (12) first.
        let resolve = out.find("eig.resolve_level").unwrap();
        let fill = out.find("eig.fill").unwrap();
        assert!(resolve < fill, "{out}");
        assert!(out.contains("eig.votes_evaluated"), "{out}");
        assert!(out.contains("sweep.queue_depth"), "{out}");
        // Observations 2 and 64 land in the <=8 and overflow buckets.
        assert!(out.contains("<=1: 0  <=8: 1  >: 1"), "{out}");
    }

    #[test]
    fn obs_top_limits_span_groups() {
        let o = sample_obs();
        let trace = obs::parse_trace(&obs::jsonl(&o)).unwrap();
        let out = summarize_trace("t", &trace, 1);
        assert!(out.contains("top 1 of 2 span groups"), "{out}");
        assert!(out.contains("eig.resolve_level"), "{out}");
        // The smaller group is cut from the table (only the count line
        // and the table title may mention groups).
        assert!(!out.contains("eig.fill"), "{out}");
    }

    #[test]
    fn obs_rejects_missing_and_malformed_files() {
        assert!(obs_cmd("/nonexistent/trace.json", 5, false).contains("cannot read"));
        let dir = std::env::temp_dir().join(format!("dagree-obs-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "not a trace at all").unwrap();
        let out = obs_cmd(path.to_str().unwrap(), 5, false);
        std::fs::remove_dir_all(&dir).ok();
        assert!(out.contains("not a recognized trace"), "{out}");
    }

    /// Missing, empty, and truncated traces each produce exactly one error
    /// line naming the file — never a parser dump (regression: scripts
    /// grep the first line of `dagree obs` output).
    #[test]
    fn obs_errors_are_one_line_for_missing_empty_and_truncated() {
        let one_line_err = |out: &str| {
            assert!(out.starts_with("error:"), "{out}");
            assert_eq!(out.trim_end().lines().count(), 1, "{out}");
        };
        one_line_err(&obs_cmd("/nonexistent/trace.json", 5, false));

        let dir = std::env::temp_dir().join(format!("dagree-obs-edge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        let empty = dir.join("empty.json");
        std::fs::write(&empty, "  \n").unwrap();
        let out = obs_cmd(empty.to_str().unwrap(), 5, false);
        one_line_err(&out);
        assert!(out.contains("is empty"), "{out}");

        // A real Chrome trace cut off mid-write, the way a killed
        // experiment leaves it.
        let full = obs::chrome_trace_json(&sample_obs(), obs::TimeMode::Logical);
        let truncated = dir.join("truncated.json");
        std::fs::write(&truncated, &full[..full.len() / 2]).unwrap();
        let out = obs_cmd(truncated.to_str().unwrap(), 5, false);
        std::fs::remove_dir_all(&dir).ok();
        one_line_err(&out);
        assert!(out.contains("not a recognized trace"), "{out}");
    }

    #[test]
    fn fuzz_clean_campaign_reports_ok() {
        let dir = std::env::temp_dir().join(format!("dagree-fuzz-clean-{}", std::process::id()));
        let out = fuzz_cmd(24, 0xD06, 6, None, false, dir.to_str().unwrap(), None);
        assert!(out.contains("executions=24 "), "{out}");
        assert!(out.contains("backend_executions=12"), "{out}");
        assert!(out.contains("violations=0"), "{out}");
        assert!(out.contains("conformance: OK"), "{out}");
        // A clean campaign writes nothing.
        assert!(!dir.exists());
    }

    #[test]
    fn fuzz_mutant_is_caught_written_and_replayable() {
        let dir = std::env::temp_dir().join(format!("dagree-fuzz-mut-{}", std::process::id()));
        let out = fuzz_cmd(
            16,
            0xBEEF,
            6,
            Some(harness::Mutation::SuppressRelay),
            false,
            dir.to_str().unwrap(),
            None,
        );
        assert!(out.contains("MUTANT CAUGHT"), "{out}");
        assert!(out.contains("failed to relay"), "{out}");
        // A relay violation names an offending path, so the failure
        // report carries its causal chain.
        assert!(out.contains("causal chain: inst 0 path "), "{out}");
        let repro_line = out
            .lines()
            .find(|l| l.trim_start().starts_with("repro: "))
            .expect("a repro path is printed");
        let path = repro_line.trim_start().trim_start_matches("repro: ");
        let replay_out = fuzz_cmd(0, 0, 9, None, false, "unused", Some(path));
        std::fs::remove_dir_all(&dir).ok();
        assert!(replay_out.contains("REPRODUCED"), "{replay_out}");
        assert!(replay_out.contains("first divergent step"), "{replay_out}");
        assert!(
            replay_out.contains("recorded causal chain: inst 0 path "),
            "{replay_out}"
        );
        assert!(
            replay_out.contains("mutation: relay-suppression"),
            "{replay_out}"
        );
    }

    #[test]
    fn fuzz_replay_errors_are_one_line() {
        let out = fuzz_cmd(
            0,
            0,
            9,
            None,
            false,
            "unused",
            Some("/nonexistent/repro.json"),
        );
        assert!(out.starts_with("error:"), "{out}");
        assert_eq!(out.trim_end().lines().count(), 1, "{out}");
    }
}
