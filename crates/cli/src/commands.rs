//! Subcommand implementations; each returns the text to print.

use crate::args::{Command, SearchMethod, USAGE};
use degradable::analysis::{min_nodes_table, tradeoffs, MinNodesCell};
use degradable::{
    check_degradable, explain_receiver, AdversaryRun, ByzInstance, ExhaustiveSearch,
    HillClimbSearch, Params, RandomizedSearch, Val, Verdict,
};
use simnet::{vertex_connectivity, NodeId, Topology};
use std::fmt::Write as _;

/// Runs the parsed command and returns its output.
pub fn dispatch(cmd: &Command) -> String {
    match cmd {
        Command::Help => USAGE.to_string(),
        Command::Run {
            nodes,
            m,
            u,
            value,
            faulty,
            explain,
        } => run_cmd(*nodes, *m, *u, *value, faulty, *explain),
        Command::Search {
            nodes,
            m,
            u,
            below_bound,
            method,
        } => search_cmd(*nodes, *m, *u, *below_bound, *method),
        Command::Table { max_m, max_u } => table_cmd(*max_m, *max_u),
        Command::Tradeoffs { nodes } => tradeoffs_cmd(*nodes),
        Command::Topology { kind, params } => topology_cmd(kind, *params),
        Command::Certify { m, u, budget } => certify_cmd(*m, *u, *budget),
        Command::Flight { arch } => flight_cmd(arch),
    }
}

fn certify_cmd(m: usize, u: usize, budget: u128) -> String {
    let params = match Params::new(m, u) {
        Ok(p) => p,
        Err(e) => return format!("error: {e}"),
    };
    let n = params.min_nodes();
    match degradable::certify(params, n, budget) {
        Err(e) => format!("error: {e}"),
        Ok(report) => {
            if report.certified() {
                format!(
                    "CERTIFIED: {params} at N = {n}\n\
                     every sender x every fault set (f <= {u}) x every adversary over {{V_d,1,2}}\n\
                     {} configurations, {} adversary tables — no violation (Theorem 1, machine-checked)",
                    report.configurations, report.adversaries
                )
            } else {
                format!(
                    "VIOLATION at {params}, N = {n}: {:?}",
                    report.violation.map(|w| w.violation)
                )
            }
        }
    }
}

fn flight_cmd(arch: &str) -> String {
    use channels::prelude::*;
    let arch = match arch {
        "byzantine" => Architecture::Byzantine { m: 1 },
        "crusader" => Architecture::Crusader { t: 1 },
        "degradable" => Architecture::Degradable {
            params: Params::new(1, 2).expect("1 <= 2"),
        },
        other => return format!("error: unknown architecture `{other}`"),
    };
    let report = fly(arch, FlightConfig::default());
    let mut out = String::new();
    let _ = writeln!(out, "flight on {}:", report.architecture);
    let _ = writeln!(out, "  correct actuations : {}", report.correct_cycles);
    let _ = writeln!(out, "  pilot alerts (hold): {}", report.pilot_alerts);
    let _ = writeln!(out, "  wrong actuations   : {}", report.wrong_actuations);
    let _ = writeln!(
        out,
        "  outcome            : {}",
        if report.crashed {
            "LEFT SAFE ENVELOPE"
        } else {
            "completed safely"
        }
    );
    out
}

fn make_instance(
    nodes: usize,
    m: usize,
    u: usize,
    allow_below: bool,
) -> Result<ByzInstance, String> {
    let params = Params::new(m, u).map_err(|e| e.to_string())?;
    let result = if allow_below {
        ByzInstance::new_below_bound(nodes, params, NodeId::new(0))
    } else {
        ByzInstance::new(nodes, params, NodeId::new(0))
    };
    result.map_err(|e| e.to_string())
}

fn run_cmd(
    nodes: usize,
    m: usize,
    u: usize,
    value: u64,
    faulty: &std::collections::BTreeMap<NodeId, degradable::Strategy<u64>>,
    explain: Option<NodeId>,
) -> String {
    let instance = match make_instance(nodes, m, u, false) {
        Ok(i) => i,
        Err(e) => return format!("error: {e}"),
    };
    let scenario = AdversaryRun {
        instance,
        sender_value: Val::Value(value),
        strategies: faulty.clone(),
    };
    let record = scenario.run();
    let mut out = String::new();
    let _ = writeln!(out, "{instance}");
    let _ = writeln!(out, "sender value: {value}; f = {}", record.f());
    for (r, v) in record.fault_free_decisions() {
        let _ = writeln!(out, "  fault-free {r} decided {v}");
    }
    match check_degradable(&record) {
        Verdict::Satisfied(s) => {
            let _ = writeln!(
                out,
                "verdict: condition {} satisfied ({} fault-free nodes agree on one value)",
                s.condition, s.largest_agreeing
            );
        }
        Verdict::Violated(v) => {
            let _ = writeln!(out, "verdict: VIOLATED — {v}");
        }
        Verdict::BeyondU { f } => {
            let _ = writeln!(out, "verdict: f = {f} > u — no promise applies");
        }
    }
    if let Some(r) = explain {
        let _ = writeln!(out, "\n{}", explain_receiver(&scenario, r));
    }
    out
}

fn search_cmd(nodes: usize, m: usize, u: usize, below_bound: bool, method: SearchMethod) -> String {
    let instance = match make_instance(nodes, m, u, below_bound) {
        Ok(i) => i,
        Err(e) => return format!("error: {e}"),
    };
    let faulty: std::collections::BTreeSet<NodeId> =
        (nodes.saturating_sub(u)..nodes).map(NodeId::new).collect();
    let domain = vec![Val::Default, Val::Value(1), Val::Value(2)];
    let witness = match method {
        SearchMethod::Exhaustive => {
            let search = ExhaustiveSearch::new(instance, Val::Value(1), faulty, domain);
            match search.find_violation() {
                Ok(w) => w,
                Err(e) => return format!("error: {e}"),
            }
        }
        SearchMethod::Random => {
            RandomizedSearch::new(instance, Val::Value(1), domain)
                .with_trials(3_000)
                .find_violation(u)
                .0
        }
        SearchMethod::HillClimb => {
            HillClimbSearch::new(instance, Val::Value(1), faulty, domain).find_violation()
        }
    };
    match witness {
        None => format!(
            "no violating adversary found for {instance} ({method:?})\n\
             (at N >= 2m+u+1 = {} this is Theorem 1 at work)",
            2 * m + u + 1
        ),
        Some(w) => {
            let mut out = String::new();
            let _ = writeln!(out, "VIOLATION found for {instance}: {}", w.violation);
            let _ = writeln!(out, "fault-free decisions:");
            for (r, v) in w.record.fault_free_decisions() {
                let _ = writeln!(out, "  {r} decided {v}");
            }
            let _ = writeln!(
                out,
                "adversary claim table ({} entries):",
                w.assignment.len()
            );
            for ((path, receiver), value) in w.assignment.iter().take(12) {
                let _ = writeln!(out, "  {path} -> {receiver}: {value}");
            }
            if w.assignment.len() > 12 {
                let _ = writeln!(out, "  … {} more", w.assignment.len() - 12);
            }
            out
        }
    }
}

fn table_cmd(max_m: usize, max_u: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "minimum nodes for m/u-degradable agreement (2m+u+1):");
    let _ = write!(out, "m\\u ");
    for u in 1..=max_u {
        let _ = write!(out, "{u:>4}");
    }
    let _ = writeln!(out);
    for (mi, row) in min_nodes_table(max_m, max_u).iter().enumerate() {
        let _ = write!(out, "{:>3} ", mi + 1);
        for cell in row {
            match cell {
                MinNodesCell::Invalid => {
                    let _ = write!(out, "{:>4}", "-");
                }
                MinNodesCell::Nodes(n) => {
                    let _ = write!(out, "{n:>4}");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

fn tradeoffs_cmd(nodes: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "maximal (m, u) configurations for {nodes} nodes:");
    let list = tradeoffs(nodes);
    if list.is_empty() {
        let _ = writeln!(out, "  none (need at least 2 nodes)");
    }
    for p in list {
        let _ = writeln!(
            out,
            "  {p}: Byzantine agreement up to {} faults, degraded up to {} (connectivity >= {})",
            p.m(),
            p.u(),
            p.min_connectivity()
        );
    }
    out
}

/// Parses a topology specification like `harary:4:8`.
pub fn parse_topology(kind: &str) -> Result<Topology, String> {
    let parts: Vec<&str> = kind.split(':').collect();
    let num = |i: usize| -> Result<usize, String> {
        parts
            .get(i)
            .ok_or_else(|| format!("`{kind}` is missing a parameter"))?
            .parse()
            .map_err(|_| format!("bad number in `{kind}`"))
    };
    match parts[0] {
        "complete" => Ok(Topology::complete(num(1)?)),
        "ring" => Ok(Topology::ring(num(1)?)),
        "harary" => Ok(Topology::harary(num(1)?, num(2)?)),
        "hypercube" => Ok(Topology::hypercube(num(1)?)),
        "wheel" => Ok(Topology::wheel(num(1)?)),
        "sender-cut" => Ok(degradable::sender_cut_topology(num(2)?, num(1)?)),
        other => Err(format!("unknown topology kind `{other}`")),
    }
}

fn topology_cmd(kind: &str, params: Option<(usize, usize)>) -> String {
    let topo = match parse_topology(kind) {
        Ok(t) => t,
        Err(e) => return format!("error: {e}"),
    };
    let kappa = vertex_connectivity(topo.graph());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} nodes, {} edges, vertex connectivity {}",
        topo.name(),
        topo.node_count(),
        topo.graph().edge_count(),
        kappa
    );
    if let Some(cut) = simnet::minimum_vertex_cut(topo.graph()) {
        let names: Vec<String> = cut.iter().map(|n| n.to_string()).collect();
        let _ = writeln!(out, "a minimum vertex cut: {{{}}}", names.join(", "));
    } else {
        let _ = writeln!(out, "no vertex cut (complete graph)");
    }
    if let Some((m, u)) = params {
        match Params::new(m, u) {
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
            }
            Ok(p) => {
                let need = p.min_connectivity();
                let _ = writeln!(
                    out,
                    "{p} needs connectivity >= {need}: {}",
                    if kappa >= need {
                        "SUFFICIENT (Theorem 3)"
                    } else {
                        "INSUFFICIENT — a cut adversary defeats agreement here"
                    }
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_faulty;

    #[test]
    fn run_clean_scenario() {
        let out = run_cmd(5, 1, 2, 42, &Default::default(), None);
        assert!(out.contains("condition D.1 satisfied"), "{out}");
    }

    #[test]
    fn run_degraded_scenario() {
        let faulty = parse_faulty("3:constant-lie:7,4:constant-lie:7").unwrap();
        let out = run_cmd(5, 1, 2, 42, &faulty, None);
        assert!(out.contains("condition D.3 satisfied"), "{out}");
    }

    #[test]
    fn run_with_explanation() {
        let faulty = parse_faulty("4:silent").unwrap();
        let out = run_cmd(5, 1, 2, 42, &faulty, Some(NodeId::new(1)));
        assert!(out.contains("view of receiver n1"), "{out}");
    }

    #[test]
    fn run_rejects_too_few_nodes() {
        let out = run_cmd(4, 1, 2, 42, &Default::default(), None);
        assert!(out.contains("error"), "{out}");
    }

    #[test]
    fn search_below_bound_finds_break() {
        let out = search_cmd(4, 1, 2, true, SearchMethod::Exhaustive);
        assert!(out.contains("VIOLATION found"), "{out}");
    }

    #[test]
    fn search_at_bound_is_clean() {
        let out = search_cmd(5, 1, 2, false, SearchMethod::Exhaustive);
        assert!(out.contains("no violating adversary"), "{out}");
    }

    #[test]
    fn table_renders() {
        let out = table_cmd(2, 3);
        assert!(out.contains("m\\u"));
        assert!(out.contains('7')); // (2,2) -> 7
    }

    #[test]
    fn tradeoffs_renders() {
        let out = tradeoffs_cmd(7);
        assert!(out.contains("2/2-degradable"));
        assert!(out.contains("0/6-degradable"));
    }

    #[test]
    fn topology_kinds_parse() {
        for kind in [
            "complete:5",
            "ring:6",
            "harary:3:8",
            "hypercube:3",
            "wheel:6",
            "sender-cut:3:8",
        ] {
            assert!(parse_topology(kind).is_ok(), "{kind}");
        }
        assert!(parse_topology("torus:3").is_err());
        assert!(parse_topology("harary:3").is_err());
    }

    #[test]
    fn topology_verdicts() {
        let out = topology_cmd("harary:4:8", Some((1, 2)));
        assert!(out.contains("SUFFICIENT"), "{out}");
        let out = topology_cmd("ring:8", Some((1, 2)));
        assert!(out.contains("INSUFFICIENT"), "{out}");
    }

    #[test]
    fn certify_small_instance() {
        let out = certify_cmd(1, 1, 1_000_000);
        assert!(out.contains("CERTIFIED"), "{out}");
    }

    #[test]
    fn certify_rejects_bad_params() {
        assert!(certify_cmd(2, 1, 1_000).contains("error"));
    }

    #[test]
    fn flight_variants() {
        assert!(flight_cmd("degradable").contains("completed safely"));
        assert!(flight_cmd("byzantine").contains("LEFT SAFE ENVELOPE"));
        assert!(flight_cmd("warp").contains("error"));
    }

    #[test]
    fn dispatch_help() {
        assert!(dispatch(&Command::Help).contains("USAGE"));
    }
}
