//! Implementation of the `dagree` command-line explorer.
//!
//! Argument parsing is hand-rolled (no external dependency) and lives in
//! [`args`]; each subcommand is a function in [`commands`] returning the
//! text to print, which keeps everything unit-testable without spawning
//! processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{parse_args, Command, ParseError};

/// Entry point shared by the binary and the tests: parse and dispatch.
///
/// # Errors
///
/// Returns a usage/parse error message when the arguments are invalid.
pub fn run(argv: &[String]) -> Result<String, String> {
    let cmd = parse_args(argv).map_err(|e| format!("{e}\n\n{}", args::USAGE))?;
    Ok(commands::dispatch(&cmd))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn run_dispatches_table() {
        let out = run(&sv(&["table"])).unwrap();
        assert!(out.contains("minimum nodes"));
    }

    #[test]
    fn run_reports_parse_errors_with_usage() {
        let err = run(&sv(&["bogus"])).unwrap_err();
        assert!(err.contains("unknown subcommand"));
        assert!(err.contains("USAGE"));
    }

    #[test]
    fn empty_argv_prints_usage() {
        assert!(run(&[]).unwrap().contains("USAGE"));
    }
}
