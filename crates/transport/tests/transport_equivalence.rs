//! The differential transport gate: one protocol, three networks, one
//! answer.
//!
//! * **Deterministic plans** (healthy links, cuts, `p = 1.0` faults)
//!   produce the *same* fault pattern under the message-keyed chaos layer
//!   as under the pre-refactor engine's stream-based layer, so those runs
//!   are compared decision-for-decision against the synchronous
//!   `run_protocol` oracle.
//! * **Probabilistic plans** are keyed differently from the engine's
//!   sequential stream (same distribution, different draws), so the gate
//!   there is mutual: sim, channel, and loopback-TCP runs must decide
//!   bit-identically, and every decision must re-derive through the
//!   reference `EigView::resolve` fold from the run's own views.
//! * **§6 relaxed detection**: when `f > m`, fault-free nodes may falsely
//!   time each other out ([`transport::RelaxedTiming`]); the paper's claim
//!   — degraded agreement survives — is checked via `check_degradable` on
//!   the skewed runs.
//!
//! Shapes cover every node count the paper's small-system analysis uses,
//! N ∈ {4..9}, at maximal-ish `(m, u)` for each.

use degradable::{
    check_degradable, run_protocol_with, ByzInstance, Params, RunRecord, Strategy, Val, VoteRule,
};
use simnet::{LinkFaultKind, LinkFaultPlan, NodeId};
use std::collections::BTreeMap;
use transport::{
    run_channel, run_sim, run_tcp, LinkChaos, MeshConfig, RelaxedTiming, TransportRun,
};

/// `(m, u)` per node count: each is a valid BYZ shape (`n >= 2m + u + 1`).
const SHAPES: [(usize, usize, usize); 6] = [
    (4, 1, 1),
    (5, 1, 2),
    (6, 1, 3),
    (7, 2, 2),
    (8, 2, 3),
    (9, 2, 4),
];

fn instance(n: usize, m: usize, u: usize) -> ByzInstance {
    ByzInstance::new(n, Params::new(m, u).unwrap(), NodeId::new(0)).unwrap()
}

/// `f = m` Byzantine receivers at the top node ids: one liar, then one
/// silent node for m >= 2.
fn strategies_for(n: usize, m: usize) -> BTreeMap<NodeId, Strategy<u64>> {
    let mut s = BTreeMap::new();
    s.insert(NodeId::new(n - 1), Strategy::ConstantLie(Val::Value(9)));
    if m >= 2 {
        s.insert(NodeId::new(n - 2), Strategy::Silent);
    }
    s
}

/// A deterministic cut: the edge 1 -> 2 dies from round 1 on, both
/// directions (so relays between two fault-free nodes go absent).
fn cut_plan() -> LinkFaultPlan {
    LinkFaultPlan::healthy().with_symmetric(
        NodeId::new(1),
        NodeId::new(2),
        LinkFaultKind::Cut { from_round: 1 },
    )
}

fn uniform_plan(n: usize, kind: LinkFaultKind) -> LinkFaultPlan {
    LinkFaultPlan::uniform_complete(n, &[kind])
}

/// Re-derives every decision from the run's own EIG views through the
/// paper's VOTE fold — proves the transport delivered exactly the
/// observations the decisions claim to rest on.
fn assert_decisions_rederive(run: &TransportRun, inst: &ByzInstance, label: &str) {
    let rule = VoteRule::Degradable {
        m: inst.params().m(),
    };
    for (node, decision) in &run.decisions {
        let rederived = run.views[node].resolve(inst.sender(), rule);
        assert_eq!(rederived, *decision, "{label}: {node} fold mismatch");
    }
}

#[test]
fn deterministic_plans_match_the_prerefactor_oracle() {
    for (n, m, u) in SHAPES {
        let inst = instance(n, m, u);
        let strategies = strategies_for(n, m);
        let plans = [
            ("healthy", LinkFaultPlan::healthy()),
            ("cut", cut_plan()),
            (
                "dup-all",
                uniform_plan(n, LinkFaultKind::Duplicate { p: 1.0 }),
            ),
        ];
        for (label, plan) in plans {
            let oracle = run_protocol_with(&inst, &Val::Value(42), &strategies, 7, |e| {
                e.with_link_faults(plan.clone())
            });
            let sim = run_sim(
                &inst,
                Val::Value(42),
                &strategies,
                LinkChaos::new(plan, 7),
                None,
            );
            assert_eq!(
                sim.decisions, oracle.decisions,
                "n={n} {label}: event-driven sim diverged from the synchronous oracle"
            );
            assert_decisions_rederive(&sim, &inst, label);
        }
    }
}

#[test]
fn all_three_backends_decide_identically_on_every_shape_and_plan() {
    for (n, m, u) in SHAPES {
        let inst = instance(n, m, u);
        let strategies = strategies_for(n, m);
        let plans = [
            ("healthy", LinkFaultPlan::healthy()),
            ("cut", cut_plan()),
            ("drop", uniform_plan(n, LinkFaultKind::Drop { p: 0.35 })),
            ("dup", uniform_plan(n, LinkFaultKind::Duplicate { p: 0.5 })),
            (
                "reorder",
                uniform_plan(n, LinkFaultKind::Reorder { window: 2 }),
            ),
        ];
        for (label, plan) in plans {
            let chaos = LinkChaos::new(plan, 0xD1CE + n as u64);
            let sim = run_sim(&inst, Val::Value(42), &strategies, chaos.clone(), None);
            let chan = run_channel(
                &inst,
                Val::Value(42),
                &strategies,
                chaos.clone(),
                MeshConfig::default(),
            );
            let tcp = run_tcp(
                &inst,
                Val::Value(42),
                &strategies,
                chaos,
                MeshConfig::default(),
            )
            .expect("loopback mesh");
            for other in [&chan, &tcp] {
                assert_eq!(
                    other.decisions, sim.decisions,
                    "n={n} {label}: {} decisions diverged from sim",
                    other.kind
                );
                assert_eq!(
                    other.views, sim.views,
                    "n={n} {label}: {} views diverged from sim",
                    other.kind
                );
                assert_eq!(
                    other.stats.chaos_signature(),
                    sim.stats.chaos_signature(),
                    "n={n} {label}: {} injected a different fault pattern",
                    other.kind
                );
            }
            assert_decisions_rederive(&sim, &inst, label);
        }
    }
}

#[test]
fn sim_reruns_are_bit_identical() {
    let inst = instance(7, 2, 2);
    let strategies = strategies_for(7, 2);
    let plan = uniform_plan(7, LinkFaultKind::Drop { p: 0.4 });
    let a = run_sim(
        &inst,
        Val::Value(5),
        &strategies,
        LinkChaos::new(plan.clone(), 3),
        None,
    );
    let b = run_sim(
        &inst,
        Val::Value(5),
        &strategies,
        LinkChaos::new(plan, 3),
        None,
    );
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.views, b.views);
    assert_eq!(a.stats, b.stats);
}

/// Builds the condition-checker's record from a transport run.
fn record_of(
    run: &TransportRun,
    inst: &ByzInstance,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
) -> RunRecord<u64> {
    RunRecord {
        params: inst.params(),
        n: inst.n(),
        sender: inst.sender(),
        sender_value: Val::Value(42),
        faulty: strategies.keys().copied().collect(),
        decisions: run.decisions.clone(),
    }
}

#[test]
fn relaxed_detection_only_activates_beyond_m_faults() {
    // §6: correct absence detection is required only while f <= m; the
    // constructor refuses to inject skew below that threshold.
    assert!(RelaxedTiming::when_degraded(1, 1, 0.5, 3, 7).is_none());
    assert!(RelaxedTiming::when_degraded(0, 2, 0.5, 3, 7).is_none());
    assert!(RelaxedTiming::when_degraded(2, 1, 0.5, 3, 7).is_some());
}

#[test]
fn false_timeouts_beyond_m_still_satisfy_the_degraded_conditions() {
    // BYZ(1,2) at n = 5 with f = 2 > m: relaxed detection makes
    // fault-free nodes falsely time each other out, and the paper's §6
    // claim is that degraded agreement (D.3/D.4) survives exactly this.
    let inst = instance(5, 1, 2);
    let strategies: BTreeMap<_, _> = [
        (NodeId::new(3), Strategy::ConstantLie(Val::Value(9))),
        (NodeId::new(4), Strategy::Silent),
    ]
    .into_iter()
    .collect();
    let mut saw_false_timeout = false;
    for seed in 0..8u64 {
        let relaxed =
            RelaxedTiming::when_degraded(strategies.len(), 1, 0.6, 2, seed).expect("f = 2 > m = 1");
        let run = run_sim(
            &inst,
            Val::Value(42),
            &strategies,
            LinkChaos::healthy(),
            Some(relaxed),
        );
        saw_false_timeout |= run.stats.false_timeouts > 0;
        let verdict = check_degradable(&record_of(&run, &inst, &strategies));
        assert!(
            verdict.is_satisfied(),
            "seed {seed}: {verdict:?} with {} false timeouts",
            run.stats.false_timeouts
        );
    }
    assert!(
        saw_false_timeout,
        "skew_p = 0.6 over 8 seeds must falsely time out at least one fault-free pair"
    );
}

#[test]
fn zero_skew_relaxed_timing_matches_exact_detection() {
    // The boundary edge case, end to end: skew_p = 0 puts every arrival
    // exactly on its round boundary, where the deliver-before-timer
    // tie-break must read it as present — so a "relaxed" run with no
    // actual skew is observationally identical to exact detection.
    let inst = instance(5, 1, 2);
    let strategies: BTreeMap<_, _> = [
        (NodeId::new(3), Strategy::ConstantLie(Val::Value(9))),
        (NodeId::new(4), Strategy::ConstantLie(Val::Value(8))),
    ]
    .into_iter()
    .collect();
    let relaxed = RelaxedTiming::when_degraded(2, 1, 0.0, 3, 11).expect("f > m");
    let skewless = run_sim(
        &inst,
        Val::Value(42),
        &strategies,
        LinkChaos::healthy(),
        Some(relaxed),
    );
    let exact = run_sim(
        &inst,
        Val::Value(42),
        &strategies,
        LinkChaos::healthy(),
        None,
    );
    assert_eq!(skewless.decisions, exact.decisions);
    assert_eq!(skewless.views, exact.views);
    assert_eq!(skewless.stats.false_timeouts, 0);
}

#[test]
fn malformed_trace_frames_over_live_tcp_degrade_to_untraced_deliveries() {
    // The causal trace section of a `0x03` wire frame is observability
    // metadata, not protocol state: whatever an adversary (or a cut cable)
    // does to it, the enclosing envelope must still be delivered — as an
    // *untraced* message — and the connection must survive to carry later
    // traffic. The codec tests prove this at the byte level; this test
    // proves it end to end, through a real listener, the id handshake, and
    // the mesh reader thread.
    use degradable::{ByzMsg, NodeEvent, Path};
    use obs::TraceCtx;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};
    use transport::frame::{self, Frame};
    use transport::{tcp_join, PollOutcome, Transport};

    // Reserve a loopback port for node 0's listener, then release it for
    // tcp_join to rebind.
    let addr0 = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    // Node 0 dials no one (lowest index), so peer 1's address is never
    // used — any placeholder works.
    let addr1 = "127.0.0.1:1".parse().unwrap();
    let config = MeshConfig {
        // Generous: the test collects deliveries by hand and must not race
        // a deadline-driven round advance.
        round_timeout: Duration::from_secs(30),
        ..MeshConfig::default()
    };
    let joiner = std::thread::spawn(move || {
        tcp_join(
            NodeId::new(0),
            &[addr0, addr1],
            1,
            LinkChaos::healthy(),
            config,
        )
    });
    // The test plays node 1 on a raw socket, so it can put arbitrary bytes
    // on the wire after the 4-byte id handshake.
    let mut wire = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpStream::connect(addr0) {
                Ok(s) => break s,
                Err(e) if Instant::now() >= deadline => panic!("node 0 never listened: {e}"),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    };
    wire.write_all(&1u32.to_le_bytes()).unwrap();
    let mut node0 = joiner.join().unwrap().expect("tcp_join failed");

    let ctx = TraceCtx::new(3, vec![1]);
    let traced = Frame::Envelope {
        src: NodeId::new(1),
        msg: ByzMsg {
            path: Path::root(NodeId::new(1)),
            value: Val::Value(5),
        },
        trace: Some(ctx.clone()),
    };
    // The frame body (after the u32 length prefix); its trace section for
    // a length-1 path is instance:u64 hop:u32 len:u32 id:u64 = 24 bytes.
    let good = frame::encode(&traced)[4..].to_vec();
    let split = good.len() - (8 + 4 + 4 + 8);
    let reframe = |body: &[u8]| {
        let mut w = (body.len() as u32).to_le_bytes().to_vec();
        w.extend_from_slice(body);
        w
    };
    let mut bloated = good[..split].to_vec();
    bloated.extend_from_slice(&7u64.to_le_bytes());
    bloated.extend_from_slice(&1u32.to_le_bytes());
    bloated.extend_from_slice(&u32::MAX.to_le_bytes());
    let malformed = [
        good[..split].to_vec(),      // trace section missing entirely
        good[..split + 10].to_vec(), // truncated mid-section
        bloated,                     // absurd path-length claim
    ];
    for body in &malformed {
        wire.write_all(&reframe(body)).unwrap();
    }
    // A well-formed traced frame *after* the corrupt ones: its context
    // arriving intact proves the connection and the codec state survived.
    wire.write_all(&reframe(&good)).unwrap();

    assert_eq!(
        node0.poll(),
        PollOutcome::Event(NodeEvent::Timeout { round: 0 })
    );
    let mut traces = Vec::new();
    let start = Instant::now();
    while traces.len() < 4 {
        match node0.poll() {
            PollOutcome::Event(NodeEvent::Deliver { src, msg }) => {
                assert_eq!(src, NodeId::new(1));
                assert_eq!(msg.value, Val::Value(5));
                traces.push(node0.last_trace());
            }
            PollOutcome::Pending => std::thread::sleep(Duration::from_millis(1)),
            other => panic!("expected deliveries only, got {other:?}"),
        }
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "only {} of 4 frames arrived",
            traces.len()
        );
    }
    assert_eq!(traces, vec![None, None, None, Some(ctx)]);
    assert!(
        node0.failure().is_none(),
        "corrupt traces must not kill links"
    );
    assert!(node0.gone_peers().is_empty());
    assert_eq!(node0.stats().delivered, 4);
}

#[test]
fn false_timeouts_are_counted_between_fault_free_pairs_only() {
    // Skew every envelope: the counter must still exclude pairs with a
    // faulty endpoint — §6's relaxation is about *fault-free* nodes
    // mistaking each other for faulty.
    let inst = instance(5, 1, 2);
    let strategies: BTreeMap<_, _> = [
        (NodeId::new(3), Strategy::ConstantLie(Val::Value(9))),
        (NodeId::new(4), Strategy::ConstantLie(Val::Value(8))),
    ]
    .into_iter()
    .collect();
    let relaxed = RelaxedTiming::when_degraded(2, 1, 1.0, 1, 0).expect("f > m");
    let run = run_sim(
        &inst,
        Val::Value(42),
        &strategies,
        LinkChaos::healthy(),
        Some(relaxed),
    );
    assert!(run.stats.false_timeouts > 0);
    // Fault-free senders are 0, 1, 2; fault-free receivers 1, 2 (the
    // sender 0 receives relays too). Every directed fault-free pair can
    // false-timeout at most once per (round, path), and the total must
    // stay below the all-pairs bound that would include faulty endpoints.
    assert!(
        run.stats.false_timeouts < run.stats.delivered,
        "false timeouts ({}) cannot dominate deliveries ({})",
        run.stats.false_timeouts,
        run.stats.delivered
    );
}
