//! Length-prefixed wire frames for BYZ envelopes and round marks.
//!
//! The TCP backend needs a codec; to keep the container dependency-free it
//! is hand-rolled: every frame is a little-endian `u32` byte length
//! followed by that many payload bytes. The payload is a tagged binary
//! encoding of [`Frame`]:
//!
//! ```text
//! frame    := tag:u8 body
//! envelope := 0x01 src:u32 value path          (a BYZ protocol message)
//! mark     := 0x02 src:u32 round:u32           (round-barrier control)
//! traced   := 0x03 src:u32 value path trace    (envelope + causal context)
//! value    := 0x00 | 0x01 v:u64                (V_d | Value(v))
//! path     := len:u32 id:u32 ...               (relay path, sender first)
//! trace    := instance:u64 hop:u32 len:u32 id:u64 ...
//! ```
//!
//! Wire payloads are `u64` ([`Val`]); the experiments never need more, and
//! fixing the value type keeps the codec closed (no serde data format in
//! the tree). Decoding is total: every error is a [`FrameError`], never a
//! panic, because bytes off a socket are adversary-controlled in this
//! codebase's threat model. The same frames travel over in-process
//! channels un-encoded — the codec round-trip is exercised only by the TCP
//! backend and the codec tests.
//!
//! Trace context is observability metadata, not protocol state, so its
//! failure domain is deliberately smaller: a `0x03` frame whose envelope
//! part decodes but whose trace section is truncated or malformed degrades
//! to an **untraced** delivery (`trace: None`) instead of poisoning the
//! connection. Corruption in the envelope part itself stays fatal, exactly
//! as for `0x01`.

use degradable::{AgreementValue, ByzMsg, Path, Val};
use obs::TraceCtx;
use simnet::NodeId;
use std::io::{self, Read, Write};

/// Hard cap on a frame's payload size (1 MiB). A length prefix beyond this
/// is treated as a corrupt stream rather than an allocation request.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

const TAG_ENVELOPE: u8 = 0x01;
const TAG_MARK: u8 = 0x02;
const TAG_TRACED: u8 = 0x03;
const VAL_DEFAULT: u8 = 0x00;
const VAL_VALUE: u8 = 0x01;

/// One unit of inter-node traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A BYZ protocol message from `src`.
    Envelope {
        /// The node that put the message on the wire.
        src: NodeId,
        /// The relay-path-tagged claim.
        msg: ByzMsg<u64>,
        /// Causal trace context stamped by the sender, when tracing is
        /// on. Untraced envelopes use wire tag `0x01`, traced ones
        /// `0x03`; a malformed trace section on the wire decodes as
        /// `None`, never as a frame error.
        trace: Option<TraceCtx>,
    },
    /// "`src` has finished sending for `round`" — the barrier control
    /// frame real transports use for message-absence detection.
    Mark {
        /// The node whose round is complete.
        src: NodeId,
        /// The completed round.
        round: usize,
    },
}

impl Frame {
    /// The node that emitted this frame.
    pub fn src(&self) -> NodeId {
        match *self {
            Frame::Envelope { src, .. } | Frame::Mark { src, .. } => src,
        }
    }
}

/// Why a byte stream failed to parse as a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The stream ended inside a frame.
    Truncated,
    /// A tag, length, or id field held an impossible value.
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame io error: {e}"),
            FrameError::Truncated => write!(f, "frame truncated mid-stream"),
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Encodes `frame` as a length-prefixed byte vector.
pub fn encode(frame: &Frame) -> Vec<u8> {
    let mut body = Vec::with_capacity(32);
    match frame {
        Frame::Envelope { src, msg, trace } => {
            body.push(if trace.is_some() {
                TAG_TRACED
            } else {
                TAG_ENVELOPE
            });
            put_u32(&mut body, src.index() as u32);
            match msg.value {
                AgreementValue::Default => body.push(VAL_DEFAULT),
                AgreementValue::Value(v) => {
                    body.push(VAL_VALUE);
                    body.extend_from_slice(&v.to_le_bytes());
                }
            }
            let ids = msg.path.as_slice();
            put_u32(&mut body, ids.len() as u32);
            for id in ids {
                put_u32(&mut body, id.index() as u32);
            }
            if let Some(ctx) = trace {
                body.extend_from_slice(&ctx.instance.to_le_bytes());
                put_u32(&mut body, ctx.hop);
                put_u32(&mut body, ctx.path.len() as u32);
                for node in &ctx.path {
                    body.extend_from_slice(&node.to_le_bytes());
                }
            }
        }
        Frame::Mark { src, round } => {
            body.push(TAG_MARK);
            put_u32(&mut body, src.index() as u32);
            put_u32(&mut body, *round as u32);
        }
    }
    let mut out = Vec::with_capacity(4 + body.len());
    put_u32(&mut out, body.len() as u32);
    out.extend_from_slice(&body);
    out
}

/// Writes one encoded frame to `w` (a single `write_all`, so concurrent
/// writers on a shared stream never interleave partial frames).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), FrameError> {
    w.write_all(&encode(frame))?;
    Ok(())
}

/// Reads one frame from `r`. `Ok(None)` on clean EOF at a frame boundary;
/// [`FrameError::Truncated`] on EOF inside a frame.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, FrameError> {
    let mut len_buf = [0u8; 4];
    match read_exact_or_eof(r, &mut len_buf)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Partial => return Err(FrameError::Truncated),
        ReadOutcome::Full => {}
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Malformed("length prefix exceeds MAX_FRAME_LEN"));
    }
    let mut body = vec![0u8; len as usize];
    match read_exact_or_eof(r, &mut body)? {
        ReadOutcome::Full => {}
        _ => return Err(FrameError::Truncated),
    }
    decode(&body).map(Some)
}

/// Decodes one frame body (the bytes after the length prefix). The whole
/// body must be consumed — trailing bytes are malformed.
pub fn decode(body: &[u8]) -> Result<Frame, FrameError> {
    let mut cur = Cursor { buf: body, pos: 0 };
    let frame = match cur.u8()? {
        tag @ (TAG_ENVELOPE | TAG_TRACED) => {
            let src = NodeId::new(cur.u32()? as usize);
            let value: Val = match cur.u8()? {
                VAL_DEFAULT => AgreementValue::Default,
                VAL_VALUE => AgreementValue::Value(cur.u64()?),
                _ => return Err(FrameError::Malformed("unknown value tag")),
            };
            let path_len = cur.u32()? as usize;
            if path_len == 0 {
                return Err(FrameError::Malformed("empty relay path"));
            }
            let mut path = Path::root(NodeId::new(cur.u32()? as usize));
            for _ in 1..path_len {
                path = path.child(NodeId::new(cur.u32()? as usize));
            }
            let trace = if tag == TAG_TRACED {
                // Observability metadata degrades instead of failing:
                // whatever is wrong with the trace section, the envelope
                // is still a valid protocol message, so consume the rest
                // of the body and deliver it untraced.
                let ctx = decode_trace_section(&mut cur);
                if ctx.is_none() {
                    cur.pos = body.len();
                }
                ctx
            } else {
                None
            };
            Frame::Envelope {
                src,
                msg: ByzMsg { path, value },
                trace,
            }
        }
        TAG_MARK => {
            let src = NodeId::new(cur.u32()? as usize);
            let round = cur.u32()? as usize;
            Frame::Mark { src, round }
        }
        _ => return Err(FrameError::Malformed("unknown frame tag")),
    };
    if cur.pos != body.len() {
        return Err(FrameError::Malformed("trailing bytes after frame body"));
    }
    Ok(frame)
}

/// Parses the trace section of a `0x03` frame. `None` on any truncation,
/// oversized claim, or trailing garbage — the caller degrades the frame
/// to an untraced envelope rather than surfacing an error.
fn decode_trace_section(cur: &mut Cursor<'_>) -> Option<TraceCtx> {
    let instance = cur.u64().ok()?;
    let hop = cur.u32().ok()?;
    let path_len = cur.u32().ok()? as usize;
    let mut path = Vec::new();
    for _ in 0..path_len {
        path.push(cur.u64().ok()?);
    }
    if cur.pos != cur.buf.len() {
        return None;
    }
    Some(TraceCtx {
        instance,
        path,
        hop,
    })
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

/// `read_exact` that distinguishes a clean EOF before the first byte from
/// an EOF mid-buffer.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                });
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(ReadOutcome::Full)
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, k: usize) -> Result<&[u8], FrameError> {
        if self.pos + k > self.buf.len() {
            return Err(FrameError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + k];
        self.pos += k;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Envelope {
                src: nid(0),
                msg: ByzMsg {
                    path: Path::root(nid(0)),
                    value: AgreementValue::Value(u64::MAX),
                },
                trace: None,
            },
            Frame::Envelope {
                src: nid(3),
                msg: ByzMsg {
                    path: Path::root(nid(0)).child(nid(2)).child(nid(3)),
                    value: AgreementValue::Default,
                },
                trace: None,
            },
            Frame::Envelope {
                src: nid(3),
                msg: ByzMsg {
                    path: Path::root(nid(0)).child(nid(3)),
                    value: AgreementValue::Value(42),
                },
                trace: Some(TraceCtx::new(5, vec![0, 3])),
            },
            Frame::Mark {
                src: nid(7),
                round: 0,
            },
            Frame::Mark {
                src: nid(1),
                round: 4096,
            },
        ]
    }

    #[test]
    fn roundtrip_through_a_byte_stream() {
        let frames = sample_frames();
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut r = wire.as_slice();
        let mut back = Vec::new();
        while let Some(f) = read_frame(&mut r).unwrap() {
            back.push(f);
        }
        assert_eq!(back, frames);
    }

    #[test]
    fn clean_eof_is_none() {
        let mut r: &[u8] = &[];
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn eof_inside_prefix_is_truncated() {
        let wire = encode(&sample_frames()[0]);
        let mut r = &wire[..2];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));
    }

    #[test]
    fn eof_inside_body_is_truncated() {
        let wire = encode(&sample_frames()[0]);
        let mut r = &wire[..wire.len() - 1];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));
    }

    #[test]
    fn oversized_prefix_is_malformed() {
        let mut wire = Vec::new();
        put_u32(&mut wire, MAX_FRAME_LEN + 1);
        let mut r = wire.as_slice();
        assert!(matches!(read_frame(&mut r), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn junk_tag_and_trailing_bytes_are_malformed() {
        assert!(matches!(decode(&[0xff]), Err(FrameError::Malformed(_))));
        let mut body = encode(&Frame::Mark {
            src: nid(0),
            round: 1,
        })[4..]
            .to_vec();
        body.push(0);
        assert!(matches!(decode(&body), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn empty_path_is_rejected() {
        // envelope, src 0, V_d, path_len 0
        let mut body = vec![TAG_ENVELOPE];
        put_u32(&mut body, 0);
        body.push(VAL_DEFAULT);
        put_u32(&mut body, 0);
        assert!(matches!(decode(&body), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn untraced_envelopes_keep_the_v1_wire_tag() {
        let wire = encode(&sample_frames()[0]);
        assert_eq!(wire[4], TAG_ENVELOPE);
        let wire = encode(&sample_frames()[2]);
        assert_eq!(wire[4], TAG_TRACED);
    }

    #[test]
    fn traced_envelope_round_trips_its_context() {
        let frame = &sample_frames()[2];
        let wire = encode(frame);
        let back = decode(&wire[4..]).unwrap();
        assert_eq!(&back, frame);
        match back {
            Frame::Envelope { trace, .. } => {
                assert_eq!(trace, Some(TraceCtx::new(5, vec![0, 3])));
            }
            other => panic!("expected envelope, got {other:?}"),
        }
    }

    /// The satellite invariant: a `0x03` frame whose trace section is
    /// truncated, padded, or garbage still decodes — as an *untraced*
    /// envelope — so one corrupt trace never kills a mesh connection.
    #[test]
    fn malformed_trace_sections_degrade_to_untraced() {
        let frame = sample_frames()[2].clone();
        let untraced = match &frame {
            Frame::Envelope { src, msg, .. } => Frame::Envelope {
                src: *src,
                msg: msg.clone(),
                trace: None,
            },
            other => panic!("expected envelope, got {other:?}"),
        };
        let body = &encode(&frame)[4..];
        // Chop the trace section at every possible length, including
        // removing it entirely; the envelope part is bytes [0, split).
        let split = body.len() - (8 + 4 + 4 + 2 * 8);
        for cut in split..body.len() {
            let got = decode(&body[..cut])
                .unwrap_or_else(|e| panic!("truncated trace at {cut} must degrade, got {e}"));
            assert_eq!(got, untraced, "cut at {cut}");
        }
        // Trailing garbage after a complete trace section.
        let mut padded = body.to_vec();
        padded.push(0xAA);
        assert_eq!(decode(&padded).unwrap(), untraced);
        // An absurd path-length claim inside the trace section.
        let mut bloated = body[..split].to_vec();
        bloated.extend_from_slice(&7u64.to_le_bytes());
        put_u32(&mut bloated, 2);
        put_u32(&mut bloated, u32::MAX);
        assert_eq!(decode(&bloated).unwrap(), untraced);
        // But corruption in the *envelope* part stays fatal.
        assert!(matches!(decode(&body[..3]), Err(FrameError::Truncated)));
    }

    #[test]
    fn frame_src_accessor() {
        for f in sample_frames() {
            let _ = f.src();
        }
        assert_eq!(sample_frames()[1].src(), nid(3));
    }
}
