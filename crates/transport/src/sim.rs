//! The deterministic virtual-time backend.
//!
//! [`SimWorld`] owns one [`simnet::EventQueue`] holding every pending
//! delivery and every per-node round timer; [`SimTransport`] is a per-node
//! handle onto it. The queue's strict `(time, class, seq)` order makes the
//! whole run a single totally-ordered event sequence, so the outcome is
//! bit-identical across processes, worker counts, and polling patterns:
//! `poll` releases the *head* event only to the endpoint that owns it and
//! answers [`PollOutcome::Pending`] to everyone else, which means the
//! driver's iteration order cannot influence the event order.
//!
//! Rounds are emergent. Node `i`'s round-`r` timer fires at virtual time
//! `r * quantum`; an envelope sent while round `r` closes is scheduled for
//! `(r + 1 + delay) * quantum + skew`. With no skew it lands *exactly on*
//! the next boundary, where the queue's Deliver-before-Timer tie-break
//! makes it present — absence only happens to messages strictly later than
//! the timeout.
//!
//! [`RelaxedTiming`] models §6 of the paper. BYZ's absence detection
//! (assumption (b)) is only guaranteed while clock synchronization holds,
//! and the degradable clock protocol keeps clocks synchronized only up to
//! `m` faults. [`RelaxedTiming::when_degraded`] therefore refuses to
//! produce skew when `f <= m`; beyond `m` it injects keyed per-envelope
//! skew that pushes some fault-free traffic past the receiver's timeout —
//! a *false* absence detection. The late envelope still folds into the
//! receiver's view as a direct observation (never relayed), and the D.3/D.4
//! verdicts must survive, which the §6 test suite asserts.

use crate::chaos::{message_key, unit_f64, LinkChaos};
use crate::{Disposition, DropCause, PollOutcome, Transport, TransportStats};
use degradable::{ByzMsg, NodeEvent, Path};
use obs::TraceCtx;
use serde::{Deserialize, Serialize};
use simnet::{EventClass, EventQueue, NodeId, SimTime};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Reserved `domain` for skew draws in [`crate::chaos::message_key`]
/// (fault slots use their index, which never reaches `u64::MAX`).
const SKEW_DOMAIN: u64 = u64::MAX;

/// §6 relaxed absence detection: keyed clock-skew injection.
///
/// Constructed via [`RelaxedTiming::when_degraded`], which enforces the
/// paper's rule that detection may only be incorrect once the fault count
/// exceeds `m` (below that, degradable clock synchronization holds and
/// timeouts are exact).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelaxedTiming {
    /// Per-envelope probability of arriving after the receiver's timeout.
    pub skew_p: f64,
    /// Maximum skew past the boundary, in virtual time units (≥ 1 for the
    /// injection to do anything).
    pub max_skew: u64,
    /// Seed for the keyed draws.
    pub seed: u64,
}

impl RelaxedTiming {
    /// Skew injection for a run with `f` actual faults under parameter
    /// `m`: `None` when `f <= m` (clocks synchronized, detection must be
    /// correct — §6's precondition), the injector otherwise.
    pub fn when_degraded(
        f: usize,
        m: usize,
        skew_p: f64,
        max_skew: u64,
        seed: u64,
    ) -> Option<Self> {
        (f > m).then_some(RelaxedTiming {
            skew_p,
            max_skew,
            seed,
        })
    }

    /// The keyed skew for one envelope: 0 (on time) or `1..=max_skew`
    /// virtual time units past the receiver's round boundary.
    fn skew(&self, round: usize, from: NodeId, to: NodeId, path: &Path) -> u64 {
        if self.max_skew == 0 {
            return 0;
        }
        let h = message_key(self.seed, SKEW_DOMAIN, round, from, to, path);
        if unit_f64(h) < self.skew_p {
            1 + h % self.max_skew
        } else {
            0
        }
    }
}

/// Payloads in the world's event queue.
enum WorldEvent {
    /// An envelope arriving at `dst`. `late` marks it skewed past its
    /// nominal round boundary (a §6 false timeout at the receiver).
    Deliver {
        dst: NodeId,
        src: NodeId,
        msg: ByzMsg<u64>,
        late: bool,
        trace: Option<TraceCtx>,
    },
    /// Node `node`'s round-`round` timeout.
    Timer { node: NodeId, round: usize },
}

impl WorldEvent {
    fn owner(&self) -> NodeId {
        match *self {
            WorldEvent::Deliver { dst, .. } => dst,
            WorldEvent::Timer { node, .. } => node,
        }
    }
}

/// The shared virtual-time world behind a set of [`SimTransport`]s.
pub struct SimWorld {
    n: usize,
    quantum: SimTime,
    end: SimTime,
    queue: EventQueue<WorldEvent>,
    chaos: LinkChaos,
    relaxed: Option<RelaxedTiming>,
    faulty: BTreeSet<NodeId>,
    stats: Vec<TransportStats>,
    /// Per-node trace context of the most recently surfaced delivery.
    last_trace: Vec<Option<TraceCtx>>,
}

impl SimWorld {
    /// Builds a world for `n` nodes running `depth + 1` rounds and returns
    /// the per-node endpoints. `faulty` lists the Byzantine nodes (used
    /// only to classify false timeouts as fault-free-to-fault-free).
    pub fn endpoints(
        n: usize,
        depth: usize,
        chaos: LinkChaos,
        relaxed: Option<RelaxedTiming>,
        faulty: BTreeSet<NodeId>,
    ) -> Vec<SimTransport> {
        // The quantum must exceed the largest possible skew so a skewed
        // envelope still lands inside the *next* round's window (late,
        // folded as a direct observation) rather than overshooting it.
        let quantum = relaxed.map_or(1, |r| r.max_skew + 1) as SimTime;
        let mut queue = EventQueue::new();
        for round in 0..=depth {
            for node in NodeId::all(n) {
                queue.schedule(
                    round as SimTime * quantum,
                    EventClass::Timer,
                    WorldEvent::Timer { node, round },
                );
            }
        }
        let world = Rc::new(RefCell::new(SimWorld {
            n,
            quantum,
            end: depth as SimTime * quantum,
            queue,
            chaos,
            relaxed,
            faulty,
            stats: vec![TransportStats::default(); n],
            last_trace: vec![None; n],
        }));
        NodeId::all(n)
            .map(|me| SimTransport {
                me,
                world: Rc::clone(&world),
            })
            .collect()
    }

    fn send(&mut self, from: NodeId, to: NodeId, msg: ByzMsg<u64>, trace: Option<TraceCtx>) {
        let round = (self.queue.now() / self.quantum) as usize;
        self.stats[from.index()].sent += 1;
        let (copies, delay) = match self.chaos.disposition(round, from, to, &msg.path) {
            Disposition::Dropped(cause) => {
                let s = &mut self.stats[from.index()];
                match cause {
                    DropCause::Cut => s.dropped_cut += 1,
                    DropCause::Loss => s.dropped_loss += 1,
                    DropCause::Corrupt => s.dropped_corrupt += 1,
                }
                return;
            }
            Disposition::Deliver {
                copies,
                delay_rounds,
            } => (copies, delay_rounds),
        };
        if delay > 0 {
            self.stats[from.index()].delayed += 1;
        }
        if copies > 1 {
            self.stats[from.index()].duplicated += (copies - 1) as u64;
        }
        let skew = self
            .relaxed
            .map_or(0, |r| r.skew(round, from, to, &msg.path));
        let arrival = (round + 1 + delay) as SimTime * self.quantum + skew as SimTime;
        for _ in 0..copies {
            if arrival > self.end {
                // Past the final timeout: nobody will ever process it.
                self.stats[to.index()].lost += 1;
                continue;
            }
            self.queue.schedule(
                arrival,
                EventClass::Deliver,
                WorldEvent::Deliver {
                    dst: to,
                    src: from,
                    msg: msg.clone(),
                    late: skew > 0,
                    trace: trace.clone(),
                },
            );
        }
    }

    fn poll_for(&mut self, me: NodeId) -> PollOutcome {
        match self.queue.peek() {
            None => return PollOutcome::Closed,
            // Only the owner may pop the head: the queue's total order is
            // the run's event order no matter who polls when.
            Some(head) if head.payload.owner() != me => return PollOutcome::Pending,
            Some(_) => {}
        }
        let ev = self.queue.pop().expect("peeked head vanished");
        match ev.payload {
            WorldEvent::Timer { round, .. } => PollOutcome::Event(NodeEvent::Timeout { round }),
            WorldEvent::Deliver {
                dst,
                src,
                msg,
                late,
                trace,
            } => {
                let s = &mut self.stats[dst.index()];
                s.delivered += 1;
                if late && !self.faulty.contains(&src) && !self.faulty.contains(&dst) {
                    // A fault-free node's envelope to a fault-free node
                    // missed the timeout: §6's false absence detection.
                    s.false_timeouts += 1;
                }
                self.last_trace[dst.index()] = trace;
                PollOutcome::Event(NodeEvent::Deliver { src, msg })
            }
        }
    }
}

/// One node's endpoint onto a [`SimWorld`].
pub struct SimTransport {
    me: NodeId,
    world: Rc<RefCell<SimWorld>>,
}

impl Transport for SimTransport {
    fn me(&self) -> NodeId {
        self.me
    }

    fn n(&self) -> usize {
        self.world.borrow().n
    }

    fn send(&mut self, to: NodeId, msg: ByzMsg<u64>) {
        self.world.borrow_mut().send(self.me, to, msg, None);
    }

    fn send_traced(&mut self, to: NodeId, msg: ByzMsg<u64>, trace: Option<TraceCtx>) {
        self.world.borrow_mut().send(self.me, to, msg, trace);
    }

    fn last_trace(&self) -> Option<TraceCtx> {
        self.world.borrow().last_trace[self.me.index()].clone()
    }

    fn poll(&mut self) -> PollOutcome {
        self.world.borrow_mut().poll_for(self.me)
    }

    fn stats(&self) -> TransportStats {
        self.world.borrow().stats[self.me.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use degradable::AgreementValue;

    fn nid(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn when_degraded_respects_the_m_threshold() {
        assert!(RelaxedTiming::when_degraded(1, 1, 0.5, 3, 0).is_none());
        assert!(RelaxedTiming::when_degraded(0, 2, 0.5, 3, 0).is_none());
        let r = RelaxedTiming::when_degraded(2, 1, 0.5, 3, 0).unwrap();
        assert_eq!(r.max_skew, 3);
    }

    #[test]
    fn skew_stays_within_bounds_and_hits_both_outcomes() {
        let r = RelaxedTiming {
            skew_p: 0.5,
            max_skew: 4,
            seed: 11,
        };
        let path = Path::root(nid(0));
        let (mut zero, mut nonzero) = (0, 0);
        for round in 0..200 {
            let s = r.skew(round, nid(0), nid(1), &path);
            assert!(s <= 4);
            if s == 0 {
                zero += 1;
            } else {
                nonzero += 1;
            }
        }
        assert!(zero > 40, "p=0.5: {zero} on-time of 200");
        assert!(nonzero > 40, "p=0.5: {nonzero} skewed of 200");
        let never = RelaxedTiming {
            skew_p: 0.0,
            max_skew: 4,
            seed: 11,
        };
        assert_eq!(never.skew(0, nid(0), nid(1), &path), 0);
    }

    #[test]
    fn boundary_arrival_beats_the_timer() {
        // n=2, one round beyond round 0: node 0's round-0 send arrives at
        // exactly node 1's round-1 timer time, and must pop *before* it
        // (the §6 boundary edge case — present, not absent).
        let mut eps = SimWorld::endpoints(2, 1, LinkChaos::healthy(), None, BTreeSet::new());
        let msg = ByzMsg {
            path: Path::root(nid(0)),
            value: AgreementValue::Value(5u64),
        };
        // Pop both round-0 timers.
        assert!(matches!(
            eps[0].poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 0 })
        ));
        assert!(matches!(eps[0].poll(), PollOutcome::Pending));
        eps[0].send(nid(1), msg.clone());
        assert!(matches!(
            eps[1].poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 0 })
        ));
        // Head is now the delivery at t=1 — same time as node 0's round-1
        // timer, but Deliver sorts first and it belongs to node 1.
        assert!(matches!(eps[0].poll(), PollOutcome::Pending));
        match eps[1].poll() {
            PollOutcome::Event(NodeEvent::Deliver { src, msg: got }) => {
                assert_eq!(src, nid(0));
                assert_eq!(got, msg);
            }
            other => panic!("expected boundary delivery, got {other:?}"),
        }
        // Only now the round-1 timers.
        assert!(matches!(
            eps[0].poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 1 })
        ));
        assert!(matches!(
            eps[1].poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 1 })
        ));
        assert!(matches!(eps[0].poll(), PollOutcome::Closed));
        assert_eq!(eps[1].stats().delivered, 1);
        assert_eq!(eps[1].stats().false_timeouts, 0);
    }

    #[test]
    fn skewed_arrival_misses_the_timer_and_counts_false_timeout() {
        // Force every envelope late: skew_p = 1. The round-0 send then
        // arrives strictly after node 1's round-1 timer.
        let relaxed = RelaxedTiming {
            skew_p: 1.0,
            max_skew: 2,
            seed: 0,
        };
        let mut eps =
            SimWorld::endpoints(2, 2, LinkChaos::healthy(), Some(relaxed), BTreeSet::new());
        let msg = ByzMsg {
            path: Path::root(nid(0)),
            value: AgreementValue::Value(5u64),
        };
        assert!(matches!(
            eps[0].poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 0 })
        ));
        eps[0].send(nid(1), msg);
        assert!(matches!(
            eps[1].poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 0 })
        ));
        // Round-1 timers fire before the (skewed) delivery.
        assert!(matches!(
            eps[0].poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 1 })
        ));
        assert!(matches!(
            eps[1].poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 1 })
        ));
        assert!(matches!(
            eps[1].poll(),
            PollOutcome::Event(NodeEvent::Deliver { .. })
        ));
        assert_eq!(eps[1].stats().false_timeouts, 1);
    }

    #[test]
    fn false_timeouts_under_churn_count_fault_free_pairs_only() {
        // Churn accounting (DESIGN §5f): a crashed node is in the faulty
        // set for its epoch. With every envelope skewed late, only the
        // fault-free→fault-free pair (0→1) may count as a false timeout;
        // traffic from the crashed node 2, and traffic addressed to it,
        // is not a *false* detection — the peer really is faulty.
        let relaxed = RelaxedTiming {
            skew_p: 1.0,
            max_skew: 2,
            seed: 3,
        };
        let faulty: BTreeSet<NodeId> = [nid(2)].into_iter().collect();
        let mut eps = SimWorld::endpoints(3, 2, LinkChaos::healthy(), Some(relaxed), faulty);
        let msg = |src: usize| ByzMsg {
            path: Path::root(nid(src)),
            value: AgreementValue::Value(5u64),
        };
        let mut closed = [false; 3];
        while !closed.iter().all(|&c| c) {
            for i in 0..3 {
                match eps[i].poll() {
                    PollOutcome::Event(NodeEvent::Timeout { round: 0 }) => match i {
                        0 => {
                            eps[0].send(nid(1), msg(0));
                            eps[0].send(nid(2), msg(0));
                        }
                        2 => eps[2].send(nid(1), msg(2)),
                        _ => {}
                    },
                    PollOutcome::Closed => closed[i] = true,
                    _ => {}
                }
            }
        }
        assert_eq!(eps[1].stats().delivered, 2, "node 1 hears 0 and 2");
        assert_eq!(eps[2].stats().delivered, 1, "node 2 hears 0");
        assert_eq!(
            eps[1].stats().false_timeouts,
            1,
            "only the fault-free pair 0->1 counts"
        );
        assert_eq!(
            eps[2].stats().false_timeouts,
            0,
            "late traffic *to* the crashed node is not a false timeout"
        );
    }

    #[test]
    fn skew_past_the_final_round_is_lost() {
        let relaxed = RelaxedTiming {
            skew_p: 1.0,
            max_skew: 2,
            seed: 0,
        };
        // depth = 1: a skewed round-0 send lands past the last timer.
        let mut eps =
            SimWorld::endpoints(2, 1, LinkChaos::healthy(), Some(relaxed), BTreeSet::new());
        let msg = ByzMsg {
            path: Path::root(nid(0)),
            value: AgreementValue::Value(5u64),
        };
        assert!(matches!(
            eps[0].poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 0 })
        ));
        eps[0].send(nid(1), msg);
        assert_eq!(eps[1].stats().lost, 1);
        assert_eq!(eps[0].stats().sent, 1);
    }
}
