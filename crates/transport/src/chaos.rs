//! Message-keyed link chaos, identical on every transport backend.
//!
//! The simulator's historical chaos layer draws from a sequential RNG
//! stream in message-*processing* order — reproducible inside one
//! simulator process, but meaningless on a real network where `n` nodes
//! process concurrently. This module re-keys every chaos decision on the
//! *message identity* instead: the verdict for an envelope is a pure
//! function of `(seed, fault kind, sending round, from, to, relay path)`.
//! Any backend — simulator, channels, TCP — evaluating the same
//! [`simnet::LinkFaultPlan`] under the same seed therefore injects exactly
//! the same faults on exactly the same envelopes, which is what makes the
//! sim-vs-real differential gate (`decisions must be bit-identical`)
//! meaningful under chaos.
//!
//! Kinds on a directed edge act in insertion order, mirroring
//! `simnet::engine`:
//!
//! * `Cut` drops everything from its round on (deterministic, no draw);
//! * `Drop`/`Corrupt` kill the envelope with probability `p` (corruption
//!   is *detectable* garbling under the oral-message axiom, so without a
//!   payload mutator it reads as absence — same default as the engine);
//! * `Duplicate` delivers two copies;
//! * `Reorder` delays delivery by `1..=window` extra rounds.
//!
//! Deterministic plans (`Cut`, and any `p = 1.0` fault) produce the *same*
//! fault pattern as the engine's stream-based layer, so those runs are
//! comparable against the pre-refactor oracle message-for-message;
//! probabilistic plans produce an equally-distributed but differently
//! keyed pattern, and the differential gate re-derives decisions through
//! the reference fold instead.

use degradable::Path;
use simnet::{LinkFaultKind, LinkFaultPlan, NodeId};
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Why the chaos layer killed an envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// A [`LinkFaultKind::Cut`] active on the edge.
    Cut,
    /// Probabilistic loss ([`LinkFaultKind::Drop`]).
    Loss,
    /// Detectable garbling ([`LinkFaultKind::Corrupt`]) — reads as absent.
    Corrupt,
}

/// The fate of one envelope on one directed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Deliver `copies` copies, each `delay_rounds` rounds late.
    Deliver {
        /// 1 normally, 2 under duplication.
        copies: usize,
        /// 0 normally; `1..=window` under reordering.
        delay_rounds: usize,
    },
    /// The envelope is lost (absent at the receiver).
    Dropped(DropCause),
}

/// An **online** chaos policy layered over the keyed plan: it sees every
/// envelope crossing the layer (with the plan's base verdict) and may
/// override the ruling based on the traffic observed so far — the
/// link-level counterpart of [`degradable::AdaptiveAdversary`].
///
/// Determinism contract: a policy's state must change only through
/// [`AdaptiveLink::ruling`] calls, so any driver that evaluates envelopes
/// in a fixed total order (the simulator, the lockstep fuzz driver)
/// reproduces the same rulings from the same seed. Thread-per-node meshes
/// evaluate dispositions concurrently *and twice* (sender and receiver),
/// so adaptive policies are not installed there — [`LinkChaos::is_pure`]
/// is the guard drivers check.
pub trait AdaptiveLink: Send {
    /// A stable name for reports and repro files.
    fn name(&self) -> &'static str;

    /// The final fate of the envelope for `path` from `from` to `to` in
    /// `round`, given the keyed plan's `base` verdict.
    fn ruling(
        &mut self,
        round: usize,
        from: NodeId,
        to: NodeId,
        path: &Path,
        base: Disposition,
    ) -> Disposition;
}

/// An adaptive withholder: watches per-edge traffic and, once an edge has
/// carried `threshold` envelopes, cuts every *further* envelope on the
/// busiest edge seen so far — starving the protocol's hottest relay path,
/// which no offline plan can target because the hot edge depends on the
/// run itself.
#[derive(Debug, Clone)]
pub struct HotEdgeCutter {
    threshold: usize,
    traffic: BTreeMap<(NodeId, NodeId), usize>,
}

impl HotEdgeCutter {
    /// Cuts the busiest edge after observing `threshold` envelopes on it.
    pub fn new(threshold: usize) -> Self {
        HotEdgeCutter {
            threshold,
            traffic: BTreeMap::new(),
        }
    }

    fn hottest(&self) -> Option<(NodeId, NodeId)> {
        self.traffic
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(e, _)| *e)
    }
}

impl AdaptiveLink for HotEdgeCutter {
    fn name(&self) -> &'static str {
        "hot-edge-cutter"
    }

    fn ruling(
        &mut self,
        _round: usize,
        from: NodeId,
        to: NodeId,
        _path: &Path,
        base: Disposition,
    ) -> Disposition {
        let hot = self.hottest();
        let seen = self.traffic.entry((from, to)).or_insert(0);
        *seen += 1;
        if hot == Some((from, to)) && *seen > self.threshold {
            return Disposition::Dropped(DropCause::Cut);
        }
        base
    }
}

/// A [`LinkFaultPlan`] evaluated by message identity under a seed, with an
/// optional [`AdaptiveLink`] overlay.
#[derive(Clone)]
pub struct LinkChaos {
    plan: LinkFaultPlan,
    seed: u64,
    /// Shared across clones on purpose: every endpoint of one run feeds
    /// the same online policy, which is what "adaptive" means.
    adaptive: Option<Arc<Mutex<dyn AdaptiveLink>>>,
}

impl std::fmt::Debug for LinkChaos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkChaos")
            .field("plan", &self.plan)
            .field("seed", &self.seed)
            .field("adaptive", &self.adaptive.as_ref().map(|_| "<policy>"))
            .finish()
    }
}

impl LinkChaos {
    /// Keys `plan` under `seed`.
    pub fn new(plan: LinkFaultPlan, seed: u64) -> Self {
        LinkChaos {
            plan,
            seed,
            adaptive: None,
        }
    }

    /// A no-chaos layer (every envelope delivered once, on time).
    pub fn healthy() -> Self {
        LinkChaos::new(LinkFaultPlan::healthy(), 0)
    }

    /// Installs an online policy over the keyed plan. The policy rules on
    /// every envelope *after* the plan's verdict is computed and may
    /// override it; see the [`AdaptiveLink`] determinism contract for
    /// where this is legal.
    #[must_use]
    pub fn with_adaptive(mut self, policy: impl AdaptiveLink + 'static) -> Self {
        self.adaptive = Some(Arc::new(Mutex::new(policy)));
        self
    }

    /// The underlying fault plan.
    pub fn plan(&self) -> &LinkFaultPlan {
        &self.plan
    }

    /// Whether the plan injects nothing.
    pub fn is_healthy(&self) -> bool {
        self.plan.is_empty() && self.adaptive.is_none()
    }

    /// Whether [`LinkChaos::disposition`] is a pure function of its
    /// arguments (no adaptive overlay). Drivers that evaluate an envelope
    /// more than once, or concurrently, must refuse impure layers.
    pub fn is_pure(&self) -> bool {
        self.adaptive.is_none()
    }

    /// The fate of the envelope for `path` sent from `from` to `to` in
    /// `round`. Without an adaptive overlay this is a pure function of the
    /// arguments and the seed, so every backend agrees on it; with one,
    /// the overlay's stateful ruling is final.
    pub fn disposition(&self, round: usize, from: NodeId, to: NodeId, path: &Path) -> Disposition {
        let base = self.base_disposition(round, from, to, path);
        match &self.adaptive {
            None => base,
            Some(policy) => policy
                .lock()
                .expect("adaptive link policy poisoned")
                .ruling(round, from, to, path, base),
        }
    }

    /// The keyed plan's verdict, ignoring any adaptive overlay.
    fn base_disposition(&self, round: usize, from: NodeId, to: NodeId, path: &Path) -> Disposition {
        let mut copies = 1usize;
        let mut delay_rounds = 0usize;
        for (slot, kind) in self.plan.kinds(from, to).iter().enumerate() {
            match *kind {
                LinkFaultKind::Cut { from_round } => {
                    if round >= from_round {
                        return Disposition::Dropped(DropCause::Cut);
                    }
                }
                LinkFaultKind::Drop { p } => {
                    if self.chance(p, slot, round, from, to, path) {
                        return Disposition::Dropped(DropCause::Loss);
                    }
                }
                LinkFaultKind::Corrupt { p } => {
                    // Detectable garbling = absence (no payload mutator on
                    // real transports; matches the engine's default).
                    if self.chance(p, slot, round, from, to, path) {
                        return Disposition::Dropped(DropCause::Corrupt);
                    }
                }
                LinkFaultKind::Duplicate { p } => {
                    if copies == 1 && self.chance(p, slot, round, from, to, path) {
                        copies = 2;
                    }
                }
                LinkFaultKind::Reorder { window } => {
                    if window > 0 && delay_rounds == 0 {
                        let d = self.below(window as u64 + 1, slot, round, from, to, path);
                        delay_rounds = d as usize;
                    }
                }
            }
        }
        Disposition::Deliver {
            copies,
            delay_rounds,
        }
    }

    /// A keyed uniform draw in `[0, 1)` compared against `p`.
    fn chance(
        &self,
        p: f64,
        slot: usize,
        round: usize,
        from: NodeId,
        to: NodeId,
        path: &Path,
    ) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        unit_f64(self.key(slot, round, from, to, path)) < p
    }

    /// A keyed uniform draw in `[0, bound)`.
    fn below(
        &self,
        bound: u64,
        slot: usize,
        round: usize,
        from: NodeId,
        to: NodeId,
        path: &Path,
    ) -> u64 {
        debug_assert!(bound > 0);
        self.key(slot, round, from, to, path) % bound
    }

    /// The message-identity hash for fault slot `slot` on this edge.
    fn key(&self, slot: usize, round: usize, from: NodeId, to: NodeId, path: &Path) -> u64 {
        message_key(self.seed, slot as u64, round, from, to, path)
    }
}

/// The shared message-identity hash: a pure function of its arguments.
/// `domain` separates independent consumers (fault slots use their slot
/// index; [`crate::sim::RelaxedTiming`] uses a reserved domain).
/// `DefaultHasher::new()` is keyed with fixed constants, so the value is
/// stable across processes and machines — required for multi-process TCP
/// runs to agree on fault verdicts.
pub(crate) fn message_key(
    seed: u64,
    domain: u64,
    round: usize,
    from: NodeId,
    to: NodeId,
    path: &Path,
) -> u64 {
    let mut h = DefaultHasher::new();
    seed.hash(&mut h);
    domain.hash(&mut h);
    round.hash(&mut h);
    from.hash(&mut h);
    to.hash(&mut h);
    path.as_slice().hash(&mut h);
    h.finish()
}

/// Folds a hash into a uniform `[0, 1)` draw — 53 mantissa bits, the same
/// construction as `SimRng::unit_f64`.
pub(crate) fn unit_f64(h: u64) -> f64 {
    ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nid(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn root() -> Path {
        Path::root(nid(0))
    }

    #[test]
    fn healthy_delivers_everything_once() {
        let chaos = LinkChaos::healthy();
        assert!(chaos.is_healthy());
        assert_eq!(
            chaos.disposition(0, nid(0), nid(1), &root()),
            Disposition::Deliver {
                copies: 1,
                delay_rounds: 0
            }
        );
    }

    #[test]
    fn cut_is_deterministic_from_its_round() {
        let plan =
            LinkFaultPlan::healthy().with(nid(0), nid(1), LinkFaultKind::Cut { from_round: 1 });
        let chaos = LinkChaos::new(plan, 7);
        assert!(matches!(
            chaos.disposition(0, nid(0), nid(1), &root()),
            Disposition::Deliver { .. }
        ));
        assert_eq!(
            chaos.disposition(1, nid(0), nid(1), &root()),
            Disposition::Dropped(DropCause::Cut)
        );
        // The reverse direction is untouched.
        assert!(matches!(
            chaos.disposition(1, nid(1), nid(0), &root()),
            Disposition::Deliver { .. }
        ));
    }

    #[test]
    fn certain_faults_ignore_the_seed() {
        for seed in [0u64, 1, 99] {
            let drop = LinkChaos::new(
                LinkFaultPlan::healthy().with(nid(0), nid(1), LinkFaultKind::Drop { p: 1.0 }),
                seed,
            );
            assert_eq!(
                drop.disposition(0, nid(0), nid(1), &root()),
                Disposition::Dropped(DropCause::Loss)
            );
            let dup = LinkChaos::new(
                LinkFaultPlan::healthy().with(nid(0), nid(1), LinkFaultKind::Duplicate { p: 1.0 }),
                seed,
            );
            assert_eq!(
                dup.disposition(0, nid(0), nid(1), &root()),
                Disposition::Deliver {
                    copies: 2,
                    delay_rounds: 0
                }
            );
        }
    }

    #[test]
    fn verdicts_are_message_keyed_not_order_dependent() {
        let plan = LinkFaultPlan::healthy().with(nid(0), nid(1), LinkFaultKind::Drop { p: 0.5 });
        let chaos = LinkChaos::new(plan, 42);
        let p1 = root();
        let p2 = root().child(nid(2));
        // Same message, any evaluation order: same verdict.
        let a = chaos.disposition(1, nid(0), nid(1), &p1);
        let _ = chaos.disposition(1, nid(0), nid(1), &p2);
        let b = chaos.disposition(1, nid(0), nid(1), &p1);
        assert_eq!(a, b);
    }

    #[test]
    fn probabilistic_draws_hit_both_outcomes() {
        let plan = LinkFaultPlan::healthy().with(nid(0), nid(1), LinkFaultKind::Drop { p: 0.5 });
        let chaos = LinkChaos::new(plan, 3);
        let mut dropped = 0;
        let mut delivered = 0;
        for round in 0..200 {
            match chaos.disposition(round, nid(0), nid(1), &root()) {
                Disposition::Dropped(_) => dropped += 1,
                Disposition::Deliver { .. } => delivered += 1,
            }
        }
        assert!(dropped > 50, "p=0.5 over 200 draws: {dropped}");
        assert!(delivered > 50, "p=0.5 over 200 draws: {delivered}");
    }

    #[test]
    fn reorder_delays_within_window() {
        let plan =
            LinkFaultPlan::healthy().with(nid(0), nid(1), LinkFaultKind::Reorder { window: 2 });
        let chaos = LinkChaos::new(plan, 9);
        let mut saw_delay = false;
        for round in 0..100 {
            match chaos.disposition(round, nid(0), nid(1), &root()) {
                Disposition::Deliver {
                    copies,
                    delay_rounds,
                } => {
                    assert_eq!(copies, 1);
                    assert!(delay_rounds <= 2);
                    saw_delay |= delay_rounds > 0;
                }
                d => panic!("reorder never drops: {d:?}"),
            }
        }
        assert!(
            saw_delay,
            "window=2 over 100 draws must delay at least once"
        );
    }

    #[test]
    fn adaptive_overlay_is_flagged_impure() {
        let plain = LinkChaos::healthy();
        assert!(plain.is_pure());
        assert!(plain.is_healthy());
        let adaptive = LinkChaos::healthy().with_adaptive(HotEdgeCutter::new(1));
        assert!(!adaptive.is_pure());
        assert!(!adaptive.is_healthy(), "an overlay can inject faults");
    }

    #[test]
    fn hot_edge_cutter_targets_the_busiest_edge() {
        let chaos = LinkChaos::healthy().with_adaptive(HotEdgeCutter::new(2));
        // Edge (0,1) carries three envelopes; (0,2) one. The third (0,1)
        // envelope exceeds the threshold on the hottest edge and is cut.
        assert!(matches!(
            chaos.disposition(0, nid(0), nid(1), &root()),
            Disposition::Deliver { .. }
        ));
        assert!(matches!(
            chaos.disposition(0, nid(0), nid(2), &root()),
            Disposition::Deliver { .. }
        ));
        assert!(matches!(
            chaos.disposition(1, nid(0), nid(1), &root()),
            Disposition::Deliver { .. }
        ));
        assert_eq!(
            chaos.disposition(2, nid(0), nid(1), &root()),
            Disposition::Dropped(DropCause::Cut)
        );
        // The cold edge is untouched.
        assert!(matches!(
            chaos.disposition(2, nid(0), nid(2), &root()),
            Disposition::Deliver { .. }
        ));
    }

    #[test]
    fn clones_share_one_adaptive_policy() {
        // Every endpoint of a run clones the chaos layer; the policy must
        // see the union of their traffic, not per-clone copies.
        let a = LinkChaos::healthy().with_adaptive(HotEdgeCutter::new(1));
        let b = a.clone();
        assert!(matches!(
            a.disposition(0, nid(0), nid(1), &root()),
            Disposition::Deliver { .. }
        ));
        // The clone's second envelope on the same edge trips the shared
        // threshold.
        assert_eq!(
            b.disposition(1, nid(0), nid(1), &root()),
            Disposition::Dropped(DropCause::Cut)
        );
    }

    #[test]
    fn adaptive_rulings_are_deterministic_for_a_fixed_order() {
        let run = || {
            let chaos = LinkChaos::new(
                LinkFaultPlan::healthy().with(nid(0), nid(1), LinkFaultKind::Drop { p: 0.4 }),
                11,
            )
            .with_adaptive(HotEdgeCutter::new(3));
            let mut fates = Vec::new();
            for round in 0..20 {
                for to in 1..4 {
                    fates.push(chaos.disposition(round, nid(0), nid(to), &root()));
                }
            }
            fates
        };
        assert_eq!(run(), run());
    }
}
