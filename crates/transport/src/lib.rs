//! # transport — pluggable backends for the BYZ node state machine
//!
//! One protocol engine, three networks. The sans-io
//! [`degradable::NodeStateMachine`] consumes [`NodeEvent`]s and emits
//! [`NodeAction`](degradable::NodeAction)s; this crate supplies the [`Transport`] implementations
//! that feed it:
//!
//! | backend | module | concurrency | determinism |
//! |---------|--------|-------------|-------------|
//! | [`SimTransport`] | [`sim`] | none (virtual time) | bit-exact, replayable |
//! | channel mesh | [`mesh`] | one thread per node | decisions deterministic |
//! | TCP mesh | [`mesh`] | threads + real sockets | decisions deterministic |
//!
//! All three see the **same fault pattern** for a given
//! [`simnet::LinkFaultPlan`] and seed, because chaos verdicts are keyed on
//! message identity ([`chaos::LinkChaos`]) rather than drawn from a
//! sequential stream. That is what makes the differential gate — *sim,
//! channel, and loopback-TCP runs decide identically* — a meaningful
//! statement about the protocol rather than about scheduling luck.
//!
//! The real meshes implement the paper's message-absence detection
//! (assumption (b)) with a barrier protocol: after finishing round `r`'s
//! sends, each node broadcasts a `Mark(r)` control frame; a node closes
//! round `r` when it holds all `n−1` peer marks or its wall-clock deadline
//! expires, whichever is first. The deadline path is a *real* (possibly
//! false) timeout — exactly the §6 relaxed detection the simulator models
//! with [`sim::RelaxedTiming`].
//!
//! The value type is fixed to `u64` payloads ([`degradable::Val`])
//! throughout: the experiments never need more, and a closed value type
//! keeps the TCP codec ([`frame`]) dependency-free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod frame;
pub mod mesh;
pub mod runner;
pub mod sim;

pub use chaos::{AdaptiveLink, Disposition, DropCause, HotEdgeCutter, LinkChaos};
pub use frame::{Frame, FrameError};
pub use mesh::{
    channel_mesh, reconnect_delay, tcp_join, tcp_mesh, MeshConfig, MeshTransport,
    RECONNECT_DELAY_CAP,
};
pub use runner::{
    drive_mesh, drive_mesh_opts, drive_mesh_with, run_channel, run_channel_with, run_kind,
    run_kind_with, run_sim, run_sim_with, run_tcp, run_tcp_with, LoggedEvent, MeshDriveOptions,
    NodeOutcome, NodeTracer, RunOptions, TransportRun,
};
pub use sim::{RelaxedTiming, SimTransport, SimWorld};

use degradable::{ByzMsg, NodeEvent};
use serde::{Deserialize, Serialize};
use simnet::NodeId;
use std::fmt;
use std::str::FromStr;

/// What a [`Transport::poll`] produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PollOutcome {
    /// An event ready for the node's state machine.
    Event(NodeEvent<u64>),
    /// Nothing right now; poll again (real transports: after yielding).
    Pending,
    /// The run is over for this node; polling is pointless.
    Closed,
}

/// A network backend serving exactly one node of the protocol.
///
/// The driver loop is the same on every backend: `poll`, feed the event to
/// the machine, perform the returned actions (`Send` → [`Transport::send`],
/// `Decide` → record), repeat until [`PollOutcome::Closed`]. Timeout events
/// are *produced by the transport* — absence detection is a property of the
/// network layer, not the protocol.
pub trait Transport {
    /// The node this endpoint belongs to.
    fn me(&self) -> NodeId;

    /// Cluster size.
    fn n(&self) -> usize;

    /// Queues `msg` for delivery to `to`, subject to the backend's chaos
    /// layer. Sends are fire-and-forget (the paper's absence handling
    /// lives in the machine, not in delivery errors).
    fn send(&mut self, to: NodeId, msg: ByzMsg<u64>);

    /// [`send`](Self::send) with an attached causal [`TraceCtx`].
    ///
    /// Tracing is observability, not protocol: the default implementation
    /// drops the context and delegates to `send`, so backends that cannot
    /// carry metadata still work — they just deliver untraced. Backends
    /// that do carry it surface the context to the receiving driver via
    /// [`last_trace`](Self::last_trace).
    fn send_traced(&mut self, to: NodeId, msg: ByzMsg<u64>, trace: Option<obs::TraceCtx>) {
        let _ = trace;
        self.send(to, msg);
    }

    /// The trace context attached to the most recent
    /// [`Deliver`](NodeEvent::Deliver) event this endpoint produced, if
    /// the sender stamped one and the backend carried it. Meaningful only
    /// immediately after a `poll` that returned a delivery. Returned by
    /// value: contexts are a few words and some backends keep theirs
    /// behind interior mutability.
    fn last_trace(&self) -> Option<obs::TraceCtx> {
        None
    }

    /// Produces the next event for this node, if any.
    fn poll(&mut self) -> PollOutcome;

    /// Cumulative traffic statistics attributed to this endpoint (sends
    /// and chaos verdicts at the sender, deliveries at the receiver), so
    /// summing over all endpoints gives run totals on every backend.
    fn stats(&self) -> TransportStats;
}

/// Which backend to run a scenario on — the harness/CLI knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum TransportKind {
    /// Deterministic virtual-time simulator (the default).
    #[default]
    Sim,
    /// One OS thread per node, `std::sync::mpsc` links.
    Channel,
    /// One OS thread per node, length-prefixed frames over loopback TCP.
    Tcp,
}

impl TransportKind {
    /// All kinds, in sweep order.
    pub const ALL: [TransportKind; 3] = [
        TransportKind::Sim,
        TransportKind::Channel,
        TransportKind::Tcp,
    ];
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TransportKind::Sim => "sim",
            TransportKind::Channel => "channel",
            TransportKind::Tcp => "tcp",
        })
    }
}

impl FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sim" => Ok(TransportKind::Sim),
            "channel" => Ok(TransportKind::Channel),
            "tcp" => Ok(TransportKind::Tcp),
            other => Err(format!(
                "unknown transport '{other}' (expected sim, channel, or tcp)"
            )),
        }
    }
}

/// Traffic counters, comparable across backends.
///
/// Every field except [`false_timeouts`](Self::false_timeouts) and
/// [`lost`](Self::lost) is fully determined by the scenario and the
/// message-keyed chaos layer, so differential tests assert
/// [`TransportStats::chaos_signature`] equality across sim, channel, and
/// TCP runs. `false_timeouts` is backend-specific by nature (injected skew
/// in the simulator, real deadline expiry on a mesh).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportStats {
    /// `send` calls made by state machines (pre-chaos).
    pub sent: u64,
    /// Envelopes handed to state machines (post-chaos; duplicates count).
    pub delivered: u64,
    /// Envelopes killed by a link cut.
    pub dropped_cut: u64,
    /// Envelopes killed by probabilistic loss.
    pub dropped_loss: u64,
    /// Envelopes killed by detectable corruption (reads as absent).
    pub dropped_corrupt: u64,
    /// Extra copies injected by duplication.
    pub duplicated: u64,
    /// Envelopes delayed by reordering (counted once per send).
    pub delayed: u64,
    /// Envelopes that missed the final round entirely (delayed or skewed
    /// past the end of the run).
    pub lost: u64,
    /// Round closures that wrongly declared a live peer absent — injected
    /// clock skew in the simulator (§6 relaxed detection), real wall-clock
    /// deadline expiry on a mesh.
    pub false_timeouts: u64,
}

impl TransportStats {
    /// Adds `other`'s counters into `self` (per-node → run aggregation).
    pub fn merge(&mut self, other: &TransportStats) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.dropped_cut += other.dropped_cut;
        self.dropped_loss += other.dropped_loss;
        self.dropped_corrupt += other.dropped_corrupt;
        self.duplicated += other.duplicated;
        self.delayed += other.delayed;
        self.lost += other.lost;
        self.false_timeouts += other.false_timeouts;
    }

    /// The counters determined purely by the scenario and the keyed chaos
    /// layer — identical across backends for the same plan and seed (the
    /// differential suite asserts exactly this).
    pub fn chaos_signature(&self) -> (u64, u64, u64, u64, u64, u64) {
        (
            self.sent,
            self.dropped_cut,
            self.dropped_loss,
            self.dropped_corrupt,
            self.duplicated,
            self.delayed,
        )
    }

    /// Total envelopes dropped by the chaos layer, any cause.
    pub fn dropped(&self) -> u64 {
        self.dropped_cut + self.dropped_loss + self.dropped_corrupt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_kind_round_trips_through_strings() {
        for kind in TransportKind::ALL {
            assert_eq!(kind.to_string().parse::<TransportKind>().unwrap(), kind);
        }
        assert!("udp".parse::<TransportKind>().is_err());
        assert_eq!(TransportKind::default(), TransportKind::Sim);
    }

    #[test]
    fn stats_merge_and_signature() {
        let mut a = TransportStats {
            sent: 10,
            delivered: 8,
            dropped_loss: 2,
            ..TransportStats::default()
        };
        let b = TransportStats {
            sent: 5,
            delivered: 5,
            duplicated: 1,
            false_timeouts: 3,
            ..TransportStats::default()
        };
        a.merge(&b);
        assert_eq!(a.sent, 15);
        assert_eq!(a.delivered, 13);
        assert_eq!(a.dropped(), 2);
        // false_timeouts is deliberately absent from the signature.
        assert_eq!(a.chaos_signature(), (15, 0, 2, 0, 1, 0));
    }
}
