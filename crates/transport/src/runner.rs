//! Scenario drivers: one BYZ instance, any backend.
//!
//! The driver loop is identical everywhere — poll the transport, feed the
//! event to the node's [`NodeStateMachine`], perform the returned actions
//! — but the concurrency shape differs: [`run_sim`] multiplexes all `n`
//! endpoints on the calling thread (the shared event queue dictates the
//! order, so the sweep pattern is irrelevant), while [`run_channel`] and
//! [`run_tcp`] give every node its own OS thread and let real scheduling
//! happen. All three return a [`TransportRun`] carrying decisions, the
//! per-node EIG views (the reference fold's input, for re-deriving
//! decisions through `EigView::resolve`), and merged traffic stats — the
//! differential suite's raw material.

use crate::mesh::{channel_mesh, tcp_mesh, MeshConfig, MeshTransport};
use crate::sim::{RelaxedTiming, SimWorld};
use crate::{LinkChaos, PollOutcome, Transport, TransportKind, TransportStats};
use degradable::{ByzInstance, EigView, NodeAction, NodeStateMachine, Strategy, Val};
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::thread;
use std::time::Duration;

/// What one node produced over one run.
#[derive(Debug, Clone)]
pub struct NodeOutcome {
    /// The node.
    pub node: NodeId,
    /// Its decision (`None` for the sender, which never decides).
    pub decision: Option<Val>,
    /// Its EIG receive view — the exact fold input.
    pub view: EigView<u64>,
    /// Traffic attributed to its endpoint.
    pub stats: TransportStats,
    /// Set when the endpoint's run degenerated into a clean error — every
    /// peer permanently gone after the reconnect budget (mesh backends
    /// only; always `None` on the simulator).
    pub failure: Option<String>,
}

/// The outcome of one scenario on one backend.
#[derive(Debug, Clone)]
pub struct TransportRun {
    /// Which backend produced it.
    pub kind: TransportKind,
    /// Every receiver's decision (the sender never decides).
    pub decisions: BTreeMap<NodeId, Val>,
    /// Every node's EIG view, for reference re-derivation.
    pub views: BTreeMap<NodeId, EigView<u64>>,
    /// Run-total traffic statistics.
    pub stats: TransportStats,
}

impl TransportRun {
    fn assemble(kind: TransportKind, outcomes: Vec<NodeOutcome>) -> Self {
        let mut decisions = BTreeMap::new();
        let mut views = BTreeMap::new();
        let mut stats = TransportStats::default();
        for o in outcomes {
            if let Some(d) = o.decision {
                decisions.insert(o.node, d);
            }
            views.insert(o.node, o.view);
            stats.merge(&o.stats);
        }
        TransportRun {
            kind,
            decisions,
            views,
            stats,
        }
    }
}

fn machines_for(
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
) -> Vec<NodeStateMachine<u64>> {
    NodeId::all(instance.n())
        .map(|me| NodeStateMachine::new(instance, me, sender_value, strategies.get(&me).cloned()))
        .collect()
}

/// Feeds `event`-produced actions back into the transport; returns the
/// decision if the machine made one.
fn perform<T: Transport>(
    transport: &mut T,
    machine: &mut NodeStateMachine<u64>,
    event: degradable::NodeEvent<u64>,
) -> Option<Val> {
    let mut decision = None;
    for action in machine.on_event(event) {
        match action {
            NodeAction::Send { to, msg } => transport.send(to, msg),
            NodeAction::Decide { value } => decision = Some(value),
        }
    }
    decision
}

/// Runs the scenario on the deterministic simulator backend.
///
/// `relaxed` injects §6 clock skew (see [`RelaxedTiming::when_degraded`]);
/// `None` keeps absence detection exact. The result is bit-identical for
/// identical inputs, regardless of how the internal sweep is scheduled.
pub fn run_sim(
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    chaos: LinkChaos,
    relaxed: Option<RelaxedTiming>,
) -> TransportRun {
    let n = instance.n();
    let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
    let mut endpoints = SimWorld::endpoints(n, instance.depth(), chaos, relaxed, faulty);
    let mut machines = machines_for(instance, sender_value, strategies);
    let mut decisions: Vec<Option<Val>> = vec![None; n];
    loop {
        let mut all_closed = true;
        let mut progressed = false;
        for i in 0..n {
            loop {
                match endpoints[i].poll() {
                    PollOutcome::Event(event) => {
                        progressed = true;
                        all_closed = false;
                        if machines[i].is_done() {
                            // Defensive: the world never schedules past the
                            // final timer, so this is unreachable — but a
                            // stray event must not feed a finished machine.
                            continue;
                        }
                        if let Some(d) = perform(&mut endpoints[i], &mut machines[i], event) {
                            decisions[i] = Some(d);
                        }
                    }
                    PollOutcome::Pending => {
                        all_closed = false;
                        break;
                    }
                    PollOutcome::Closed => break,
                }
            }
        }
        if all_closed {
            break;
        }
        assert!(progressed, "sim driver stalled with events pending");
    }
    let outcomes = machines
        .iter()
        .zip(&endpoints)
        .enumerate()
        .map(|(i, (m, t))| NodeOutcome {
            node: NodeId::new(i),
            decision: decisions[i],
            view: m.view().clone(),
            stats: t.stats(),
            failure: None,
        })
        .collect();
    TransportRun::assemble(TransportKind::Sim, outcomes)
}

/// Drives one mesh endpoint to completion on the current thread — the
/// loop `dagree serve` runs after [`crate::tcp_join`] hands it a joined
/// endpoint, and the per-node body of [`run_channel`]/[`run_tcp`].
pub fn drive_mesh(mut transport: MeshTransport, mut machine: NodeStateMachine<u64>) -> NodeOutcome {
    let mut decision = None;
    loop {
        match transport.poll() {
            PollOutcome::Event(event) => {
                if let Some(d) = perform(&mut transport, &mut machine, event) {
                    decision = Some(d);
                }
            }
            PollOutcome::Pending => thread::sleep(Duration::from_micros(100)),
            PollOutcome::Closed => break,
        }
    }
    NodeOutcome {
        node: transport.me(),
        decision,
        view: machine.view().clone(),
        stats: transport.stats(),
        failure: transport.failure().map(str::to_owned),
    }
}

fn run_mesh(
    kind: TransportKind,
    mesh: Vec<MeshTransport>,
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
) -> TransportRun {
    let machines = machines_for(instance, sender_value, strategies);
    let handles: Vec<_> = mesh
        .into_iter()
        .zip(machines)
        .map(|(t, m)| thread::spawn(move || drive_mesh(t, m)))
        .collect();
    let outcomes = handles
        .into_iter()
        .map(|h| h.join().expect("mesh node thread panicked"))
        .collect();
    TransportRun::assemble(kind, outcomes)
}

/// Runs the scenario with one OS thread per node over in-process channels.
pub fn run_channel(
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    chaos: LinkChaos,
    config: MeshConfig,
) -> TransportRun {
    let mesh = channel_mesh(instance.n(), instance.depth(), &chaos, config);
    run_mesh(
        TransportKind::Channel,
        mesh,
        instance,
        sender_value,
        strategies,
    )
}

/// Runs the scenario with one OS thread per node over loopback TCP.
pub fn run_tcp(
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    chaos: LinkChaos,
    config: MeshConfig,
) -> io::Result<TransportRun> {
    let mesh = tcp_mesh(instance.n(), instance.depth(), &chaos, config)?;
    Ok(run_mesh(
        TransportKind::Tcp,
        mesh,
        instance,
        sender_value,
        strategies,
    ))
}

/// Runs the scenario on the backend selected by `kind` — the harness/CLI
/// entry point. Only the TCP backend can actually fail (socket setup).
pub fn run_kind(
    kind: TransportKind,
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    chaos: LinkChaos,
    config: MeshConfig,
) -> io::Result<TransportRun> {
    match kind {
        TransportKind::Sim => Ok(run_sim(instance, sender_value, strategies, chaos, None)),
        TransportKind::Channel => Ok(run_channel(
            instance,
            sender_value,
            strategies,
            chaos,
            config,
        )),
        TransportKind::Tcp => run_tcp(instance, sender_value, strategies, chaos, config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use degradable::{run_protocol, Params};

    fn instance(n: usize, m: usize, u: usize) -> ByzInstance {
        ByzInstance::new(n, Params::new(m, u).unwrap(), NodeId::new(0)).unwrap()
    }

    #[test]
    fn sim_healthy_matches_run_protocol() {
        let inst = instance(5, 1, 2);
        let strategies = BTreeMap::new();
        let oracle = run_protocol(&inst, &Val::Value(42), &strategies, 7);
        let run = run_sim(
            &inst,
            Val::Value(42),
            &strategies,
            LinkChaos::healthy(),
            None,
        );
        assert_eq!(run.decisions, oracle.decisions);
        for d in run.decisions.values() {
            assert_eq!(*d, Val::Value(42));
        }
        assert!(
            !run.decisions.contains_key(&NodeId::new(0)),
            "sender never decides"
        );
        assert_eq!(run.stats.delivered, run.stats.sent);
    }

    #[test]
    fn sim_with_liars_matches_run_protocol() {
        let inst = instance(7, 2, 2);
        let strategies: BTreeMap<_, _> = [
            (NodeId::new(3), Strategy::ConstantLie(Val::Value(9))),
            (NodeId::new(5), Strategy::Silent),
        ]
        .into_iter()
        .collect();
        let oracle = run_protocol(&inst, &Val::Value(1), &strategies, 7);
        let run = run_sim(
            &inst,
            Val::Value(1),
            &strategies,
            LinkChaos::healthy(),
            None,
        );
        assert_eq!(run.decisions, oracle.decisions);
    }

    #[test]
    fn channel_matches_sim_healthy() {
        let inst = instance(5, 1, 2);
        let strategies: BTreeMap<_, _> = [(NodeId::new(4), Strategy::ConstantLie(Val::Value(3)))]
            .into_iter()
            .collect();
        let sim = run_sim(
            &inst,
            Val::Value(8),
            &strategies,
            LinkChaos::healthy(),
            None,
        );
        let chan = run_channel(
            &inst,
            Val::Value(8),
            &strategies,
            LinkChaos::healthy(),
            MeshConfig::default(),
        );
        assert_eq!(chan.decisions, sim.decisions);
        assert_eq!(chan.views, sim.views);
        assert_eq!(chan.stats.chaos_signature(), sim.stats.chaos_signature());
    }

    #[test]
    fn tcp_matches_sim_healthy() {
        let inst = instance(4, 1, 1);
        let strategies = BTreeMap::new();
        let sim = run_sim(
            &inst,
            Val::Value(77),
            &strategies,
            LinkChaos::healthy(),
            None,
        );
        let tcp = run_tcp(
            &inst,
            Val::Value(77),
            &strategies,
            LinkChaos::healthy(),
            MeshConfig::default(),
        )
        .unwrap();
        assert_eq!(tcp.decisions, sim.decisions);
        assert_eq!(tcp.views, sim.views);
    }
}
