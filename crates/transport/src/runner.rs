//! Scenario drivers: one BYZ instance, any backend.
//!
//! The driver loop is identical everywhere — poll the transport, feed the
//! event to the node's [`NodeStateMachine`], perform the returned actions
//! — but the concurrency shape differs: [`run_sim`] multiplexes all `n`
//! endpoints on the calling thread (the shared event queue dictates the
//! order, so the sweep pattern is irrelevant), while [`run_channel`] and
//! [`run_tcp`] give every node its own OS thread and let real scheduling
//! happen. All three return a [`TransportRun`] carrying decisions, the
//! per-node EIG views (the reference fold's input, for re-deriving
//! decisions through `EigView::resolve`), and merged traffic stats — the
//! differential suite's raw material.

use crate::mesh::{channel_mesh, tcp_mesh, MeshConfig, MeshTransport};
use crate::sim::{RelaxedTiming, SimWorld};
use crate::{LinkChaos, PollOutcome, Transport, TransportKind, TransportStats};
use degradable::{ByzInstance, ByzMsg, EigView, NodeAction, NodeStateMachine, Strategy, Val};
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::thread;
use std::time::Duration;

/// Backend-independent run knobs (all off by default).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Arm every machine with certified-fault-set early stopping
    /// against the strategy key set (DESIGN.md §5h): relays below
    /// prunable paths are skipped and the saving is reported in the
    /// run's prune counters.
    pub early_stop: bool,
    /// Record a per-node [`LoggedEvent`] trace — the raw material for
    /// replaying a threaded mesh run through `SpecChecker` one node at
    /// a time.
    pub record_events: bool,
}

impl RunOptions {
    /// Options with early stopping armed.
    pub fn early_stop() -> Self {
        RunOptions {
            early_stop: true,
            ..RunOptions::default()
        }
    }
}

/// One entry of a node's event log: exactly what the machine saw and
/// what it emitted, in machine order. Sends are recorded as the machine
/// handed them to the transport — *before* any chaos disposition — so a
/// spec replay judges the node, not the network.
#[derive(Debug, Clone)]
pub enum LoggedEvent {
    /// An envelope was delivered to the machine.
    Deliver {
        /// Transport-authenticated source.
        src: NodeId,
        /// The envelope.
        msg: ByzMsg<u64>,
    },
    /// A round timeout closed on the machine.
    Close {
        /// The closed round.
        round: usize,
        /// Every send the close emitted, pre-chaos.
        sends: Vec<(NodeId, ByzMsg<u64>)>,
        /// The decision, if this close made one.
        decided: Option<Val>,
    },
}

/// What one node produced over one run.
#[derive(Debug, Clone)]
pub struct NodeOutcome {
    /// The node.
    pub node: NodeId,
    /// Its decision (`None` for the sender, which never decides).
    pub decision: Option<Val>,
    /// Its EIG receive view — the exact fold input.
    pub view: EigView<u64>,
    /// Traffic attributed to its endpoint.
    pub stats: TransportStats,
    /// Set when the endpoint's run degenerated into a clean error — every
    /// peer permanently gone after the reconnect budget (mesh backends
    /// only; always `None` on the simulator).
    pub failure: Option<String>,
    /// The node's event log (empty unless
    /// [`RunOptions::record_events`]).
    pub events: Vec<LoggedEvent>,
    /// Subtrees this node declined to relay below (zero unless
    /// [`RunOptions::early_stop`]).
    pub subtrees_pruned: u64,
    /// Sends this node skipped via early stopping (zero unless armed).
    pub messages_saved: u64,
}

/// The outcome of one scenario on one backend.
#[derive(Debug, Clone)]
pub struct TransportRun {
    /// Which backend produced it.
    pub kind: TransportKind,
    /// Every receiver's decision (the sender never decides).
    pub decisions: BTreeMap<NodeId, Val>,
    /// Every node's EIG view, for reference re-derivation.
    pub views: BTreeMap<NodeId, EigView<u64>>,
    /// Run-total traffic statistics.
    pub stats: TransportStats,
    /// Run-total subtrees pruned by early stopping.
    pub subtrees_pruned: u64,
    /// Run-total sends skipped by early stopping.
    pub messages_saved: u64,
    /// Per-node event logs (empty unless [`RunOptions::record_events`]).
    pub node_events: BTreeMap<NodeId, Vec<LoggedEvent>>,
}

impl TransportRun {
    fn assemble(kind: TransportKind, outcomes: Vec<NodeOutcome>) -> Self {
        let mut decisions = BTreeMap::new();
        let mut views = BTreeMap::new();
        let mut stats = TransportStats::default();
        let mut subtrees_pruned = 0;
        let mut messages_saved = 0;
        let mut node_events = BTreeMap::new();
        for o in outcomes {
            if let Some(d) = o.decision {
                decisions.insert(o.node, d);
            }
            views.insert(o.node, o.view);
            stats.merge(&o.stats);
            subtrees_pruned += o.subtrees_pruned;
            messages_saved += o.messages_saved;
            if !o.events.is_empty() {
                node_events.insert(o.node, o.events);
            }
        }
        TransportRun {
            kind,
            decisions,
            views,
            stats,
            subtrees_pruned,
            messages_saved,
            node_events,
        }
    }
}

fn machines_for(
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    options: RunOptions,
) -> Vec<NodeStateMachine<u64>> {
    let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
    NodeId::all(instance.n())
        .map(|me| {
            let machine =
                NodeStateMachine::new(instance, me, sender_value, strategies.get(&me).cloned());
            if options.early_stop {
                machine.with_early_stop(&faulty)
            } else {
                machine
            }
        })
        .collect()
}

/// Feeds `event`-produced actions back into the transport; returns the
/// decision if the machine made one. With a log attached, records the
/// delivery or the full close (round, pre-chaos sends, decision).
fn perform<T: Transport>(
    transport: &mut T,
    machine: &mut NodeStateMachine<u64>,
    event: degradable::NodeEvent<u64>,
    mut log: Option<&mut Vec<LoggedEvent>>,
) -> Option<Val> {
    let closing_round = match &event {
        degradable::NodeEvent::Timeout { round } => Some(*round),
        degradable::NodeEvent::Deliver { src, msg } => {
            if let Some(log) = log.as_deref_mut() {
                log.push(LoggedEvent::Deliver {
                    src: *src,
                    msg: msg.clone(),
                });
            }
            None
        }
    };
    let mut decision = None;
    let mut sends = Vec::new();
    for action in machine.on_event(event) {
        match action {
            NodeAction::Send { to, msg } => {
                if log.is_some() && closing_round.is_some() {
                    sends.push((to, msg.clone()));
                }
                transport.send(to, msg);
            }
            NodeAction::Decide { value } => decision = Some(value),
        }
    }
    if let (Some(round), Some(log)) = (closing_round, log) {
        log.push(LoggedEvent::Close {
            round,
            sends,
            decided: decision,
        });
    }
    decision
}

/// Runs the scenario on the deterministic simulator backend.
///
/// `relaxed` injects §6 clock skew (see [`RelaxedTiming::when_degraded`]);
/// `None` keeps absence detection exact. The result is bit-identical for
/// identical inputs, regardless of how the internal sweep is scheduled.
pub fn run_sim(
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    chaos: LinkChaos,
    relaxed: Option<RelaxedTiming>,
) -> TransportRun {
    run_sim_with(
        instance,
        sender_value,
        strategies,
        chaos,
        relaxed,
        RunOptions::default(),
    )
}

/// [`run_sim`] with explicit [`RunOptions`].
pub fn run_sim_with(
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    chaos: LinkChaos,
    relaxed: Option<RelaxedTiming>,
    options: RunOptions,
) -> TransportRun {
    let n = instance.n();
    let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
    let mut endpoints = SimWorld::endpoints(n, instance.depth(), chaos, relaxed, faulty);
    let mut machines = machines_for(instance, sender_value, strategies, options);
    let mut decisions: Vec<Option<Val>> = vec![None; n];
    let mut logs: Vec<Vec<LoggedEvent>> = vec![Vec::new(); n];
    loop {
        let mut all_closed = true;
        let mut progressed = false;
        for i in 0..n {
            loop {
                match endpoints[i].poll() {
                    PollOutcome::Event(event) => {
                        progressed = true;
                        all_closed = false;
                        if machines[i].is_done() {
                            // Defensive: the world never schedules past the
                            // final timer, so this is unreachable — but a
                            // stray event must not feed a finished machine.
                            continue;
                        }
                        let log = options.record_events.then_some(&mut logs[i]);
                        if let Some(d) = perform(&mut endpoints[i], &mut machines[i], event, log) {
                            decisions[i] = Some(d);
                        }
                    }
                    PollOutcome::Pending => {
                        all_closed = false;
                        break;
                    }
                    PollOutcome::Closed => break,
                }
            }
        }
        if all_closed {
            break;
        }
        assert!(progressed, "sim driver stalled with events pending");
    }
    let outcomes = machines
        .iter()
        .zip(&endpoints)
        .zip(std::mem::take(&mut logs))
        .enumerate()
        .map(|(i, ((m, t), events))| NodeOutcome {
            node: NodeId::new(i),
            decision: decisions[i],
            view: m.view().clone(),
            stats: t.stats(),
            failure: None,
            events,
            subtrees_pruned: m.subtrees_pruned(),
            messages_saved: m.messages_saved(),
        })
        .collect();
    TransportRun::assemble(TransportKind::Sim, outcomes)
}

/// Drives one mesh endpoint to completion on the current thread — the
/// loop `dagree serve` runs after [`crate::tcp_join`] hands it a joined
/// endpoint, and the per-node body of [`run_channel`]/[`run_tcp`].
pub fn drive_mesh(transport: MeshTransport, machine: NodeStateMachine<u64>) -> NodeOutcome {
    drive_mesh_with(transport, machine, false)
}

/// [`drive_mesh`] with an optional event log (see
/// [`RunOptions::record_events`]).
pub fn drive_mesh_with(
    mut transport: MeshTransport,
    mut machine: NodeStateMachine<u64>,
    record_events: bool,
) -> NodeOutcome {
    let mut decision = None;
    let mut events = Vec::new();
    loop {
        match transport.poll() {
            PollOutcome::Event(event) => {
                let log = record_events.then_some(&mut events);
                if let Some(d) = perform(&mut transport, &mut machine, event, log) {
                    decision = Some(d);
                }
            }
            PollOutcome::Pending => thread::sleep(Duration::from_micros(100)),
            PollOutcome::Closed => break,
        }
    }
    NodeOutcome {
        node: transport.me(),
        decision,
        view: machine.view().clone(),
        stats: transport.stats(),
        failure: transport.failure().map(str::to_owned),
        events,
        subtrees_pruned: machine.subtrees_pruned(),
        messages_saved: machine.messages_saved(),
    }
}

fn run_mesh(
    kind: TransportKind,
    mesh: Vec<MeshTransport>,
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    options: RunOptions,
) -> TransportRun {
    let machines = machines_for(instance, sender_value, strategies, options);
    let handles: Vec<_> = mesh
        .into_iter()
        .zip(machines)
        .map(|(t, m)| thread::spawn(move || drive_mesh_with(t, m, options.record_events)))
        .collect();
    let outcomes = handles
        .into_iter()
        .map(|h| h.join().expect("mesh node thread panicked"))
        .collect();
    TransportRun::assemble(kind, outcomes)
}

/// Runs the scenario with one OS thread per node over in-process channels.
pub fn run_channel(
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    chaos: LinkChaos,
    config: MeshConfig,
) -> TransportRun {
    run_channel_with(
        instance,
        sender_value,
        strategies,
        chaos,
        config,
        RunOptions::default(),
    )
}

/// [`run_channel`] with explicit [`RunOptions`].
pub fn run_channel_with(
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    chaos: LinkChaos,
    config: MeshConfig,
    options: RunOptions,
) -> TransportRun {
    let mesh = channel_mesh(instance.n(), instance.depth(), &chaos, config);
    run_mesh(
        TransportKind::Channel,
        mesh,
        instance,
        sender_value,
        strategies,
        options,
    )
}

/// Runs the scenario with one OS thread per node over loopback TCP.
pub fn run_tcp(
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    chaos: LinkChaos,
    config: MeshConfig,
) -> io::Result<TransportRun> {
    run_tcp_with(
        instance,
        sender_value,
        strategies,
        chaos,
        config,
        RunOptions::default(),
    )
}

/// [`run_tcp`] with explicit [`RunOptions`].
pub fn run_tcp_with(
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    chaos: LinkChaos,
    config: MeshConfig,
    options: RunOptions,
) -> io::Result<TransportRun> {
    let mesh = tcp_mesh(instance.n(), instance.depth(), &chaos, config)?;
    Ok(run_mesh(
        TransportKind::Tcp,
        mesh,
        instance,
        sender_value,
        strategies,
        options,
    ))
}

/// Runs the scenario on the backend selected by `kind` — the harness/CLI
/// entry point. Only the TCP backend can actually fail (socket setup).
pub fn run_kind(
    kind: TransportKind,
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    chaos: LinkChaos,
    config: MeshConfig,
) -> io::Result<TransportRun> {
    run_kind_with(
        kind,
        instance,
        sender_value,
        strategies,
        chaos,
        config,
        RunOptions::default(),
    )
}

/// [`run_kind`] with explicit [`RunOptions`].
pub fn run_kind_with(
    kind: TransportKind,
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    chaos: LinkChaos,
    config: MeshConfig,
    options: RunOptions,
) -> io::Result<TransportRun> {
    match kind {
        TransportKind::Sim => Ok(run_sim_with(
            instance,
            sender_value,
            strategies,
            chaos,
            None,
            options,
        )),
        TransportKind::Channel => Ok(run_channel_with(
            instance,
            sender_value,
            strategies,
            chaos,
            config,
            options,
        )),
        TransportKind::Tcp => {
            run_tcp_with(instance, sender_value, strategies, chaos, config, options)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use degradable::{run_protocol, Params};

    fn instance(n: usize, m: usize, u: usize) -> ByzInstance {
        ByzInstance::new(n, Params::new(m, u).unwrap(), NodeId::new(0)).unwrap()
    }

    #[test]
    fn sim_healthy_matches_run_protocol() {
        let inst = instance(5, 1, 2);
        let strategies = BTreeMap::new();
        let oracle = run_protocol(&inst, &Val::Value(42), &strategies, 7);
        let run = run_sim(
            &inst,
            Val::Value(42),
            &strategies,
            LinkChaos::healthy(),
            None,
        );
        assert_eq!(run.decisions, oracle.decisions);
        for d in run.decisions.values() {
            assert_eq!(*d, Val::Value(42));
        }
        assert!(
            !run.decisions.contains_key(&NodeId::new(0)),
            "sender never decides"
        );
        assert_eq!(run.stats.delivered, run.stats.sent);
    }

    #[test]
    fn sim_with_liars_matches_run_protocol() {
        let inst = instance(7, 2, 2);
        let strategies: BTreeMap<_, _> = [
            (NodeId::new(3), Strategy::ConstantLie(Val::Value(9))),
            (NodeId::new(5), Strategy::Silent),
        ]
        .into_iter()
        .collect();
        let oracle = run_protocol(&inst, &Val::Value(1), &strategies, 7);
        let run = run_sim(
            &inst,
            Val::Value(1),
            &strategies,
            LinkChaos::healthy(),
            None,
        );
        assert_eq!(run.decisions, oracle.decisions);
    }

    #[test]
    fn channel_matches_sim_healthy() {
        let inst = instance(5, 1, 2);
        let strategies: BTreeMap<_, _> = [(NodeId::new(4), Strategy::ConstantLie(Val::Value(3)))]
            .into_iter()
            .collect();
        let sim = run_sim(
            &inst,
            Val::Value(8),
            &strategies,
            LinkChaos::healthy(),
            None,
        );
        let chan = run_channel(
            &inst,
            Val::Value(8),
            &strategies,
            LinkChaos::healthy(),
            MeshConfig::default(),
        );
        assert_eq!(chan.decisions, sim.decisions);
        assert_eq!(chan.views, sim.views);
        assert_eq!(chan.stats.chaos_signature(), sim.stats.chaos_signature());
    }

    #[test]
    fn early_stop_saves_real_messages_on_every_backend() {
        // Fault-free BYZ(1,2): early stopping must leave decisions
        // untouched while genuinely shrinking the wire traffic, on the
        // simulator and on both threaded mesh backends.
        let inst = instance(5, 1, 2);
        let strategies = BTreeMap::new();
        let baseline = run_sim(
            &inst,
            Val::Value(42),
            &strategies,
            LinkChaos::healthy(),
            None,
        );
        let runs = [
            run_sim_with(
                &inst,
                Val::Value(42),
                &strategies,
                LinkChaos::healthy(),
                None,
                RunOptions::early_stop(),
            ),
            run_channel_with(
                &inst,
                Val::Value(42),
                &strategies,
                LinkChaos::healthy(),
                MeshConfig::default(),
                RunOptions::early_stop(),
            ),
            run_tcp_with(
                &inst,
                Val::Value(42),
                &strategies,
                LinkChaos::healthy(),
                MeshConfig::default(),
                RunOptions::early_stop(),
            )
            .unwrap(),
        ];
        for run in &runs {
            assert_eq!(run.decisions, baseline.decisions, "{:?}", run.kind);
            assert!(run.messages_saved > 0, "{:?} saved nothing", run.kind);
            assert!(run.subtrees_pruned > 0, "{:?} pruned nothing", run.kind);
            assert_eq!(
                run.stats.sent + run.messages_saved,
                baseline.stats.sent,
                "{:?}: every skipped send is accounted for",
                run.kind
            );
        }
    }

    #[test]
    fn early_stop_with_liars_matches_the_full_run() {
        // Non-empty certified fault sets: pruning fires only on paths
        // that already exhaust the set, and decisions always match the
        // full protocol. With two relay faults at depth 3 no
        // relay-eligible path can exhaust the set, so nothing prunes; a
        // faulty *sender* makes every level-2 path `[s, x]` prunable.
        let inst = instance(7, 2, 2);
        let two_liars: BTreeMap<_, _> = [
            (NodeId::new(3), Strategy::ConstantLie(Val::Value(9))),
            (NodeId::new(5), Strategy::Silent),
        ]
        .into_iter()
        .collect();
        let lying_sender: BTreeMap<_, _> = [(NodeId::new(0), Strategy::ConstantLie(Val::Value(9)))]
            .into_iter()
            .collect();
        for (strategies, prunes) in [(two_liars, false), (lying_sender, true)] {
            let oracle = run_protocol(&inst, &Val::Value(1), &strategies, 7);
            let run = run_sim_with(
                &inst,
                Val::Value(1),
                &strategies,
                LinkChaos::healthy(),
                None,
                RunOptions::early_stop(),
            );
            assert_eq!(run.decisions, oracle.decisions, "{strategies:?}");
            assert_eq!(
                run.messages_saved > 0,
                prunes,
                "pruning opportunity under {strategies:?}"
            );
        }
    }

    #[test]
    fn recorded_events_cover_every_round_close() {
        let inst = instance(4, 1, 1);
        let run = run_sim_with(
            &inst,
            Val::Value(3),
            &BTreeMap::new(),
            LinkChaos::healthy(),
            None,
            RunOptions {
                record_events: true,
                ..RunOptions::default()
            },
        );
        assert_eq!(run.node_events.len(), 4);
        for (node, events) in &run.node_events {
            let closes: Vec<usize> = events
                .iter()
                .filter_map(|e| match e {
                    LoggedEvent::Close { round, .. } => Some(*round),
                    LoggedEvent::Deliver { .. } => None,
                })
                .collect();
            assert_eq!(closes, vec![0, 1, 2], "node {node}");
        }
    }

    #[test]
    fn tcp_matches_sim_healthy() {
        let inst = instance(4, 1, 1);
        let strategies = BTreeMap::new();
        let sim = run_sim(
            &inst,
            Val::Value(77),
            &strategies,
            LinkChaos::healthy(),
            None,
        );
        let tcp = run_tcp(
            &inst,
            Val::Value(77),
            &strategies,
            LinkChaos::healthy(),
            MeshConfig::default(),
        )
        .unwrap();
        assert_eq!(tcp.decisions, sim.decisions);
        assert_eq!(tcp.views, sim.views);
    }
}
