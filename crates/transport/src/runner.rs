//! Scenario drivers: one BYZ instance, any backend.
//!
//! The driver loop is identical everywhere — poll the transport, feed the
//! event to the node's [`NodeStateMachine`], perform the returned actions
//! — but the concurrency shape differs: [`run_sim`] multiplexes all `n`
//! endpoints on the calling thread (the shared event queue dictates the
//! order, so the sweep pattern is irrelevant), while [`run_channel`] and
//! [`run_tcp`] give every node its own OS thread and let real scheduling
//! happen. All three return a [`TransportRun`] carrying decisions, the
//! per-node EIG views (the reference fold's input, for re-deriving
//! decisions through `EigView::resolve`), and merged traffic stats — the
//! differential suite's raw material.

use crate::mesh::{channel_mesh, tcp_mesh, MeshConfig, MeshTransport};
use crate::sim::{RelaxedTiming, SimWorld};
use crate::{LinkChaos, PollOutcome, Transport, TransportKind, TransportStats};
use degradable::{
    AgreementValue, ByzInstance, ByzMsg, EigView, NodeAction, NodeStateMachine, Strategy, Val,
};
use obs::{Obs, SpanRecord, TraceCtx};
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Write};
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

/// Backend-independent run knobs (all off by default).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Arm every machine with certified-fault-set early stopping
    /// against the strategy key set (DESIGN.md §5h): relays below
    /// prunable paths are skipped and the saving is reported in the
    /// run's prune counters.
    pub early_stop: bool,
    /// Record a per-node [`LoggedEvent`] trace — the raw material for
    /// replaying a threaded mesh run through `SpecChecker` one node at
    /// a time.
    pub record_events: bool,
    /// Stamp every outgoing envelope with a causal [`TraceCtx`] and
    /// record `trace.*` spans (send, deliver, close, decide) per node.
    /// Spans carry a monotone per-node logical clock, so the merged
    /// trace is deterministic across backends, worker counts, and
    /// reruns in the logical dimension.
    pub trace: bool,
}

impl RunOptions {
    /// Options with early stopping armed.
    pub fn early_stop() -> Self {
        RunOptions {
            early_stop: true,
            ..RunOptions::default()
        }
    }

    /// Options with causal tracing armed.
    pub fn traced() -> Self {
        RunOptions {
            trace: true,
            ..RunOptions::default()
        }
    }
}

/// Per-node causal trace recorder behind [`RunOptions::trace`].
///
/// Every protocol-visible event on the node gets a point span —
/// `trace.send` (with the stamped context and destination),
/// `trace.deliver` (with the carried context, if the backend delivered
/// one), `trace.close` (round barrier) and `trace.decide` — whose
/// `logical` field is a monotone per-node event counter. Wall time is
/// deliberately zero: these are point events in logical time, and the
/// causal chain (`TraceCtx::is_parent_of`) plus the per-node clock is
/// what the critical-path reconstruction consumes.
#[derive(Debug)]
pub struct NodeTracer {
    obs: Obs,
    instance: u64,
    node: NodeId,
    clock: u64,
}

impl NodeTracer {
    /// A tracer for `node`, recording under agreement instance id
    /// `instance`. Every span carries a `node` attribute, so merged
    /// multi-node traces stay attributable.
    pub fn new(instance: u64, node: NodeId) -> Self {
        NodeTracer {
            obs: Obs::enabled(),
            instance,
            node,
            clock: 0,
        }
    }

    /// A tracer retaining at most `capacity` spans (see
    /// [`Obs::enabled_bounded`]); drops stay detectable through the
    /// `obs.dropped_spans` counter.
    pub fn bounded(instance: u64, node: NodeId, capacity: usize) -> Self {
        NodeTracer {
            obs: Obs::enabled_bounded(capacity),
            instance,
            node,
            clock: 0,
        }
    }

    /// The context this node stamps on an outgoing envelope.
    pub fn ctx_for(&self, msg: &ByzMsg<u64>) -> TraceCtx {
        TraceCtx::new(
            self.instance,
            msg.path
                .as_slice()
                .iter()
                .map(|id| id.index() as u64)
                .collect(),
        )
    }

    fn record(&mut self, name: &'static str, mut args: Vec<(String, u64)>) {
        self.clock += 1;
        args.push(("node".to_string(), self.node.index() as u64));
        self.obs.record_span(SpanRecord {
            name: name.to_string(),
            args,
            logical: self.clock,
            wall_nanos: 0,
        });
    }

    fn record_send(&mut self, to: NodeId, ctx: &TraceCtx) {
        let mut args = ctx.span_args();
        args.push(("to".to_string(), to.index() as u64));
        self.record("trace.send", args);
        self.obs.add("trace.sends", 1);
    }

    fn record_deliver(&mut self, src: NodeId, ctx: Option<TraceCtx>) {
        let mut args = match &ctx {
            Some(ctx) => ctx.span_args(),
            None => Vec::new(),
        };
        args.push(("src".to_string(), src.index() as u64));
        self.record("trace.deliver", args);
        self.obs.add("trace.delivers", 1);
        if ctx.is_none() {
            // Either the sender ran untraced or the wire trace section
            // was malformed and degraded — both are worth counting.
            self.obs.add("trace.delivers_untraced", 1);
        }
    }

    fn record_close(&mut self, round: usize) {
        self.record("trace.close", vec![("round".to_string(), round as u64)]);
    }

    fn record_decide(&mut self, value: &Val) {
        let args = match value {
            AgreementValue::Value(v) => vec![
                ("instance".to_string(), self.instance),
                ("value".to_string(), *v),
            ],
            AgreementValue::Default => vec![
                ("instance".to_string(), self.instance),
                ("is_default".to_string(), 1),
            ],
        };
        self.record("trace.decide", args);
        self.obs.add("trace.decides", 1);
    }

    /// Consumes the tracer, yielding the recorded spans and counters.
    pub fn into_obs(self) -> Obs {
        self.obs
    }
}

/// One entry of a node's event log: exactly what the machine saw and
/// what it emitted, in machine order. Sends are recorded as the machine
/// handed them to the transport — *before* any chaos disposition — so a
/// spec replay judges the node, not the network.
#[derive(Debug, Clone)]
pub enum LoggedEvent {
    /// An envelope was delivered to the machine.
    Deliver {
        /// Transport-authenticated source.
        src: NodeId,
        /// The envelope.
        msg: ByzMsg<u64>,
    },
    /// A round timeout closed on the machine.
    Close {
        /// The closed round.
        round: usize,
        /// Every send the close emitted, pre-chaos.
        sends: Vec<(NodeId, ByzMsg<u64>)>,
        /// The decision, if this close made one.
        decided: Option<Val>,
    },
}

/// What one node produced over one run.
#[derive(Debug, Clone)]
pub struct NodeOutcome {
    /// The node.
    pub node: NodeId,
    /// Its decision (`None` for the sender, which never decides).
    pub decision: Option<Val>,
    /// Its EIG receive view — the exact fold input.
    pub view: EigView<u64>,
    /// Traffic attributed to its endpoint.
    pub stats: TransportStats,
    /// Set when the endpoint's run degenerated into a clean error — every
    /// peer permanently gone after the reconnect budget (mesh backends
    /// only; always `None` on the simulator).
    pub failure: Option<String>,
    /// The node's event log (empty unless
    /// [`RunOptions::record_events`]).
    pub events: Vec<LoggedEvent>,
    /// Subtrees this node declined to relay below (zero unless
    /// [`RunOptions::early_stop`]).
    pub subtrees_pruned: u64,
    /// Sends this node skipped via early stopping (zero unless armed).
    pub messages_saved: u64,
    /// The node's trace recorder output (disabled unless
    /// [`RunOptions::trace`]).
    pub obs: Obs,
}

/// The outcome of one scenario on one backend.
#[derive(Debug, Clone)]
pub struct TransportRun {
    /// Which backend produced it.
    pub kind: TransportKind,
    /// Every receiver's decision (the sender never decides).
    pub decisions: BTreeMap<NodeId, Val>,
    /// Every node's EIG view, for reference re-derivation.
    pub views: BTreeMap<NodeId, EigView<u64>>,
    /// Run-total traffic statistics.
    pub stats: TransportStats,
    /// Run-total subtrees pruned by early stopping.
    pub subtrees_pruned: u64,
    /// Run-total sends skipped by early stopping.
    pub messages_saved: u64,
    /// Per-node event logs (empty unless [`RunOptions::record_events`]).
    pub node_events: BTreeMap<NodeId, Vec<LoggedEvent>>,
    /// All nodes' trace recorders merged in node order (disabled unless
    /// [`RunOptions::trace`]); the deterministic input for critical-path
    /// reconstruction and the SLO layer.
    pub obs: Obs,
}

impl TransportRun {
    fn assemble(kind: TransportKind, outcomes: Vec<NodeOutcome>) -> Self {
        let mut decisions = BTreeMap::new();
        let mut views = BTreeMap::new();
        let mut stats = TransportStats::default();
        let mut subtrees_pruned = 0;
        let mut messages_saved = 0;
        let mut node_events = BTreeMap::new();
        let mut obs = if outcomes.iter().any(|o| o.obs.is_enabled()) {
            Obs::enabled()
        } else {
            Obs::disabled()
        };
        for o in outcomes {
            if let Some(d) = o.decision {
                decisions.insert(o.node, d);
            }
            views.insert(o.node, o.view);
            stats.merge(&o.stats);
            subtrees_pruned += o.subtrees_pruned;
            messages_saved += o.messages_saved;
            obs.merge(&o.obs);
            if !o.events.is_empty() {
                node_events.insert(o.node, o.events);
            }
        }
        TransportRun {
            kind,
            decisions,
            views,
            stats,
            subtrees_pruned,
            messages_saved,
            node_events,
            obs,
        }
    }
}

fn machines_for(
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    options: RunOptions,
) -> Vec<NodeStateMachine<u64>> {
    let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
    NodeId::all(instance.n())
        .map(|me| {
            let machine =
                NodeStateMachine::new(instance, me, sender_value, strategies.get(&me).cloned());
            if options.early_stop {
                machine.with_early_stop(&faulty)
            } else {
                machine
            }
        })
        .collect()
}

/// Feeds `event`-produced actions back into the transport; returns the
/// decision if the machine made one. With a log attached, records the
/// delivery or the full close (round, pre-chaos sends, decision). With a
/// tracer attached, stamps every send with its causal context and
/// records the node's `trace.*` spans.
fn perform<T: Transport>(
    transport: &mut T,
    machine: &mut NodeStateMachine<u64>,
    event: degradable::NodeEvent<u64>,
    mut log: Option<&mut Vec<LoggedEvent>>,
    mut tracer: Option<&mut NodeTracer>,
) -> Option<Val> {
    let closing_round = match &event {
        degradable::NodeEvent::Timeout { round } => {
            if let Some(t) = tracer.as_deref_mut() {
                t.record_close(*round);
            }
            Some(*round)
        }
        degradable::NodeEvent::Deliver { src, msg } => {
            if let Some(t) = tracer.as_deref_mut() {
                // `last_trace` is the context of the delivery `poll`
                // just surfaced — exactly this event.
                t.record_deliver(*src, transport.last_trace());
            }
            if let Some(log) = log.as_deref_mut() {
                log.push(LoggedEvent::Deliver {
                    src: *src,
                    msg: msg.clone(),
                });
            }
            None
        }
    };
    let mut decision = None;
    let mut sends = Vec::new();
    for action in machine.on_event(event) {
        match action {
            NodeAction::Send { to, msg } => {
                if log.is_some() && closing_round.is_some() {
                    sends.push((to, msg.clone()));
                }
                match tracer.as_deref_mut() {
                    Some(t) => {
                        let ctx = t.ctx_for(&msg);
                        t.record_send(to, &ctx);
                        transport.send_traced(to, msg, Some(ctx));
                    }
                    None => transport.send(to, msg),
                }
            }
            NodeAction::Decide { value } => {
                if let Some(t) = tracer.as_deref_mut() {
                    t.record_decide(&value);
                }
                decision = Some(value);
            }
        }
    }
    if let (Some(round), Some(log)) = (closing_round, log) {
        log.push(LoggedEvent::Close {
            round,
            sends,
            decided: decision,
        });
    }
    decision
}

/// Runs the scenario on the deterministic simulator backend.
///
/// `relaxed` injects §6 clock skew (see [`RelaxedTiming::when_degraded`]);
/// `None` keeps absence detection exact. The result is bit-identical for
/// identical inputs, regardless of how the internal sweep is scheduled.
pub fn run_sim(
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    chaos: LinkChaos,
    relaxed: Option<RelaxedTiming>,
) -> TransportRun {
    run_sim_with(
        instance,
        sender_value,
        strategies,
        chaos,
        relaxed,
        RunOptions::default(),
    )
}

/// [`run_sim`] with explicit [`RunOptions`].
pub fn run_sim_with(
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    chaos: LinkChaos,
    relaxed: Option<RelaxedTiming>,
    options: RunOptions,
) -> TransportRun {
    let n = instance.n();
    let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
    let mut endpoints = SimWorld::endpoints(n, instance.depth(), chaos, relaxed, faulty);
    let mut machines = machines_for(instance, sender_value, strategies, options);
    let mut decisions: Vec<Option<Val>> = vec![None; n];
    let mut logs: Vec<Vec<LoggedEvent>> = vec![Vec::new(); n];
    let mut tracers: Vec<Option<NodeTracer>> = (0..n)
        .map(|i| options.trace.then(|| NodeTracer::new(0, NodeId::new(i))))
        .collect();
    loop {
        let mut all_closed = true;
        let mut progressed = false;
        for i in 0..n {
            loop {
                match endpoints[i].poll() {
                    PollOutcome::Event(event) => {
                        progressed = true;
                        all_closed = false;
                        if machines[i].is_done() {
                            // Defensive: the world never schedules past the
                            // final timer, so this is unreachable — but a
                            // stray event must not feed a finished machine.
                            continue;
                        }
                        let log = options.record_events.then_some(&mut logs[i]);
                        if let Some(d) = perform(
                            &mut endpoints[i],
                            &mut machines[i],
                            event,
                            log,
                            tracers[i].as_mut(),
                        ) {
                            decisions[i] = Some(d);
                        }
                    }
                    PollOutcome::Pending => {
                        all_closed = false;
                        break;
                    }
                    PollOutcome::Closed => break,
                }
            }
        }
        if all_closed {
            break;
        }
        assert!(progressed, "sim driver stalled with events pending");
    }
    let outcomes = machines
        .iter()
        .zip(&endpoints)
        .zip(std::mem::take(&mut logs))
        .zip(std::mem::take(&mut tracers))
        .enumerate()
        .map(|(i, (((m, t), events), tracer))| NodeOutcome {
            node: NodeId::new(i),
            decision: decisions[i],
            view: m.view().clone(),
            stats: t.stats(),
            failure: None,
            events,
            subtrees_pruned: m.subtrees_pruned(),
            messages_saved: m.messages_saved(),
            obs: tracer.map_or_else(Obs::disabled, NodeTracer::into_obs),
        })
        .collect();
    TransportRun::assemble(TransportKind::Sim, outcomes)
}

/// Knobs for [`drive_mesh_opts`] — one mesh endpoint's driver loop, as
/// used per node by [`run_channel`]/[`run_tcp`] and standalone by
/// `dagree serve`.
#[derive(Debug, Clone, Default)]
pub struct MeshDriveOptions {
    /// Record a per-node [`LoggedEvent`] log.
    pub record_events: bool,
    /// Stamp sends with a [`TraceCtx`] and record `trace.*` spans.
    pub trace: bool,
    /// Agreement instance id stamped into contexts (0 outside batches).
    pub instance: u64,
    /// Append a JSONL registry snapshot to this file at every round
    /// close — the `dagree serve --metrics-out` live-metrics hook. Each
    /// line is `{"node":i,"round":r,"registry":{...}}`. Write failures
    /// disable the sink with a stderr warning, never kill the run:
    /// metrics are observability, not protocol.
    pub metrics_out: Option<PathBuf>,
}

/// Drives one mesh endpoint to completion on the current thread — the
/// loop `dagree serve` runs after [`crate::tcp_join`] hands it a joined
/// endpoint, and the per-node body of [`run_channel`]/[`run_tcp`].
pub fn drive_mesh(transport: MeshTransport, machine: NodeStateMachine<u64>) -> NodeOutcome {
    drive_mesh_opts(transport, machine, &MeshDriveOptions::default())
}

/// [`drive_mesh`] with an optional event log (see
/// [`RunOptions::record_events`]).
pub fn drive_mesh_with(
    transport: MeshTransport,
    machine: NodeStateMachine<u64>,
    record_events: bool,
) -> NodeOutcome {
    drive_mesh_opts(
        transport,
        machine,
        &MeshDriveOptions {
            record_events,
            ..MeshDriveOptions::default()
        },
    )
}

/// [`drive_mesh`] with the full option set.
pub fn drive_mesh_opts(
    mut transport: MeshTransport,
    mut machine: NodeStateMachine<u64>,
    options: &MeshDriveOptions,
) -> NodeOutcome {
    let me = transport.me();
    let mut decision = None;
    let mut events = Vec::new();
    let mut tracer = options.trace.then(|| NodeTracer::new(options.instance, me));
    let mut sink = options.metrics_out.as_ref().and_then(|path| {
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            Ok(f) => Some(f),
            Err(e) => {
                eprintln!("metrics-out: cannot open {}: {e}", path.display());
                None
            }
        }
    });
    loop {
        match transport.poll() {
            PollOutcome::Event(event) => {
                let closed_round = match &event {
                    degradable::NodeEvent::Timeout { round } => Some(*round),
                    degradable::NodeEvent::Deliver { .. } => None,
                };
                let log = options.record_events.then_some(&mut events);
                if let Some(d) = perform(&mut transport, &mut machine, event, log, tracer.as_mut())
                {
                    decision = Some(d);
                }
                if let (Some(round), Some(f)) = (closed_round, sink.as_mut()) {
                    if let Err(e) = write_metrics_line(f, me, round, tracer.as_ref(), &transport) {
                        eprintln!("metrics-out: write failed, disabling: {e}");
                        sink = None;
                    }
                }
            }
            PollOutcome::Pending => thread::sleep(Duration::from_micros(100)),
            PollOutcome::Closed => break,
        }
    }
    NodeOutcome {
        node: me,
        decision,
        view: machine.view().clone(),
        stats: transport.stats(),
        failure: transport.failure().map(str::to_owned),
        events,
        subtrees_pruned: machine.subtrees_pruned(),
        messages_saved: machine.messages_saved(),
        obs: tracer.map_or_else(Obs::disabled, NodeTracer::into_obs),
    }
}

/// One live-metrics JSONL line: the node's trace registry (when tracing)
/// plus transport traffic counters, stamped with node and round.
fn write_metrics_line(
    f: &mut std::fs::File,
    me: NodeId,
    round: usize,
    tracer: Option<&NodeTracer>,
    transport: &MeshTransport,
) -> io::Result<()> {
    let mut registry = tracer.map_or_else(obs::Registry::new, |t| t.obs.registry().clone());
    let stats = transport.stats();
    registry.set_counter("net.sent", stats.sent);
    registry.set_counter("net.delivered", stats.delivered);
    registry.set_counter("net.dropped", stats.dropped());
    registry.set_counter("net.false_timeouts", stats.false_timeouts);
    let line = obs::JsonValue::Object(vec![
        ("node".into(), (me.index() as u64).into()),
        ("round".into(), (round as u64).into()),
        ("registry".into(), registry.to_json()),
    ]);
    writeln!(f, "{}", line.to_json_string())
}

fn run_mesh(
    kind: TransportKind,
    mesh: Vec<MeshTransport>,
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    options: RunOptions,
) -> TransportRun {
    let machines = machines_for(instance, sender_value, strategies, options);
    let drive = MeshDriveOptions {
        record_events: options.record_events,
        trace: options.trace,
        ..MeshDriveOptions::default()
    };
    let handles: Vec<_> = mesh
        .into_iter()
        .zip(machines)
        .map(|(t, m)| {
            let drive = drive.clone();
            thread::spawn(move || drive_mesh_opts(t, m, &drive))
        })
        .collect();
    let outcomes = handles
        .into_iter()
        .map(|h| h.join().expect("mesh node thread panicked"))
        .collect();
    TransportRun::assemble(kind, outcomes)
}

/// Runs the scenario with one OS thread per node over in-process channels.
pub fn run_channel(
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    chaos: LinkChaos,
    config: MeshConfig,
) -> TransportRun {
    run_channel_with(
        instance,
        sender_value,
        strategies,
        chaos,
        config,
        RunOptions::default(),
    )
}

/// [`run_channel`] with explicit [`RunOptions`].
pub fn run_channel_with(
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    chaos: LinkChaos,
    config: MeshConfig,
    options: RunOptions,
) -> TransportRun {
    let mesh = channel_mesh(instance.n(), instance.depth(), &chaos, config);
    run_mesh(
        TransportKind::Channel,
        mesh,
        instance,
        sender_value,
        strategies,
        options,
    )
}

/// Runs the scenario with one OS thread per node over loopback TCP.
pub fn run_tcp(
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    chaos: LinkChaos,
    config: MeshConfig,
) -> io::Result<TransportRun> {
    run_tcp_with(
        instance,
        sender_value,
        strategies,
        chaos,
        config,
        RunOptions::default(),
    )
}

/// [`run_tcp`] with explicit [`RunOptions`].
pub fn run_tcp_with(
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    chaos: LinkChaos,
    config: MeshConfig,
    options: RunOptions,
) -> io::Result<TransportRun> {
    let mesh = tcp_mesh(instance.n(), instance.depth(), &chaos, config)?;
    Ok(run_mesh(
        TransportKind::Tcp,
        mesh,
        instance,
        sender_value,
        strategies,
        options,
    ))
}

/// Runs the scenario on the backend selected by `kind` — the harness/CLI
/// entry point. Only the TCP backend can actually fail (socket setup).
pub fn run_kind(
    kind: TransportKind,
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    chaos: LinkChaos,
    config: MeshConfig,
) -> io::Result<TransportRun> {
    run_kind_with(
        kind,
        instance,
        sender_value,
        strategies,
        chaos,
        config,
        RunOptions::default(),
    )
}

/// [`run_kind`] with explicit [`RunOptions`].
pub fn run_kind_with(
    kind: TransportKind,
    instance: &ByzInstance,
    sender_value: Val,
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    chaos: LinkChaos,
    config: MeshConfig,
    options: RunOptions,
) -> io::Result<TransportRun> {
    match kind {
        TransportKind::Sim => Ok(run_sim_with(
            instance,
            sender_value,
            strategies,
            chaos,
            None,
            options,
        )),
        TransportKind::Channel => Ok(run_channel_with(
            instance,
            sender_value,
            strategies,
            chaos,
            config,
            options,
        )),
        TransportKind::Tcp => {
            run_tcp_with(instance, sender_value, strategies, chaos, config, options)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use degradable::{run_protocol, Params};

    fn instance(n: usize, m: usize, u: usize) -> ByzInstance {
        ByzInstance::new(n, Params::new(m, u).unwrap(), NodeId::new(0)).unwrap()
    }

    #[test]
    fn sim_healthy_matches_run_protocol() {
        let inst = instance(5, 1, 2);
        let strategies = BTreeMap::new();
        let oracle = run_protocol(&inst, &Val::Value(42), &strategies, 7);
        let run = run_sim(
            &inst,
            Val::Value(42),
            &strategies,
            LinkChaos::healthy(),
            None,
        );
        assert_eq!(run.decisions, oracle.decisions);
        for d in run.decisions.values() {
            assert_eq!(*d, Val::Value(42));
        }
        assert!(
            !run.decisions.contains_key(&NodeId::new(0)),
            "sender never decides"
        );
        assert_eq!(run.stats.delivered, run.stats.sent);
    }

    #[test]
    fn sim_with_liars_matches_run_protocol() {
        let inst = instance(7, 2, 2);
        let strategies: BTreeMap<_, _> = [
            (NodeId::new(3), Strategy::ConstantLie(Val::Value(9))),
            (NodeId::new(5), Strategy::Silent),
        ]
        .into_iter()
        .collect();
        let oracle = run_protocol(&inst, &Val::Value(1), &strategies, 7);
        let run = run_sim(
            &inst,
            Val::Value(1),
            &strategies,
            LinkChaos::healthy(),
            None,
        );
        assert_eq!(run.decisions, oracle.decisions);
    }

    #[test]
    fn channel_matches_sim_healthy() {
        let inst = instance(5, 1, 2);
        let strategies: BTreeMap<_, _> = [(NodeId::new(4), Strategy::ConstantLie(Val::Value(3)))]
            .into_iter()
            .collect();
        let sim = run_sim(
            &inst,
            Val::Value(8),
            &strategies,
            LinkChaos::healthy(),
            None,
        );
        let chan = run_channel(
            &inst,
            Val::Value(8),
            &strategies,
            LinkChaos::healthy(),
            MeshConfig::default(),
        );
        assert_eq!(chan.decisions, sim.decisions);
        assert_eq!(chan.views, sim.views);
        assert_eq!(chan.stats.chaos_signature(), sim.stats.chaos_signature());
    }

    #[test]
    fn early_stop_saves_real_messages_on_every_backend() {
        // Fault-free BYZ(1,2): early stopping must leave decisions
        // untouched while genuinely shrinking the wire traffic, on the
        // simulator and on both threaded mesh backends.
        let inst = instance(5, 1, 2);
        let strategies = BTreeMap::new();
        let baseline = run_sim(
            &inst,
            Val::Value(42),
            &strategies,
            LinkChaos::healthy(),
            None,
        );
        let runs = [
            run_sim_with(
                &inst,
                Val::Value(42),
                &strategies,
                LinkChaos::healthy(),
                None,
                RunOptions::early_stop(),
            ),
            run_channel_with(
                &inst,
                Val::Value(42),
                &strategies,
                LinkChaos::healthy(),
                MeshConfig::default(),
                RunOptions::early_stop(),
            ),
            run_tcp_with(
                &inst,
                Val::Value(42),
                &strategies,
                LinkChaos::healthy(),
                MeshConfig::default(),
                RunOptions::early_stop(),
            )
            .unwrap(),
        ];
        for run in &runs {
            assert_eq!(run.decisions, baseline.decisions, "{:?}", run.kind);
            assert!(run.messages_saved > 0, "{:?} saved nothing", run.kind);
            assert!(run.subtrees_pruned > 0, "{:?} pruned nothing", run.kind);
            assert_eq!(
                run.stats.sent + run.messages_saved,
                baseline.stats.sent,
                "{:?}: every skipped send is accounted for",
                run.kind
            );
        }
    }

    #[test]
    fn early_stop_with_liars_matches_the_full_run() {
        // Non-empty certified fault sets: pruning fires only on paths
        // that already exhaust the set, and decisions always match the
        // full protocol. With two relay faults at depth 3 no
        // relay-eligible path can exhaust the set, so nothing prunes; a
        // faulty *sender* makes every level-2 path `[s, x]` prunable.
        let inst = instance(7, 2, 2);
        let two_liars: BTreeMap<_, _> = [
            (NodeId::new(3), Strategy::ConstantLie(Val::Value(9))),
            (NodeId::new(5), Strategy::Silent),
        ]
        .into_iter()
        .collect();
        let lying_sender: BTreeMap<_, _> = [(NodeId::new(0), Strategy::ConstantLie(Val::Value(9)))]
            .into_iter()
            .collect();
        for (strategies, prunes) in [(two_liars, false), (lying_sender, true)] {
            let oracle = run_protocol(&inst, &Val::Value(1), &strategies, 7);
            let run = run_sim_with(
                &inst,
                Val::Value(1),
                &strategies,
                LinkChaos::healthy(),
                None,
                RunOptions::early_stop(),
            );
            assert_eq!(run.decisions, oracle.decisions, "{strategies:?}");
            assert_eq!(
                run.messages_saved > 0,
                prunes,
                "pruning opportunity under {strategies:?}"
            );
        }
    }

    #[test]
    fn recorded_events_cover_every_round_close() {
        let inst = instance(4, 1, 1);
        let run = run_sim_with(
            &inst,
            Val::Value(3),
            &BTreeMap::new(),
            LinkChaos::healthy(),
            None,
            RunOptions {
                record_events: true,
                ..RunOptions::default()
            },
        );
        assert_eq!(run.node_events.len(), 4);
        for (node, events) in &run.node_events {
            let closes: Vec<usize> = events
                .iter()
                .filter_map(|e| match e {
                    LoggedEvent::Close { round, .. } => Some(*round),
                    LoggedEvent::Deliver { .. } => None,
                })
                .collect();
            assert_eq!(closes, vec![0, 1, 2], "node {node}");
        }
    }

    #[test]
    fn traced_sim_run_records_a_complete_deterministic_chain() {
        let inst = instance(4, 1, 1);
        let run = |_| {
            run_sim_with(
                &inst,
                Val::Value(9),
                &BTreeMap::new(),
                LinkChaos::healthy(),
                None,
                RunOptions::traced(),
            )
        };
        let a = run(());
        let b = run(());
        assert!(a.obs.is_enabled());
        // Bit-stable: same scenario, same trace, logical dimension and all.
        assert_eq!(a.obs, b.obs);
        let reg = a.obs.registry();
        assert_eq!(reg.counter("trace.sends"), a.stats.sent);
        assert_eq!(reg.counter("trace.delivers"), a.stats.delivered);
        // Every traced delivery carried its context on this backend.
        assert_eq!(reg.counter("trace.delivers_untraced"), 0);
        assert_eq!(reg.counter("trace.decides"), 3);
        // Every delivery span parses back to a context that chains from
        // some send span's context (send happens-before deliver).
        let sends: Vec<TraceCtx> = a
            .obs
            .spans()
            .iter()
            .filter(|s| s.name == "trace.send")
            .filter_map(|s| TraceCtx::from_span_args(&s.args))
            .collect();
        let delivers: Vec<TraceCtx> = a
            .obs
            .spans()
            .iter()
            .filter(|s| s.name == "trace.deliver")
            .filter_map(|s| TraceCtx::from_span_args(&s.args))
            .collect();
        assert_eq!(delivers.len() as u64, a.stats.delivered);
        for d in &delivers {
            assert!(
                sends.contains(d),
                "delivered context {d} was never stamped on a send"
            );
        }
    }

    #[test]
    fn traced_runs_decide_identically_on_every_backend() {
        let inst = instance(5, 1, 2);
        let strategies: BTreeMap<_, _> = [(NodeId::new(2), Strategy::ConstantLie(Val::Value(6)))]
            .into_iter()
            .collect();
        let baseline = run_sim(
            &inst,
            Val::Value(4),
            &strategies,
            LinkChaos::healthy(),
            None,
        );
        for kind in TransportKind::ALL {
            let run = run_kind_with(
                kind,
                &inst,
                Val::Value(4),
                &strategies,
                LinkChaos::healthy(),
                MeshConfig::default(),
                RunOptions::traced(),
            )
            .unwrap();
            assert_eq!(run.decisions, baseline.decisions, "{kind}");
            let reg = run.obs.registry();
            assert_eq!(reg.counter("trace.sends"), run.stats.sent, "{kind}");
            assert_eq!(reg.counter("trace.delivers"), run.stats.delivered, "{kind}");
            // Meshes carry the context through frames (channel:
            // in-memory, TCP: the 0x03 wire tag); nothing arrives
            // untraced on a healthy network.
            assert_eq!(reg.counter("trace.delivers_untraced"), 0, "{kind}");
        }
    }

    #[test]
    fn tcp_matches_sim_healthy() {
        let inst = instance(4, 1, 1);
        let strategies = BTreeMap::new();
        let sim = run_sim(
            &inst,
            Val::Value(77),
            &strategies,
            LinkChaos::healthy(),
            None,
        );
        let tcp = run_tcp(
            &inst,
            Val::Value(77),
            &strategies,
            LinkChaos::healthy(),
            MeshConfig::default(),
        )
        .unwrap();
        assert_eq!(tcp.decisions, sim.decisions);
        assert_eq!(tcp.views, sim.views);
    }
}
