//! Real-concurrency backends: one OS thread per node, over in-process
//! channels or loopback TCP.
//!
//! Both share [`MeshTransport`], which implements the paper's
//! message-absence detection (assumption (b)) with a **round-barrier
//! protocol** over [`Frame`]s:
//!
//! 1. the first `poll` opens round 0 with a `Timeout { 0 }` event;
//! 2. after the driver has dispatched the machine's sends for round `r`,
//!    the next `poll` broadcasts `Mark(r)` — FIFO links guarantee every
//!    round-`r` envelope precedes it;
//! 3. a node closes round `r` (emits `Timeout { r + 1 }`) once it holds
//!    `Mark(r)` from all `n − 1` peers **or** its wall-clock deadline
//!    expires. The deadline path is real, possibly-false absence detection:
//!    a live-but-slow peer is declared silent, exactly the failure mode
//!    §6 tolerates beyond `m` faults.
//!
//! Marks bypass the chaos layer: they are absence-detection
//! *infrastructure* (the stand-in for the paper's synchronized clocks),
//! not protocol messages, so a fault plan perturbs what BYZ says, never
//! the round structure itself.
//!
//! Chaos is evaluated twice, by the same pure function
//! ([`LinkChaos::disposition`]): the sender drops doomed envelopes and
//! emits duplicates; the receiver recomputes the verdict to learn the
//! reorder delay and *gates* the envelope until its effective round —
//! an envelope of round `s` delayed `d` rounds is handed to the machine
//! during round `s + d`, folding at the close of round `s + d + 1` as a
//! late direct observation, exactly as on the simulator backend. The
//! gate also holds back genuinely early traffic from peers that are a
//! round ahead, which the state machine would otherwise discard as
//! coming from the future.

use crate::chaos::LinkChaos;
use crate::frame::{self, Frame, MAX_FRAME_LEN};
use crate::{Disposition, DropCause, PollOutcome, Transport, TransportStats};
use degradable::{ByzMsg, NodeEvent};
use obs::TraceCtx;
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs for a mesh run.
#[derive(Debug, Clone, Copy)]
pub struct MeshConfig {
    /// Wall-clock budget per round before absent peers are timed out.
    /// Generous by default so healthy runs are mark-driven (deterministic);
    /// shorten it to exercise real (possibly false) absence detection.
    pub round_timeout: Duration,
    /// How long `tcp` setup keeps retrying dials to peers that have not
    /// bound their listener yet.
    pub dial_timeout: Duration,
    /// How many times a broken TCP link is re-dialed before the peer is
    /// declared permanently gone. Zero disables reconnection.
    pub reconnect_attempts: u32,
    /// Base delay of the deterministic exponential backoff between
    /// reconnect attempts: attempt `k` (0-based) waits
    /// [`reconnect_delay`]`(base, k)` = `min(base << k, `
    /// [`RECONNECT_DELAY_CAP`]`)`.
    pub reconnect_backoff: Duration,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            round_timeout: Duration::from_secs(5),
            dial_timeout: Duration::from_secs(10),
            reconnect_attempts: 3,
            reconnect_backoff: Duration::from_millis(10),
        }
    }
}

/// Hard ceiling on one reconnect wait. The doubling schedule used to
/// saturate only at `base * u32::MAX` — roughly 49 days at the default
/// 10ms base — so a link that flapped long enough would sleep for an
/// absurd span instead of retrying. No single backoff sleep may exceed
/// this cap.
pub const RECONNECT_DELAY_CAP: Duration = Duration::from_secs(30);

/// The deterministic backoff schedule: attempt `k` (0-based) waits
/// `base * 2^k`, clamped to [`RECONNECT_DELAY_CAP`]. Pure, so operators
/// and tests can predict the exact schedule from the config — no jitter
/// by design (the mesh is a reproducibility instrument, not an internet
/// service).
pub fn reconnect_delay(base: Duration, attempt: u32) -> Duration {
    base.saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
        .min(RECONNECT_DELAY_CAP)
}

/// Redial material for links this endpoint originally dialed.
struct Redial {
    addr: SocketAddr,
    me: NodeId,
}

/// Replacement write-streams published by the acceptor thread when a peer
/// re-dials us mid-run, keyed by peer id.
type Replacements = Arc<Mutex<Vec<(NodeId, TcpStream)>>>;

/// An outgoing link to one peer.
enum PeerLink {
    /// In-process: frames pass through an `mpsc` channel un-encoded.
    Channel(Sender<Frame>),
    /// Loopback TCP: frames cross the codec in [`frame`]. Links this
    /// endpoint dialed carry [`Redial`] material for mid-run reconnects;
    /// accepted links are repaired by the peer re-dialing us instead.
    Tcp(TcpStream, Option<Redial>),
}

/// What one link-level send attempt concluded.
enum SendStatus {
    /// Delivered to the link (possibly into an OS buffer).
    Sent,
    /// Delivered after re-establishing the connection.
    Reconnected,
    /// The link is dead and the reconnect budget is exhausted.
    Gone,
}

impl PeerLink {
    /// Sends `frame`, attempting a bounded reconnect on broken TCP links.
    /// Channel links have no reconnect path: a closed channel means the
    /// peer thread is gone for good.
    fn send(
        &mut self,
        frame: &Frame,
        config: &MeshConfig,
        inbox_tx: &Sender<Frame>,
        stop: &Arc<AtomicBool>,
    ) -> SendStatus {
        match self {
            PeerLink::Channel(tx) => match tx.send(frame.clone()) {
                Ok(()) => SendStatus::Sent,
                Err(_) => SendStatus::Gone,
            },
            PeerLink::Tcp(stream, redial) => {
                if frame::write_frame(stream, frame).is_ok() {
                    return SendStatus::Sent;
                }
                let Some(redial) = redial else {
                    // An accepted link: the dialing side owns reconnection.
                    // Keep the link around — the acceptor thread swaps in a
                    // replacement stream if the peer comes back.
                    return SendStatus::Gone;
                };
                for attempt in 0..config.reconnect_attempts {
                    thread::sleep(reconnect_delay(config.reconnect_backoff, attempt));
                    let Ok(mut s) = TcpStream::connect(redial.addr) else {
                        continue;
                    };
                    if io::Write::write_all(&mut s, &(redial.me.index() as u32).to_le_bytes())
                        .is_err()
                    {
                        continue;
                    }
                    let Ok(reader) = s.try_clone() else { continue };
                    if frame::write_frame(&mut s, frame).is_err() {
                        continue;
                    }
                    let tx = inbox_tx.clone();
                    let stop = Arc::clone(stop);
                    thread::spawn(move || reader_loop(reader, tx, stop));
                    *stream = s;
                    return SendStatus::Reconnected;
                }
                SendStatus::Gone
            }
        }
    }
}

/// An envelope awaiting delivery to the local machine: source, message,
/// and the sender's causal trace context if one crossed the wire.
type QueuedDelivery = (NodeId, ByzMsg<u64>, Option<TraceCtx>);

/// One node's endpoint of a channel or TCP mesh.
pub struct MeshTransport {
    me: NodeId,
    n: usize,
    depth: usize,
    chaos: LinkChaos,
    links: BTreeMap<NodeId, PeerLink>,
    inbox: Receiver<Frame>,
    /// Sender half of `inbox`, handed to reader threads spawned for
    /// reconnected links.
    inbox_tx: Sender<Frame>,
    /// Replacement write-streams from peers that re-dialed us.
    replacements: Replacements,
    config: MeshConfig,
    round: usize,
    started: bool,
    need_flush: bool,
    deadline: Instant,
    /// Ready envelopes, in arrival order.
    deliver_queue: VecDeque<QueuedDelivery>,
    /// Envelopes gated until `self.round` reaches their effective round.
    future: BTreeMap<usize, VecDeque<QueuedDelivery>>,
    /// Trace context of the most recently surfaced delivery.
    last_trace: Option<TraceCtx>,
    /// Peers heard finishing each round.
    marks: BTreeMap<usize, BTreeSet<NodeId>>,
    /// Peers declared permanently gone (link dead, reconnect budget
    /// exhausted). The round barrier stops waiting for them.
    gone: BTreeSet<NodeId>,
    /// Successful mid-run link re-establishments.
    reconnects: u64,
    /// Set when every peer is permanently gone: the clean-error surface.
    failure: Option<String>,
    stats: TransportStats,
    /// Tells this endpoint's TCP reader threads to exit.
    stop: Arc<AtomicBool>,
}

impl MeshTransport {
    #[allow(clippy::too_many_arguments)]
    fn new(
        me: NodeId,
        n: usize,
        depth: usize,
        chaos: LinkChaos,
        links: BTreeMap<NodeId, PeerLink>,
        inbox: Receiver<Frame>,
        inbox_tx: Sender<Frame>,
        replacements: Replacements,
        config: MeshConfig,
        stop: Arc<AtomicBool>,
    ) -> Self {
        MeshTransport {
            me,
            n,
            depth,
            chaos,
            links,
            inbox,
            inbox_tx,
            replacements,
            config,
            round: 0,
            started: false,
            need_flush: false,
            deadline: Instant::now() + config.round_timeout,
            deliver_queue: VecDeque::new(),
            future: BTreeMap::new(),
            last_trace: None,
            marks: BTreeMap::new(),
            gone: BTreeSet::new(),
            reconnects: 0,
            failure: None,
            stats: TransportStats::default(),
            stop,
        }
    }

    /// Peers declared permanently gone after an exhausted reconnect
    /// budget. The round barrier no longer waits for them.
    pub fn gone_peers(&self) -> &BTreeSet<NodeId> {
        &self.gone
    }

    /// Successful mid-run link re-establishments (dialer side).
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// The clean-error surface: `Some` once *every* peer is permanently
    /// gone, at which point the endpoint fast-forwards its remaining
    /// rounds (all-absent) instead of hanging on wall-clock deadlines.
    pub fn failure(&self) -> Option<&str> {
        self.failure.as_deref()
    }

    /// Adopts replacement write-streams from peers that re-dialed us: the
    /// acceptor thread publishes them, we swap them into the link table
    /// and un-declare the peer gone.
    fn adopt_replacements(&mut self) {
        let fresh: Vec<(NodeId, TcpStream)> = {
            let mut guard = self.replacements.lock().expect("replacements poisoned");
            guard.drain(..).collect()
        };
        for (peer, stream) in fresh {
            self.links.insert(peer, PeerLink::Tcp(stream, None));
            if self.gone.remove(&peer) {
                self.failure = None;
            }
        }
    }

    /// Sends one frame on one link, tracking reconnects and gone peers.
    fn link_send(&mut self, to: NodeId, frame: &Frame) {
        if self.gone.contains(&to) {
            return;
        }
        let Some(link) = self.links.get_mut(&to) else {
            return;
        };
        match link.send(frame, &self.config, &self.inbox_tx, &self.stop) {
            SendStatus::Sent => {}
            SendStatus::Reconnected => self.reconnects += 1,
            SendStatus::Gone => {
                self.gone.insert(to);
                if self.gone.len() == self.n - 1 {
                    self.failure = Some(format!(
                        "node {}: all {} peers permanently gone (reconnect budget {} exhausted) \
                         in round {}",
                        self.me,
                        self.n - 1,
                        self.config.reconnect_attempts,
                        self.round
                    ));
                }
            }
        }
    }

    fn broadcast_mark(&mut self, round: usize) {
        let mark = Frame::Mark {
            src: self.me,
            round,
        };
        let peers: Vec<NodeId> = self.links.keys().copied().collect();
        for peer in peers {
            self.link_send(peer, &mark);
        }
    }

    /// Moves everything that arrived on the wire into the local queues.
    fn drain_inbox(&mut self) {
        while let Ok(f) = self.inbox.try_recv() {
            match f {
                Frame::Mark { src, round } => {
                    self.marks.entry(round).or_default().insert(src);
                }
                Frame::Envelope { src, msg, trace } => {
                    // The sending round is encoded in the path: a level-k
                    // envelope is sent while round k-1 closes. Recompute
                    // the keyed chaos verdict to learn its reorder delay —
                    // sender and receiver evaluate the same pure function,
                    // so they always agree.
                    let sent_round = msg.path.len().saturating_sub(1);
                    let delay = match self.chaos.disposition(sent_round, src, self.me, &msg.path) {
                        // The sender never puts a dropped envelope on the
                        // wire; tolerate one anyway (a dropped frame is an
                        // absent message, the protocol's bread and butter).
                        Disposition::Dropped(_) => continue,
                        Disposition::Deliver { delay_rounds, .. } => delay_rounds,
                    };
                    let effective = sent_round + delay;
                    if effective + 1 > self.depth {
                        // Would fold at a round past the end of the run.
                        self.stats.lost += 1;
                        continue;
                    }
                    if effective <= self.round {
                        self.deliver_queue.push_back((src, msg, trace));
                    } else {
                        self.future
                            .entry(effective)
                            .or_default()
                            .push_back((src, msg, trace));
                    }
                }
            }
        }
    }

    /// Closes the current round and opens the next.
    fn advance(&mut self) -> PollOutcome {
        self.round += 1;
        self.need_flush = true;
        self.deadline = Instant::now() + self.config.round_timeout;
        let due: Vec<usize> = self
            .future
            .keys()
            .copied()
            .take_while(|&k| k <= self.round)
            .collect();
        for k in due {
            if let Some(q) = self.future.remove(&k) {
                self.deliver_queue.extend(q);
            }
        }
        PollOutcome::Event(NodeEvent::Timeout { round: self.round })
    }
}

impl Transport for MeshTransport {
    fn me(&self) -> NodeId {
        self.me
    }

    fn n(&self) -> usize {
        self.n
    }

    fn send(&mut self, to: NodeId, msg: ByzMsg<u64>) {
        self.send_traced(to, msg, None);
    }

    fn send_traced(&mut self, to: NodeId, msg: ByzMsg<u64>, trace: Option<TraceCtx>) {
        self.stats.sent += 1;
        let copies = match self.chaos.disposition(self.round, self.me, to, &msg.path) {
            Disposition::Dropped(cause) => {
                match cause {
                    DropCause::Cut => self.stats.dropped_cut += 1,
                    DropCause::Loss => self.stats.dropped_loss += 1,
                    DropCause::Corrupt => self.stats.dropped_corrupt += 1,
                }
                return;
            }
            Disposition::Deliver {
                copies,
                delay_rounds,
            } => {
                if delay_rounds > 0 {
                    self.stats.delayed += 1;
                }
                if copies > 1 {
                    self.stats.duplicated += (copies - 1) as u64;
                }
                copies
            }
        };
        let frame = Frame::Envelope {
            src: self.me,
            msg,
            trace,
        };
        for _ in 0..copies {
            self.link_send(to, &frame);
        }
    }

    fn last_trace(&self) -> Option<TraceCtx> {
        self.last_trace.clone()
    }

    fn poll(&mut self) -> PollOutcome {
        if !self.started {
            self.started = true;
            self.need_flush = true;
            self.deadline = Instant::now() + self.config.round_timeout;
            return PollOutcome::Event(NodeEvent::Timeout { round: 0 });
        }
        self.adopt_replacements();
        if self.need_flush {
            // This poll is the first since a Timeout event: the driver has
            // dispatched every send of that round, so the mark goes out
            // now — after the envelopes, per-link FIFO.
            self.need_flush = false;
            if self.round < self.depth {
                self.broadcast_mark(self.round);
            }
        }
        if self.round == self.depth {
            // The final timeout has been emitted; the machine is done.
            return PollOutcome::Closed;
        }
        self.drain_inbox();
        if let Some((src, msg, trace)) = self.deliver_queue.pop_front() {
            self.stats.delivered += 1;
            self.last_trace = trace;
            return PollOutcome::Event(NodeEvent::Deliver { src, msg });
        }
        let heard = self.marks.get(&self.round).map_or(0, BTreeSet::len);
        // Gone peers never produce marks: the barrier stops waiting for
        // them (their envelopes read as absent, the protocol's normal
        // fault mode) instead of burning a wall-clock deadline per round.
        let gone = self
            .gone
            .iter()
            .filter(|p| !self.marks.get(&self.round).is_some_and(|m| m.contains(p)))
            .count();
        if heard + gone >= self.n - 1 {
            return self.advance();
        }
        if Instant::now() >= self.deadline {
            // Deadline-expiry absence detection: unheard peers are
            // declared silent for this round whether they are dead or
            // merely slow — the latter is a false timeout. Permanently
            // gone peers are real absences, not false timeouts.
            self.stats.false_timeouts += (self.n - 1 - heard - gone) as u64;
            return self.advance();
        }
        PollOutcome::Pending
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

impl Drop for MeshTransport {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

/// Builds an `n`-node in-process mesh over `std::sync::mpsc` channels.
/// Element `i` of the result is node `i`'s endpoint; move each to its own
/// thread and drive them concurrently.
pub fn channel_mesh(
    n: usize,
    depth: usize,
    chaos: &LinkChaos,
    config: MeshConfig,
) -> Vec<MeshTransport> {
    let mut txs = Vec::with_capacity(n);
    let mut rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel();
        txs.push(tx);
        rxs.push(rx);
    }
    rxs.into_iter()
        .enumerate()
        .map(|(i, rx)| {
            let me = NodeId::new(i);
            let links = NodeId::all(n)
                .filter(|&p| p != me)
                .map(|p| (p, PeerLink::Channel(txs[p.index()].clone())))
                .collect();
            MeshTransport::new(
                me,
                n,
                depth,
                chaos.clone(),
                links,
                rx,
                txs[i].clone(),
                Arc::new(Mutex::new(Vec::new())),
                config,
                Arc::new(AtomicBool::new(false)),
            )
        })
        .collect()
}

/// Builds an `n`-node mesh over loopback TCP with ephemeral ports: binds
/// `n` listeners, performs the full dial/accept handshake on worker
/// threads, and returns node `i`'s endpoint at element `i`.
pub fn tcp_mesh(
    n: usize,
    depth: usize,
    chaos: &LinkChaos,
    config: MeshConfig,
) -> io::Result<Vec<MeshTransport>> {
    let mut listeners = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let l = TcpListener::bind("127.0.0.1:0")?;
        addrs.push(l.local_addr()?);
        listeners.push(l);
    }
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let addrs = addrs.clone();
            let chaos = chaos.clone();
            thread::spawn(move || {
                join_with_listener(NodeId::new(i), listener, &addrs, depth, chaos, config)
            })
        })
        .collect();
    let mut out = Vec::with_capacity(n);
    for h in handles {
        out.push(h.join().expect("tcp mesh setup thread panicked")?);
    }
    Ok(out)
}

/// Joins a TCP mesh as node `me` of `addrs.len()` nodes at explicit
/// addresses — the `dagree serve` entry point, where each node is its own
/// process. Binds `addrs[me]`, dials every lower-indexed peer (retrying
/// until [`MeshConfig::dial_timeout`], since peers may not be up yet) and
/// accepts connections from every higher-indexed one.
pub fn tcp_join(
    me: NodeId,
    addrs: &[SocketAddr],
    depth: usize,
    chaos: LinkChaos,
    config: MeshConfig,
) -> io::Result<MeshTransport> {
    let listener = TcpListener::bind(addrs[me.index()])?;
    join_with_listener(me, listener, addrs, depth, chaos, config)
}

/// The shared dial-lower/accept-higher handshake. Every connection opens
/// with a 4-byte little-endian node index from the dialer, so the acceptor
/// knows who it is talking to (transport-level authentication, the paper's
/// oral-message assumption (c) — good enough on loopback).
fn join_with_listener(
    me: NodeId,
    listener: TcpListener,
    addrs: &[SocketAddr],
    depth: usize,
    chaos: LinkChaos,
    config: MeshConfig,
) -> io::Result<MeshTransport> {
    let n = addrs.len();
    let mut streams: BTreeMap<NodeId, Option<Redial>> = BTreeMap::new();
    let mut raw: BTreeMap<NodeId, TcpStream> = BTreeMap::new();
    for (peer, &addr) in addrs.iter().enumerate().take(me.index()) {
        let mut s = dial_with_retry(addr, config.dial_timeout)?;
        io::Write::write_all(&mut s, &(me.index() as u32).to_le_bytes())?;
        raw.insert(NodeId::new(peer), s);
        streams.insert(NodeId::new(peer), Some(Redial { addr, me }));
    }
    for _ in me.index() + 1..n {
        let (mut s, _) = listener.accept()?;
        let mut id = [0u8; 4];
        s.read_exact(&mut id)?;
        let peer = u32::from_le_bytes(id) as usize;
        if peer >= n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "handshake announced an out-of-range node id",
            ));
        }
        raw.insert(NodeId::new(peer), s);
        streams.insert(NodeId::new(peer), None);
    }
    let (tx, rx) = channel();
    let stop = Arc::new(AtomicBool::new(false));
    let replacements: Replacements = Arc::new(Mutex::new(Vec::new()));
    let mut links = BTreeMap::new();
    for (peer, stream) in raw {
        let reader = stream.try_clone()?;
        let reader_tx = tx.clone();
        let reader_stop = Arc::clone(&stop);
        thread::spawn(move || reader_loop(reader, reader_tx, reader_stop));
        let redial = streams.remove(&peer).flatten();
        links.insert(peer, PeerLink::Tcp(stream, redial));
    }
    // The listener stays alive for the whole run: peers whose outgoing
    // link to us breaks re-dial with the same id handshake, and the
    // acceptor publishes the fresh stream as a replacement link.
    {
        let tx = tx.clone();
        let stop = Arc::clone(&stop);
        let replacements = Arc::clone(&replacements);
        thread::spawn(move || acceptor_loop(listener, n, tx, stop, replacements));
    }
    Ok(MeshTransport::new(
        me,
        n,
        depth,
        chaos,
        links,
        rx,
        tx,
        replacements,
        config,
        stop,
    ))
}

/// Post-setup acceptor: keeps the listener open so disconnected peers can
/// re-dial mid-run. Each accepted connection re-runs the 4-byte id
/// handshake; its read half feeds the endpoint's inbox through a fresh
/// reader thread and its write half is published as a replacement link.
fn acceptor_loop(
    listener: TcpListener,
    n: usize,
    tx: Sender<Frame>,
    stop: Arc<AtomicBool>,
    replacements: Replacements,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((mut s, _)) => {
                if s.set_nonblocking(false).is_err() {
                    continue;
                }
                let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
                let mut id = [0u8; 4];
                if s.read_exact(&mut id).is_err() {
                    continue;
                }
                let peer = u32::from_le_bytes(id) as usize;
                if peer >= n {
                    continue;
                }
                let Ok(reader) = s.try_clone() else { continue };
                let reader_tx = tx.clone();
                let reader_stop = Arc::clone(&stop);
                thread::spawn(move || reader_loop(reader, reader_tx, reader_stop));
                replacements
                    .lock()
                    .expect("replacements poisoned")
                    .push((NodeId::new(peer), s));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => return,
        }
    }
}

fn dial_with_retry(addr: SocketAddr, budget: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + budget;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Per-connection reader: accumulates bytes and forwards complete frames.
/// Reading with a timeout (rather than blocking forever) lets the thread
/// notice the endpoint's stop flag, so finished runs do not strand reader
/// threads on half-open sockets. Partial frames survive across timeouts —
/// the accumulator only ever consumes whole frames.
fn reader_loop(mut stream: TcpStream, tx: Sender<Frame>, stop: Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut acc: Vec<u8> = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(k) => {
                acc.extend_from_slice(&buf[..k]);
                loop {
                    if acc.len() < 4 {
                        break;
                    }
                    let len =
                        u32::from_le_bytes(acc[..4].try_into().expect("4-byte slice")) as usize;
                    if len > MAX_FRAME_LEN as usize {
                        return; // corrupt stream: stop feeding it onward
                    }
                    if acc.len() < 4 + len {
                        break;
                    }
                    match frame::decode(&acc[4..4 + len]) {
                        Ok(f) => {
                            if tx.send(f).is_err() {
                                return;
                            }
                        }
                        Err(_) => return,
                    }
                    acc.drain(..4 + len);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use degradable::{AgreementValue, Path};

    fn nid(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn envelope(src: usize, path: Path, v: u64) -> Frame {
        Frame::Envelope {
            src: nid(src),
            msg: ByzMsg {
                path,
                value: AgreementValue::Value(v),
            },
            trace: None,
        }
    }

    /// Drives a 2-node channel mesh by hand: node 1 should see Timeout 0,
    /// the delivery, then timeouts driven by node 0's marks.
    #[test]
    fn channel_mesh_round_trip_with_marks() {
        let mut mesh = channel_mesh(2, 2, &LinkChaos::healthy(), MeshConfig::default());
        let mut n1 = mesh.pop().unwrap();
        let mut n0 = mesh.pop().unwrap();

        assert_eq!(
            n0.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 0 })
        );
        n0.send(
            nid(1),
            ByzMsg {
                path: Path::root(nid(0)),
                value: AgreementValue::Value(9u64),
            },
        );
        assert_eq!(
            n1.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 0 })
        );
        // Node 1's next poll flushes its Mark(0) and must surface the
        // envelope before any round advance.
        match n1.poll() {
            PollOutcome::Event(NodeEvent::Deliver { src, msg }) => {
                assert_eq!(src, nid(0));
                assert_eq!(msg.path, Path::root(nid(0)));
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        // Node 0 flushes Mark(0), hears node 1's, advances; then node 1
        // hears node 0's mark and follows.
        assert_eq!(
            n0.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 1 })
        );
        assert_eq!(
            n1.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 1 })
        );
        // Round 1 closes the same way; round 2 is the final timeout.
        assert_eq!(n1.poll(), PollOutcome::Pending, "peer mark not in yet");
        assert_eq!(
            n0.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 2 })
        );
        assert_eq!(
            n1.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 2 })
        );
        assert_eq!(n1.poll(), PollOutcome::Closed);
        assert_eq!(n0.poll(), PollOutcome::Closed);
        assert_eq!(n1.stats().delivered, 1);
        assert_eq!(n0.stats().sent, 1);
        assert_eq!(n0.stats().false_timeouts, 0);
    }

    #[test]
    fn dead_peer_times_out_but_round_structure_survives() {
        let mut mesh = channel_mesh(
            2,
            1,
            &LinkChaos::healthy(),
            MeshConfig {
                round_timeout: Duration::from_millis(30),
                ..MeshConfig::default()
            },
        );
        let mut n0 = mesh.remove(0);
        // Node 1's endpoint stays alive but is never polled: a *hung* peer.
        // Its inbox channel stays open, so sends succeed and the dead-link
        // detector never fires — only the wall-clock deadline can close the
        // round, and that expiry is a (possibly false) timeout. A *gone*
        // peer (channel closed) is the separate, instantly-detected case —
        // see `gone_channel_peer_is_detected_and_rounds_advance_without_deadline`.
        let _hung_peer = mesh;
        assert_eq!(
            n0.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 0 })
        );
        let start = Instant::now();
        loop {
            match n0.poll() {
                PollOutcome::Pending => thread::sleep(Duration::from_millis(2)),
                PollOutcome::Event(NodeEvent::Timeout { round: 1 }) => break,
                other => panic!("expected round-1 timeout, got {other:?}"),
            }
            assert!(
                start.elapsed() < Duration::from_secs(2),
                "no deadline fired"
            );
        }
        assert_eq!(n0.poll(), PollOutcome::Closed);
        assert_eq!(n0.stats().false_timeouts, 1);
    }

    #[test]
    fn early_envelopes_are_gated_until_their_round() {
        // Hand-feed node 0's inbox: a level-2 envelope (round-1 traffic
        // from a peer that has raced ahead) must not surface during round
        // 0 — the machine would discard it as from the future.
        let (tx, rx) = channel();
        let mut t = MeshTransport::new(
            nid(0),
            3,
            2,
            LinkChaos::healthy(),
            BTreeMap::new(),
            rx,
            tx.clone(),
            Arc::new(Mutex::new(Vec::new())),
            MeshConfig::default(),
            Arc::new(AtomicBool::new(false)),
        );
        assert_eq!(
            t.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 0 })
        );
        tx.send(envelope(2, Path::root(nid(1)).child(nid(2)), 7))
            .unwrap();
        assert_eq!(t.poll(), PollOutcome::Pending, "future envelope gated");
        // Marks for round 0 from both peers release the next round.
        tx.send(Frame::Mark {
            src: nid(1),
            round: 0,
        })
        .unwrap();
        tx.send(Frame::Mark {
            src: nid(2),
            round: 0,
        })
        .unwrap();
        assert_eq!(
            t.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 1 })
        );
        match t.poll() {
            PollOutcome::Event(NodeEvent::Deliver { src, .. }) => assert_eq!(src, nid(2)),
            other => panic!("gated envelope should release in round 1, got {other:?}"),
        }
    }

    #[test]
    fn reconnect_backoff_schedule_is_deterministic() {
        let base = Duration::from_millis(10);
        assert_eq!(reconnect_delay(base, 0), Duration::from_millis(10));
        assert_eq!(reconnect_delay(base, 1), Duration::from_millis(20));
        assert_eq!(reconnect_delay(base, 2), Duration::from_millis(40));
        assert_eq!(reconnect_delay(base, 3), Duration::from_millis(80));
        // The schedule is clamped: attempt 11 would be 10ms << 11 =
        // 20.48s, attempt 12 crosses the 30s cap, and absurd attempt
        // counts (including the shift-overflow range >= 32) all pin at
        // exactly the cap instead of sleeping for days.
        assert_eq!(reconnect_delay(base, 11), Duration::from_millis(20_480));
        assert_eq!(reconnect_delay(base, 12), RECONNECT_DELAY_CAP);
        assert_eq!(reconnect_delay(base, 31), RECONNECT_DELAY_CAP);
        assert_eq!(reconnect_delay(base, 32), RECONNECT_DELAY_CAP);
        assert_eq!(reconnect_delay(base, 63), RECONNECT_DELAY_CAP);
        assert_eq!(reconnect_delay(base, u32::MAX), RECONNECT_DELAY_CAP);
        // A base already above the cap is clamped from attempt 0.
        assert_eq!(
            reconnect_delay(Duration::from_secs(60), 0),
            RECONNECT_DELAY_CAP
        );
    }

    #[test]
    fn gone_channel_peer_is_detected_and_rounds_advance_without_deadline() {
        // Node 1's endpoint (and thus its inbox receiver) is dropped: node
        // 0's first send fails cleanly, the peer is marked gone, and every
        // remaining round advances immediately instead of burning the
        // round deadline — with a generous timeout this test would hang
        // for seconds if the gone-peer path regressed.
        let mut mesh = channel_mesh(
            2,
            2,
            &LinkChaos::healthy(),
            MeshConfig {
                round_timeout: Duration::from_secs(30),
                ..MeshConfig::default()
            },
        );
        let mut n0 = mesh.remove(0);
        drop(mesh);
        assert_eq!(
            n0.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 0 })
        );
        n0.send(
            nid(1),
            ByzMsg {
                path: Path::root(nid(0)),
                value: AgreementValue::Value(9u64),
            },
        );
        assert_eq!(
            n0.gone_peers().iter().copied().collect::<Vec<_>>(),
            [nid(1)]
        );
        assert!(n0.failure().is_some(), "all peers gone is a clean error");
        let start = Instant::now();
        assert_eq!(
            n0.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 1 })
        );
        assert_eq!(
            n0.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 2 })
        );
        assert_eq!(n0.poll(), PollOutcome::Closed);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "gone peers must not cost a deadline per round"
        );
        // Real absences, not false timeouts.
        assert_eq!(n0.stats().false_timeouts, 0);
    }

    #[test]
    fn tcp_link_reconnects_after_peer_drops_the_connection() {
        // Node 1 dialed node 0 (dial-lower), so node 1 owns the redial
        // path. Node 0 severs the accepted connection mid-run; node 1's
        // next send must re-dial (bounded, backed off), re-handshake, and
        // deliver — and node 0's persistent acceptor must splice the
        // replacement in so traffic keeps flowing.
        let mut mesh = tcp_mesh(2, 3, &LinkChaos::healthy(), MeshConfig::default()).unwrap();
        let mut n1 = mesh.pop().unwrap();
        let mut n0 = mesh.pop().unwrap();
        assert_eq!(
            n0.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 0 })
        );
        assert_eq!(
            n1.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 0 })
        );
        // Node 0 severs the link it accepted from node 1 — both halves.
        match n0.links.get_mut(&nid(1)) {
            Some(PeerLink::Tcp(s, _)) => {
                s.shutdown(std::net::Shutdown::Both).unwrap();
            }
            _ => panic!("expected a TCP link"),
        }
        thread::sleep(Duration::from_millis(100)); // let the shutdown land
                                                   // Node 1's sends hit the broken socket. TCP write buffering may
                                                   // swallow the first failure, so push frames until the reconnect
                                                   // path fires (bounded by the test timeout, not by hope).
        let start = Instant::now();
        while n1.reconnects() == 0 {
            n1.send(
                nid(0),
                ByzMsg {
                    path: Path::root(nid(1)),
                    value: AgreementValue::Value(77u64),
                },
            );
            assert!(n1.gone_peers().is_empty(), "reconnect must succeed");
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "reconnect never triggered"
            );
            thread::sleep(Duration::from_millis(10));
        }
        assert!(n1.reconnects() >= 1);
        // The re-dialed connection reaches node 0 through its acceptor:
        // polling adopts the replacement and the envelope arrives.
        let start = Instant::now();
        loop {
            match n0.poll() {
                PollOutcome::Event(NodeEvent::Deliver { src, msg }) => {
                    assert_eq!(src, nid(1));
                    assert_eq!(msg.value, AgreementValue::Value(77));
                    break;
                }
                PollOutcome::Event(NodeEvent::Timeout { .. }) => {}
                PollOutcome::Pending => thread::sleep(Duration::from_millis(5)),
                PollOutcome::Closed => panic!("closed before the reconnected frame arrived"),
            }
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "replacement link never delivered"
            );
        }
    }

    #[test]
    fn traced_send_surfaces_last_trace_at_the_receiver() {
        let mut mesh = channel_mesh(2, 2, &LinkChaos::healthy(), MeshConfig::default());
        let mut n1 = mesh.pop().unwrap();
        let mut n0 = mesh.pop().unwrap();
        assert_eq!(
            n0.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 0 })
        );
        assert_eq!(
            n1.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 0 })
        );
        let ctx = TraceCtx::new(4, vec![0]);
        n0.send_traced(
            nid(1),
            ByzMsg {
                path: Path::root(nid(0)),
                value: AgreementValue::Value(11u64),
            },
            Some(ctx.clone()),
        );
        match n1.poll() {
            PollOutcome::Event(NodeEvent::Deliver { src, .. }) => assert_eq!(src, nid(0)),
            other => panic!("expected delivery, got {other:?}"),
        }
        assert_eq!(n1.last_trace(), Some(ctx.clone()));
        // Untraced traffic resets the slot: the context never outlives
        // the delivery it was stamped on.
        n0.send(
            nid(1),
            ByzMsg {
                path: Path::root(nid(0)),
                value: AgreementValue::Value(12u64),
            },
        );
        match n1.poll() {
            PollOutcome::Event(NodeEvent::Deliver { .. }) => {}
            other => panic!("expected delivery, got {other:?}"),
        }
        assert_eq!(n1.last_trace(), None);
    }

    #[test]
    fn tcp_mesh_handshake_carries_frames_both_ways() {
        let mut mesh = tcp_mesh(2, 1, &LinkChaos::healthy(), MeshConfig::default()).unwrap();
        let mut n1 = mesh.pop().unwrap();
        let mut n0 = mesh.pop().unwrap();
        assert_eq!(
            n0.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 0 })
        );
        assert_eq!(
            n1.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 0 })
        );
        n0.send(
            nid(1),
            ByzMsg {
                path: Path::root(nid(0)),
                value: AgreementValue::Value(1234u64),
            },
        );
        // Spin until the reader thread forwards the frame.
        let start = Instant::now();
        loop {
            match n1.poll() {
                PollOutcome::Event(NodeEvent::Deliver { src, msg }) => {
                    assert_eq!(src, nid(0));
                    assert_eq!(msg.value, AgreementValue::Value(1234));
                    break;
                }
                PollOutcome::Event(NodeEvent::Timeout { .. }) => {
                    panic!("round advanced before the envelope was drained")
                }
                PollOutcome::Pending => thread::sleep(Duration::from_millis(1)),
                PollOutcome::Closed => panic!("closed early"),
            }
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "frame never arrived"
            );
        }
    }
}
