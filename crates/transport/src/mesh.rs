//! Real-concurrency backends: one OS thread per node, over in-process
//! channels or loopback TCP.
//!
//! Both share [`MeshTransport`], which implements the paper's
//! message-absence detection (assumption (b)) with a **round-barrier
//! protocol** over [`Frame`]s:
//!
//! 1. the first `poll` opens round 0 with a `Timeout { 0 }` event;
//! 2. after the driver has dispatched the machine's sends for round `r`,
//!    the next `poll` broadcasts `Mark(r)` — FIFO links guarantee every
//!    round-`r` envelope precedes it;
//! 3. a node closes round `r` (emits `Timeout { r + 1 }`) once it holds
//!    `Mark(r)` from all `n − 1` peers **or** its wall-clock deadline
//!    expires. The deadline path is real, possibly-false absence detection:
//!    a live-but-slow peer is declared silent, exactly the failure mode
//!    §6 tolerates beyond `m` faults.
//!
//! Marks bypass the chaos layer: they are absence-detection
//! *infrastructure* (the stand-in for the paper's synchronized clocks),
//! not protocol messages, so a fault plan perturbs what BYZ says, never
//! the round structure itself.
//!
//! Chaos is evaluated twice, by the same pure function
//! ([`LinkChaos::disposition`]): the sender drops doomed envelopes and
//! emits duplicates; the receiver recomputes the verdict to learn the
//! reorder delay and *gates* the envelope until its effective round —
//! an envelope of round `s` delayed `d` rounds is handed to the machine
//! during round `s + d`, folding at the close of round `s + d + 1` as a
//! late direct observation, exactly as on the simulator backend. The
//! gate also holds back genuinely early traffic from peers that are a
//! round ahead, which the state machine would otherwise discard as
//! coming from the future.

use crate::chaos::LinkChaos;
use crate::frame::{self, Frame, MAX_FRAME_LEN};
use crate::{Disposition, DropCause, PollOutcome, Transport, TransportStats};
use degradable::{ByzMsg, NodeEvent};
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs for a mesh run.
#[derive(Debug, Clone, Copy)]
pub struct MeshConfig {
    /// Wall-clock budget per round before absent peers are timed out.
    /// Generous by default so healthy runs are mark-driven (deterministic);
    /// shorten it to exercise real (possibly false) absence detection.
    pub round_timeout: Duration,
    /// How long `tcp` setup keeps retrying dials to peers that have not
    /// bound their listener yet.
    pub dial_timeout: Duration,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            round_timeout: Duration::from_secs(5),
            dial_timeout: Duration::from_secs(10),
        }
    }
}

/// An outgoing link to one peer.
enum PeerLink {
    /// In-process: frames pass through an `mpsc` channel un-encoded.
    Channel(Sender<Frame>),
    /// Loopback TCP: frames cross the codec in [`frame`].
    Tcp(TcpStream),
}

impl PeerLink {
    /// Fire-and-forget: a dead peer is indistinguishable from a silent
    /// one, and absence handling is the machine's job, so send errors are
    /// swallowed by design.
    fn send(&mut self, frame: &Frame) {
        match self {
            PeerLink::Channel(tx) => {
                let _ = tx.send(frame.clone());
            }
            PeerLink::Tcp(stream) => {
                let _ = frame::write_frame(stream, frame);
            }
        }
    }
}

/// One node's endpoint of a channel or TCP mesh.
pub struct MeshTransport {
    me: NodeId,
    n: usize,
    depth: usize,
    chaos: LinkChaos,
    links: BTreeMap<NodeId, PeerLink>,
    inbox: Receiver<Frame>,
    config: MeshConfig,
    round: usize,
    started: bool,
    need_flush: bool,
    deadline: Instant,
    /// Ready envelopes, in arrival order.
    deliver_queue: VecDeque<(NodeId, ByzMsg<u64>)>,
    /// Envelopes gated until `self.round` reaches their effective round.
    future: BTreeMap<usize, VecDeque<(NodeId, ByzMsg<u64>)>>,
    /// Peers heard finishing each round.
    marks: BTreeMap<usize, BTreeSet<NodeId>>,
    stats: TransportStats,
    /// Tells this endpoint's TCP reader threads to exit.
    stop: Arc<AtomicBool>,
}

impl MeshTransport {
    #[allow(clippy::too_many_arguments)]
    fn new(
        me: NodeId,
        n: usize,
        depth: usize,
        chaos: LinkChaos,
        links: BTreeMap<NodeId, PeerLink>,
        inbox: Receiver<Frame>,
        config: MeshConfig,
        stop: Arc<AtomicBool>,
    ) -> Self {
        MeshTransport {
            me,
            n,
            depth,
            chaos,
            links,
            inbox,
            config,
            round: 0,
            started: false,
            need_flush: false,
            deadline: Instant::now() + config.round_timeout,
            deliver_queue: VecDeque::new(),
            future: BTreeMap::new(),
            marks: BTreeMap::new(),
            stats: TransportStats::default(),
            stop,
        }
    }

    fn broadcast_mark(&mut self, round: usize) {
        let mark = Frame::Mark {
            src: self.me,
            round,
        };
        for link in self.links.values_mut() {
            link.send(&mark);
        }
    }

    /// Moves everything that arrived on the wire into the local queues.
    fn drain_inbox(&mut self) {
        while let Ok(f) = self.inbox.try_recv() {
            match f {
                Frame::Mark { src, round } => {
                    self.marks.entry(round).or_default().insert(src);
                }
                Frame::Envelope { src, msg } => {
                    // The sending round is encoded in the path: a level-k
                    // envelope is sent while round k-1 closes. Recompute
                    // the keyed chaos verdict to learn its reorder delay —
                    // sender and receiver evaluate the same pure function,
                    // so they always agree.
                    let sent_round = msg.path.len().saturating_sub(1);
                    let delay = match self.chaos.disposition(sent_round, src, self.me, &msg.path) {
                        // The sender never puts a dropped envelope on the
                        // wire; tolerate one anyway (a dropped frame is an
                        // absent message, the protocol's bread and butter).
                        Disposition::Dropped(_) => continue,
                        Disposition::Deliver { delay_rounds, .. } => delay_rounds,
                    };
                    let effective = sent_round + delay;
                    if effective + 1 > self.depth {
                        // Would fold at a round past the end of the run.
                        self.stats.lost += 1;
                        continue;
                    }
                    if effective <= self.round {
                        self.deliver_queue.push_back((src, msg));
                    } else {
                        self.future
                            .entry(effective)
                            .or_default()
                            .push_back((src, msg));
                    }
                }
            }
        }
    }

    /// Closes the current round and opens the next.
    fn advance(&mut self) -> PollOutcome {
        self.round += 1;
        self.need_flush = true;
        self.deadline = Instant::now() + self.config.round_timeout;
        let due: Vec<usize> = self
            .future
            .keys()
            .copied()
            .take_while(|&k| k <= self.round)
            .collect();
        for k in due {
            if let Some(q) = self.future.remove(&k) {
                self.deliver_queue.extend(q);
            }
        }
        PollOutcome::Event(NodeEvent::Timeout { round: self.round })
    }
}

impl Transport for MeshTransport {
    fn me(&self) -> NodeId {
        self.me
    }

    fn n(&self) -> usize {
        self.n
    }

    fn send(&mut self, to: NodeId, msg: ByzMsg<u64>) {
        self.stats.sent += 1;
        let copies = match self.chaos.disposition(self.round, self.me, to, &msg.path) {
            Disposition::Dropped(cause) => {
                match cause {
                    DropCause::Cut => self.stats.dropped_cut += 1,
                    DropCause::Loss => self.stats.dropped_loss += 1,
                    DropCause::Corrupt => self.stats.dropped_corrupt += 1,
                }
                return;
            }
            Disposition::Deliver {
                copies,
                delay_rounds,
            } => {
                if delay_rounds > 0 {
                    self.stats.delayed += 1;
                }
                if copies > 1 {
                    self.stats.duplicated += (copies - 1) as u64;
                }
                copies
            }
        };
        let frame = Frame::Envelope { src: self.me, msg };
        if let Some(link) = self.links.get_mut(&to) {
            for _ in 0..copies {
                link.send(&frame);
            }
        }
    }

    fn poll(&mut self) -> PollOutcome {
        if !self.started {
            self.started = true;
            self.need_flush = true;
            self.deadline = Instant::now() + self.config.round_timeout;
            return PollOutcome::Event(NodeEvent::Timeout { round: 0 });
        }
        if self.need_flush {
            // This poll is the first since a Timeout event: the driver has
            // dispatched every send of that round, so the mark goes out
            // now — after the envelopes, per-link FIFO.
            self.need_flush = false;
            if self.round < self.depth {
                self.broadcast_mark(self.round);
            }
        }
        if self.round == self.depth {
            // The final timeout has been emitted; the machine is done.
            return PollOutcome::Closed;
        }
        self.drain_inbox();
        if let Some((src, msg)) = self.deliver_queue.pop_front() {
            self.stats.delivered += 1;
            return PollOutcome::Event(NodeEvent::Deliver { src, msg });
        }
        let heard = self.marks.get(&self.round).map_or(0, BTreeSet::len);
        if heard == self.n - 1 {
            return self.advance();
        }
        if Instant::now() >= self.deadline {
            // Deadline-expiry absence detection: unheard peers are
            // declared silent for this round whether they are dead or
            // merely slow — the latter is a false timeout.
            self.stats.false_timeouts += (self.n - 1 - heard) as u64;
            return self.advance();
        }
        PollOutcome::Pending
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

impl Drop for MeshTransport {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
    }
}

/// Builds an `n`-node in-process mesh over `std::sync::mpsc` channels.
/// Element `i` of the result is node `i`'s endpoint; move each to its own
/// thread and drive them concurrently.
pub fn channel_mesh(
    n: usize,
    depth: usize,
    chaos: &LinkChaos,
    config: MeshConfig,
) -> Vec<MeshTransport> {
    let mut txs = Vec::with_capacity(n);
    let mut rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel();
        txs.push(tx);
        rxs.push(rx);
    }
    rxs.into_iter()
        .enumerate()
        .map(|(i, rx)| {
            let me = NodeId::new(i);
            let links = NodeId::all(n)
                .filter(|&p| p != me)
                .map(|p| (p, PeerLink::Channel(txs[p.index()].clone())))
                .collect();
            MeshTransport::new(
                me,
                n,
                depth,
                chaos.clone(),
                links,
                rx,
                config,
                Arc::new(AtomicBool::new(false)),
            )
        })
        .collect()
}

/// Builds an `n`-node mesh over loopback TCP with ephemeral ports: binds
/// `n` listeners, performs the full dial/accept handshake on worker
/// threads, and returns node `i`'s endpoint at element `i`.
pub fn tcp_mesh(
    n: usize,
    depth: usize,
    chaos: &LinkChaos,
    config: MeshConfig,
) -> io::Result<Vec<MeshTransport>> {
    let mut listeners = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let l = TcpListener::bind("127.0.0.1:0")?;
        addrs.push(l.local_addr()?);
        listeners.push(l);
    }
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let addrs = addrs.clone();
            let chaos = chaos.clone();
            thread::spawn(move || {
                join_with_listener(NodeId::new(i), listener, &addrs, depth, chaos, config)
            })
        })
        .collect();
    let mut out = Vec::with_capacity(n);
    for h in handles {
        out.push(h.join().expect("tcp mesh setup thread panicked")?);
    }
    Ok(out)
}

/// Joins a TCP mesh as node `me` of `addrs.len()` nodes at explicit
/// addresses — the `dagree serve` entry point, where each node is its own
/// process. Binds `addrs[me]`, dials every lower-indexed peer (retrying
/// until [`MeshConfig::dial_timeout`], since peers may not be up yet) and
/// accepts connections from every higher-indexed one.
pub fn tcp_join(
    me: NodeId,
    addrs: &[SocketAddr],
    depth: usize,
    chaos: LinkChaos,
    config: MeshConfig,
) -> io::Result<MeshTransport> {
    let listener = TcpListener::bind(addrs[me.index()])?;
    join_with_listener(me, listener, addrs, depth, chaos, config)
}

/// The shared dial-lower/accept-higher handshake. Every connection opens
/// with a 4-byte little-endian node index from the dialer, so the acceptor
/// knows who it is talking to (transport-level authentication, the paper's
/// oral-message assumption (c) — good enough on loopback).
fn join_with_listener(
    me: NodeId,
    listener: TcpListener,
    addrs: &[SocketAddr],
    depth: usize,
    chaos: LinkChaos,
    config: MeshConfig,
) -> io::Result<MeshTransport> {
    let n = addrs.len();
    let mut streams: BTreeMap<NodeId, TcpStream> = BTreeMap::new();
    for (peer, &addr) in addrs.iter().enumerate().take(me.index()) {
        let mut s = dial_with_retry(addr, config.dial_timeout)?;
        io::Write::write_all(&mut s, &(me.index() as u32).to_le_bytes())?;
        streams.insert(NodeId::new(peer), s);
    }
    for _ in me.index() + 1..n {
        let (mut s, _) = listener.accept()?;
        let mut id = [0u8; 4];
        s.read_exact(&mut id)?;
        let peer = u32::from_le_bytes(id) as usize;
        if peer >= n {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "handshake announced an out-of-range node id",
            ));
        }
        streams.insert(NodeId::new(peer), s);
    }
    let (tx, rx) = channel();
    let stop = Arc::new(AtomicBool::new(false));
    let mut links = BTreeMap::new();
    for (peer, stream) in streams {
        let reader = stream.try_clone()?;
        let tx = tx.clone();
        let stop = Arc::clone(&stop);
        thread::spawn(move || reader_loop(reader, tx, stop));
        links.insert(peer, PeerLink::Tcp(stream));
    }
    Ok(MeshTransport::new(
        me, n, depth, chaos, links, rx, config, stop,
    ))
}

fn dial_with_retry(addr: SocketAddr, budget: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + budget;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) if Instant::now() >= deadline => return Err(e),
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Per-connection reader: accumulates bytes and forwards complete frames.
/// Reading with a timeout (rather than blocking forever) lets the thread
/// notice the endpoint's stop flag, so finished runs do not strand reader
/// threads on half-open sockets. Partial frames survive across timeouts —
/// the accumulator only ever consumes whole frames.
fn reader_loop(mut stream: TcpStream, tx: Sender<Frame>, stop: Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut acc: Vec<u8> = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(k) => {
                acc.extend_from_slice(&buf[..k]);
                loop {
                    if acc.len() < 4 {
                        break;
                    }
                    let len =
                        u32::from_le_bytes(acc[..4].try_into().expect("4-byte slice")) as usize;
                    if len > MAX_FRAME_LEN as usize {
                        return; // corrupt stream: stop feeding it onward
                    }
                    if acc.len() < 4 + len {
                        break;
                    }
                    match frame::decode(&acc[4..4 + len]) {
                        Ok(f) => {
                            if tx.send(f).is_err() {
                                return;
                            }
                        }
                        Err(_) => return,
                    }
                    acc.drain(..4 + len);
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use degradable::{AgreementValue, Path};

    fn nid(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn envelope(src: usize, path: Path, v: u64) -> Frame {
        Frame::Envelope {
            src: nid(src),
            msg: ByzMsg {
                path,
                value: AgreementValue::Value(v),
            },
        }
    }

    /// Drives a 2-node channel mesh by hand: node 1 should see Timeout 0,
    /// the delivery, then timeouts driven by node 0's marks.
    #[test]
    fn channel_mesh_round_trip_with_marks() {
        let mut mesh = channel_mesh(2, 2, &LinkChaos::healthy(), MeshConfig::default());
        let mut n1 = mesh.pop().unwrap();
        let mut n0 = mesh.pop().unwrap();

        assert_eq!(
            n0.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 0 })
        );
        n0.send(
            nid(1),
            ByzMsg {
                path: Path::root(nid(0)),
                value: AgreementValue::Value(9u64),
            },
        );
        assert_eq!(
            n1.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 0 })
        );
        // Node 1's next poll flushes its Mark(0) and must surface the
        // envelope before any round advance.
        match n1.poll() {
            PollOutcome::Event(NodeEvent::Deliver { src, msg }) => {
                assert_eq!(src, nid(0));
                assert_eq!(msg.path, Path::root(nid(0)));
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        // Node 0 flushes Mark(0), hears node 1's, advances; then node 1
        // hears node 0's mark and follows.
        assert_eq!(
            n0.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 1 })
        );
        assert_eq!(
            n1.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 1 })
        );
        // Round 1 closes the same way; round 2 is the final timeout.
        assert_eq!(n1.poll(), PollOutcome::Pending, "peer mark not in yet");
        assert_eq!(
            n0.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 2 })
        );
        assert_eq!(
            n1.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 2 })
        );
        assert_eq!(n1.poll(), PollOutcome::Closed);
        assert_eq!(n0.poll(), PollOutcome::Closed);
        assert_eq!(n1.stats().delivered, 1);
        assert_eq!(n0.stats().sent, 1);
        assert_eq!(n0.stats().false_timeouts, 0);
    }

    #[test]
    fn dead_peer_times_out_but_round_structure_survives() {
        let mut mesh = channel_mesh(
            2,
            1,
            &LinkChaos::healthy(),
            MeshConfig {
                round_timeout: Duration::from_millis(30),
                ..MeshConfig::default()
            },
        );
        let mut n0 = mesh.remove(0);
        drop(mesh); // node 1 never runs: a crashed peer
        assert_eq!(
            n0.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 0 })
        );
        let start = Instant::now();
        loop {
            match n0.poll() {
                PollOutcome::Pending => thread::sleep(Duration::from_millis(2)),
                PollOutcome::Event(NodeEvent::Timeout { round: 1 }) => break,
                other => panic!("expected round-1 timeout, got {other:?}"),
            }
            assert!(
                start.elapsed() < Duration::from_secs(2),
                "no deadline fired"
            );
        }
        assert_eq!(n0.poll(), PollOutcome::Closed);
        assert_eq!(n0.stats().false_timeouts, 1);
    }

    #[test]
    fn early_envelopes_are_gated_until_their_round() {
        // Hand-feed node 0's inbox: a level-2 envelope (round-1 traffic
        // from a peer that has raced ahead) must not surface during round
        // 0 — the machine would discard it as from the future.
        let (tx, rx) = channel();
        let mut t = MeshTransport::new(
            nid(0),
            3,
            2,
            LinkChaos::healthy(),
            BTreeMap::new(),
            rx,
            MeshConfig::default(),
            Arc::new(AtomicBool::new(false)),
        );
        assert_eq!(
            t.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 0 })
        );
        tx.send(envelope(2, Path::root(nid(1)).child(nid(2)), 7))
            .unwrap();
        assert_eq!(t.poll(), PollOutcome::Pending, "future envelope gated");
        // Marks for round 0 from both peers release the next round.
        tx.send(Frame::Mark {
            src: nid(1),
            round: 0,
        })
        .unwrap();
        tx.send(Frame::Mark {
            src: nid(2),
            round: 0,
        })
        .unwrap();
        assert_eq!(
            t.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 1 })
        );
        match t.poll() {
            PollOutcome::Event(NodeEvent::Deliver { src, .. }) => assert_eq!(src, nid(2)),
            other => panic!("gated envelope should release in round 1, got {other:?}"),
        }
    }

    #[test]
    fn tcp_mesh_handshake_carries_frames_both_ways() {
        let mut mesh = tcp_mesh(2, 1, &LinkChaos::healthy(), MeshConfig::default()).unwrap();
        let mut n1 = mesh.pop().unwrap();
        let mut n0 = mesh.pop().unwrap();
        assert_eq!(
            n0.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 0 })
        );
        assert_eq!(
            n1.poll(),
            PollOutcome::Event(NodeEvent::Timeout { round: 0 })
        );
        n0.send(
            nid(1),
            ByzMsg {
                path: Path::root(nid(0)),
                value: AgreementValue::Value(1234u64),
            },
        );
        // Spin until the reader thread forwards the frame.
        let start = Instant::now();
        loop {
            match n1.poll() {
                PollOutcome::Event(NodeEvent::Deliver { src, msg }) => {
                    assert_eq!(src, nid(0));
                    assert_eq!(msg.value, AgreementValue::Value(1234));
                    break;
                }
                PollOutcome::Event(NodeEvent::Timeout { .. }) => {
                    panic!("round advanced before the envelope was drained")
                }
                PollOutcome::Pending => thread::sleep(Duration::from_millis(1)),
                PollOutcome::Closed => panic!("closed early"),
            }
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "frame never arrived"
            );
        }
    }
}
