//! Property-based tests for the channel-system application.

use channels::prelude::*;
use degradable::adversary::Strategy;
use degradable::{Params, Val};
use proptest::prelude::*;
use simnet::{NodeId, SimRng};
use std::collections::{BTreeMap, BTreeSet};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// C.2: the degradable system's external entity never obtains an
    /// incorrect value with a fault-free sender and f <= u — for any
    /// sampled placement and strategy mix.
    #[test]
    fn degradable_system_never_incorrect_within_u(
        sensor in 0u64..1_000_000,
        seed in 0u64..10_000,
        f in 0usize..3,
    ) {
        let system = ChannelSystem::new(Architecture::Degradable {
            params: Params::new(1, 2).unwrap(),
        });
        let mut rng = SimRng::seed(seed);
        let battery = Strategy::battery(sensor, sensor ^ 0xBAD, seed);
        let mut strategies: BTreeMap<NodeId, Strategy<u64>> = BTreeMap::new();
        for i in rng.choose_indices(4, f) {
            let (_, s) = battery[rng.below(battery.len() as u64) as usize].clone();
            strategies.insert(NodeId::new(i + 1), s);
        }
        let r = system.run_cycle(sensor, &strategies);
        prop_assert_ne!(r.outcome, ExternalOutcome::Incorrect);
        prop_assert!(r.fault_free_input_classes <= 2);
        if f <= 1 {
            prop_assert_eq!(r.outcome, ExternalOutcome::Correct);
        }
    }

    /// B.1: the Byzantine system is always correct within its design
    /// limit.
    #[test]
    fn byzantine_system_correct_within_m(
        sensor in 0u64..1_000_000,
        seed in 0u64..10_000,
        ch in 1usize..4,
        strat_idx in 0usize..6,
    ) {
        let system = ChannelSystem::new(Architecture::Byzantine { m: 1 });
        let battery = Strategy::battery(sensor, sensor ^ 0xBAD, seed);
        let (_, s) = battery[strat_idx % battery.len()].clone();
        let strategies: BTreeMap<NodeId, Strategy<u64>> =
            [(NodeId::new(ch), s)].into_iter().collect();
        let r = system.run_cycle(sensor, &strategies);
        prop_assert_eq!(r.outcome, ExternalOutcome::Correct);
        prop_assert_eq!(r.fault_free_input_classes, 1);
    }

    /// Replicated log: non-hole slots never conflict across fault-free
    /// replicas, for any command stream and any f <= u fault scenario.
    #[test]
    fn replica_log_no_conflicts(
        commands in proptest::collection::vec(0u64..1_000, 1..8),
        seed in 0u64..5_000,
        f in 0usize..3,
    ) {
        let mut log = ReplicatedLog::new(Params::new(1, 2).unwrap());
        let mut rng = SimRng::seed(seed);
        let faulty_idx = rng.choose_indices(4, f);
        let faulty: BTreeSet<NodeId> =
            faulty_idx.iter().map(|&i| NodeId::new(i + 1)).collect();
        for (slot, &c) in commands.iter().enumerate() {
            let battery = Strategy::battery(c, c ^ 1, seed + slot as u64);
            let strategies: BTreeMap<NodeId, Strategy<u64>> = faulty
                .iter()
                .map(|&node| {
                    let (_, s) = battery[rng.below(battery.len() as u64) as usize].clone();
                    (node, s)
                })
                .collect();
            log.append(c, &strategies);
        }
        prop_assert!(log.check(&faulty, f).is_none());
    }

    /// Repair is idempotent and never creates conflicts.
    #[test]
    fn replica_repair_safe(command in 0u64..1_000, seed in 0u64..2_000) {
        let mut log = ReplicatedLog::new(Params::new(1, 2).unwrap());
        let silent: BTreeMap<NodeId, Strategy<u64>> = [
            (NodeId::new(1), Strategy::Silent),
            (NodeId::new(2), Strategy::Silent),
        ]
        .into_iter()
        .collect();
        log.append(command, &silent);
        let _ = seed;
        log.repair(0, command, &BTreeMap::new());
        log.repair(0, command, &BTreeMap::new());
        prop_assert!(log.check(&BTreeSet::new(), 0).is_none());
        for i in 1..5 {
            prop_assert_eq!(log.log_of(NodeId::new(i))[0], Val::Value(command));
        }
    }

    /// Safe flights: without faults the control loop never leaves the
    /// envelope regardless of disturbance seed.
    #[test]
    fn clean_flights_safe(seed in 0u64..2_000) {
        let config = FlightConfig {
            burst_len: 0,
            seed,
            ..FlightConfig::default()
        };
        let r = fly(
            Architecture::Degradable { params: Params::new(1, 2).unwrap() },
            config,
        );
        prop_assert!(!r.crashed);
        prop_assert_eq!(r.wrong_actuations, 0);
    }
}
