//! # channels — the multiple-channel application of Section 3
//!
//! The paper motivates degradable agreement with fault-tolerant
//! multiple-channel systems (Figure 1): a sensor distributes a value to
//! redundant computation channels whose outputs an external entity votes
//! over. This crate models both architectures and their recovery
//! behaviour:
//!
//! * [`system`] — the sensor / channels / external-voter pipeline for the
//!   Byzantine (Figure 1a), degradable (Figure 1b) and naive architectures,
//!   with the B.1–B.2 / C.1–C.3 outcome classification;
//! * [`recovery`] — forward recovery (fault masking), backward recovery
//!   (retry on default) and the safe action, with statistics;
//! * [`flybywire`] — the paper's fly-by-wire safety scenario as a closed
//!   control loop: the Byzantine system crashes under a two-fault burst,
//!   the degradable system alerts the pilot and holds;
//! * [`montecarlo`] — parallel reliability sweeps quantifying
//!   correct / default / incorrect probabilities per architecture;
//! * [`replica`] — a replicated command log over degradable agreement:
//!   logs diverge only by detectable holes, repaired by backward recovery;
//! * [`reliability`] — closed-form binomial outcome bounds per
//!   architecture, cross-validated against the Monte Carlo sweeps;
//! * [`fusion`] — the multi-sensor variant Section 3 mentions: several
//!   sensors measure one quantity, channels fuse agreed readings.
//!
//! ```
//! use channels::prelude::*;
//! use degradable::Params;
//! use std::collections::BTreeMap;
//!
//! // Figure 1(b): 4 channels, 1/2-degradable distribution, 3-of-4 vote.
//! let system = ChannelSystem::new(Architecture::Degradable {
//!     params: Params::new(1, 2)?,
//! });
//! let report = system.run_cycle(42, &BTreeMap::new());
//! assert_eq!(report.outcome, ExternalOutcome::Correct);
//! # Ok::<(), degradable::ParamsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flybywire;
pub mod fusion;
pub mod montecarlo;
pub mod recovery;
pub mod reliability;
pub mod replica;
pub mod system;

pub use flybywire::{fly, FlightConfig, FlightReport};
pub use fusion::{run_fusion, Fused, FusionConfig, FusionOutcome};
pub use montecarlo::{design_limit, run_monte_carlo, MonteCarloConfig, OutcomeCounts, SweepResult};
pub use recovery::{CycleResolution, RecoveryDriver, RecoveryPolicy, RecoveryStats};
pub use reliability::{bounds, mission_safety, ReliabilityBounds};
pub use replica::{LogViolation, ReplicatedLog, SlotReport};
pub use system::{channel_compute, Architecture, ChannelSystem, CycleReport, ExternalOutcome};

/// Convenience glob import.
pub mod prelude {
    pub use crate::flybywire::{fly, FlightConfig, FlightReport};
    pub use crate::fusion::{run_fusion, Fused, FusionConfig, FusionOutcome};
    pub use crate::montecarlo::{
        design_limit, run_monte_carlo, MonteCarloConfig, OutcomeCounts, SweepResult,
    };
    pub use crate::recovery::{CycleResolution, RecoveryDriver, RecoveryPolicy, RecoveryStats};
    pub use crate::reliability::{bounds, mission_safety, ReliabilityBounds};
    pub use crate::replica::{LogViolation, ReplicatedLog, SlotReport};
    pub use crate::system::{
        channel_compute, Architecture, ChannelSystem, CycleReport, ExternalOutcome,
    };
}
