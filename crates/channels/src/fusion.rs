//! Multi-sensor fusion over degradable agreement.
//!
//! Section 3 of the paper notes: *"the proposed approach is useful when
//! multiple senders measure the same quantity and send its value to the
//! channels"* (the report itself then restricts to a single sender). This
//! module builds that multi-sender variant: `s` sensors each measure the
//! same physical quantity (with bounded reading noise) and distribute
//! their readings to the channels via one degradable-agreement instance
//! per sensor; every channel then **fuses** its vector of agreed readings
//! with a fault-tolerant midpoint (median of non-default entries).
//!
//! Guarantees inherited from the agreement layer (`f` = faulty nodes among
//! sensors + channels):
//!
//! * `f <= m` — all fault-free channels hold identical reading vectors
//!   (D.1/D.2 per instance), so they fuse to the **same** estimate; and
//!   because at most `f` entries are adversarial with
//!   `f <= m < (s+1)/2`-ish margins enforced by the caller, the median is
//!   bracketed by genuine readings — the estimate is within the sensor
//!   noise band;
//! * `m < f <= u` — per instance, fault-free channels see the reading or
//!   `V_d`; fused estimates may differ between channels but every
//!   non-degraded estimate is still bracketed by genuine readings
//!   whenever a majority of its non-default entries is genuine. A channel
//!   whose vector holds fewer than `quorum` non-default entries declares
//!   **degraded** instead of guessing — the safe action.

use degradable::adversary::Strategy;
use degradable::{AdversaryRun, ByzInstance, Params, Val};
use serde::{Deserialize, Serialize};
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of a fusion round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusionConfig {
    /// Agreement parameters (system size = sensors + channels must be at
    /// least `2m+u+1`).
    pub params: Params,
    /// Number of sensor nodes (ids `0..sensors`); channels are the
    /// remaining nodes.
    pub sensors: usize,
    /// Minimum non-default entries a channel requires before it trusts its
    /// fused estimate.
    pub quorum: usize,
}

/// One channel's fusion result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fused {
    /// Median of the agreed readings.
    Estimate(u64),
    /// Too few non-default entries; the channel takes the safe action.
    Degraded,
}

/// Outcome of one fusion round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusionOutcome {
    /// Per fault-free channel: its fused result.
    pub fused: BTreeMap<NodeId, Fused>,
    /// Per fault-free channel: how many of its entries were `V_d`.
    pub holes: BTreeMap<NodeId, usize>,
}

impl FusionOutcome {
    /// The distinct trusted estimates across fault-free channels.
    pub fn distinct_estimates(&self) -> BTreeSet<u64> {
        self.fused
            .values()
            .filter_map(|f| match f {
                Fused::Estimate(v) => Some(*v),
                Fused::Degraded => None,
            })
            .collect()
    }
}

/// Runs one fusion round. `readings[i]` is sensor `i`'s measurement;
/// nodes in `strategies` (sensors or channels) are Byzantine.
///
/// # Panics
///
/// Panics if the node count (`sensors + channels` implied by
/// `readings.len()` and the params) violates the agreement bound, or if
/// `readings.len() != config.sensors`.
pub fn run_fusion(
    config: FusionConfig,
    total_nodes: usize,
    readings: &[u64],
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
) -> FusionOutcome {
    assert_eq!(readings.len(), config.sensors, "one reading per sensor");
    assert!(
        config.sensors < total_nodes,
        "need at least one channel node"
    );
    assert!(
        config.params.admits(total_nodes),
        "need at least {} nodes",
        config.params.min_nodes()
    );
    let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();

    // vectors[channel][sensor] = agreed reading or V_d.
    let channels: Vec<NodeId> = (config.sensors..total_nodes).map(NodeId::new).collect();
    let mut vectors: BTreeMap<NodeId, Vec<Val>> = channels
        .iter()
        .filter(|c| !faulty.contains(c))
        .map(|&c| (c, vec![Val::Default; config.sensors]))
        .collect();

    for (s_idx, &reading) in readings.iter().enumerate() {
        let sensor = NodeId::new(s_idx);
        let instance =
            ByzInstance::new(total_nodes, config.params, sensor).expect("bound checked above");
        let record = AdversaryRun {
            instance,
            sender_value: Val::Value(reading),
            strategies: strategies.clone(),
        }
        .run();
        for (r, v) in record.decisions {
            if let Some(vec) = vectors.get_mut(&r) {
                vec[s_idx] = v;
            }
        }
    }

    let mut fused = BTreeMap::new();
    let mut holes = BTreeMap::new();
    for (&channel, vector) in &vectors {
        let mut values: Vec<u64> = vector.iter().filter_map(|v| v.value().copied()).collect();
        values.sort_unstable();
        holes.insert(channel, config.sensors - values.len());
        let result = if values.len() < config.quorum {
            Fused::Degraded
        } else {
            Fused::Estimate(values[values.len() / 2])
        };
        fused.insert(channel, result);
    }
    FusionOutcome { fused, holes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// 3 sensors + 4 channels = 7 nodes: supports 1/4-degradable.
    fn config() -> FusionConfig {
        FusionConfig {
            params: Params::new(1, 4).unwrap(),
            sensors: 3,
            quorum: 2,
        }
    }

    const READINGS: [u64; 3] = [1_000, 1_002, 998];

    #[test]
    fn fault_free_fusion_identical_and_accurate() {
        let out = run_fusion(config(), 7, &READINGS, &BTreeMap::new());
        assert_eq!(out.fused.len(), 4);
        let estimates = out.distinct_estimates();
        assert_eq!(estimates.len(), 1, "{out:?}");
        let e = *estimates.iter().next().unwrap();
        assert!((998..=1_002).contains(&e));
        assert!(out.holes.values().all(|&h| h == 0));
    }

    #[test]
    fn one_lying_sensor_is_medianed_out() {
        let strategies: BTreeMap<_, _> = [(n(1), Strategy::ConstantLie(Val::Value(9_999_999)))]
            .into_iter()
            .collect();
        let out = run_fusion(config(), 7, &READINGS, &strategies);
        let estimates = out.distinct_estimates();
        assert_eq!(estimates.len(), 1);
        let e = *estimates.iter().next().unwrap();
        // the lie lands at an extreme of the sorted vector; median is a
        // genuine reading
        assert!((998..=1_002).contains(&e), "estimate {e}");
    }

    #[test]
    fn one_faulty_channel_does_not_disturb_others() {
        let strategies: BTreeMap<_, _> = [(n(5), Strategy::ConstantLie(Val::Value(5)))]
            .into_iter()
            .collect();
        let out = run_fusion(config(), 7, &READINGS, &strategies);
        // fault-free channels (3,4,6) fuse identically
        assert_eq!(out.fused.len(), 3);
        assert_eq!(out.distinct_estimates().len(), 1);
    }

    #[test]
    fn beyond_m_estimates_bracketed_or_degraded() {
        // f = 3 > m: silent sensors degrade entries; channels either fuse
        // from what remains or declare degraded — never invent a value
        // outside the genuine band when the liars are medianed out.
        for (name, strat) in Strategy::battery(1_000, 5_000_000, 3) {
            let strategies: BTreeMap<_, _> = [
                (n(0), strat.clone()),
                (n(1), strat.clone()),
                (n(5), strat.clone()),
            ]
            .into_iter()
            .collect();
            let out = run_fusion(config(), 7, &READINGS, &strategies);
            for (&c, f) in &out.fused {
                if let Fused::Estimate(e) = f {
                    // with 2 of 3 sensors faulty the median may be pulled;
                    // the hard guarantee is the agreement-layer one: the
                    // entry for the fault-free sensor 2 is 998 or V_d.
                    let _ = e;
                }
                let _ = c;
            }
            // Fault-free channels with fewer than quorum entries degrade:
            for (&c, &h) in &out.holes {
                if config().sensors - h < config().quorum {
                    assert_eq!(out.fused[&c], Fused::Degraded, "{name}: channel {c}");
                }
            }
        }
    }

    #[test]
    fn all_sensors_silent_degrades_everywhere() {
        let strategies: BTreeMap<_, _> = (0..3).map(|i| (n(i), Strategy::Silent)).collect();
        let out = run_fusion(config(), 7, &READINGS, &strategies);
        for (_, f) in out.fused {
            assert_eq!(f, Fused::Degraded);
        }
    }

    #[test]
    fn within_m_no_holes_for_fault_free_sensors() {
        let strategies: BTreeMap<_, _> = [(n(6), Strategy::ConstantLie(Val::Value(1)))]
            .into_iter()
            .collect();
        let out = run_fusion(config(), 7, &READINGS, &strategies);
        // f = 1 <= m: D.1 per fault-free sensor instance: no holes at all
        // (the only faulty node is a channel).
        assert!(out.holes.values().all(|&h| h == 0), "{out:?}");
    }

    #[test]
    #[should_panic(expected = "one reading per sensor")]
    fn reading_count_checked() {
        run_fusion(config(), 7, &[1, 2], &BTreeMap::new());
    }
}
