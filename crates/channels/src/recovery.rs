//! Forward and backward recovery (Section 3).
//!
//! The paper frames degradable agreement's value in recovery terms:
//!
//! * up to `m` faults the vote **masks** the fault — *forward recovery*:
//!   the system proceeds with the correct value, no rollback;
//! * between `m+1` and `u` faults the external entity obtains the correct
//!   value **or the default value**; the default triggers *backward
//!   recovery* (redo the computation) or a *safe action* — in either case
//!   the system never acts on a wrong value;
//! * a classic Byzantine-agreement system in the same regime may silently
//!   act on a **wrong** value.
//!
//! [`RecoveryDriver`] turns cycle outcomes into those actions and keeps
//! the statistics the reliability experiments report.

use crate::system::{ChannelSystem, ExternalOutcome};
use degradable::adversary::Strategy;
use serde::{Deserialize, Serialize};
use simnet::NodeId;
use std::collections::BTreeMap;

/// Recovery policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Maximum backward-recovery retries per cycle before falling back to
    /// the safe action.
    pub max_retries: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { max_retries: 2 }
    }
}

/// What the driver did for one logical cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CycleResolution {
    /// Correct output on the first attempt (possibly masking up to `m`
    /// faults — forward recovery).
    Forward,
    /// Correct output after `retries` backward-recovery attempts.
    RecoveredBackward {
        /// Number of retries that were needed.
        retries: usize,
    },
    /// Retries exhausted; the safe (default) action was taken.
    SafeAction,
    /// The external entity accepted a wrong value — undetected failure.
    UndetectedFailure,
}

/// Aggregate statistics over many cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Cycles resolved forward (first attempt correct).
    pub forward: usize,
    /// Cycles resolved by backward recovery.
    pub backward: usize,
    /// Total retry attempts spent.
    pub retries: usize,
    /// Cycles ending in the safe action.
    pub safe_actions: usize,
    /// Cycles ending in an undetected (wrong-value) failure.
    pub undetected_failures: usize,
}

impl RecoveryStats {
    /// Total cycles recorded.
    pub fn cycles(&self) -> usize {
        self.forward + self.backward + self.safe_actions + self.undetected_failures
    }

    /// Whether the system ever acted on a wrong value.
    pub fn is_safe(&self) -> bool {
        self.undetected_failures == 0
    }
}

/// Drives a [`ChannelSystem`] through cycles with retry-based backward
/// recovery.
#[derive(Debug, Clone)]
pub struct RecoveryDriver {
    system: ChannelSystem,
    policy: RecoveryPolicy,
    stats: RecoveryStats,
}

impl RecoveryDriver {
    /// Creates a driver.
    pub fn new(system: ChannelSystem, policy: RecoveryPolicy) -> Self {
        RecoveryDriver {
            system,
            policy,
            stats: RecoveryStats::default(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// Runs one logical cycle. `faults_for_attempt(k)` supplies the fault
    /// scenario of retry attempt `k` (attempt 0 is the initial try) —
    /// transient faults are modelled by returning a smaller fault map for
    /// later attempts.
    pub fn run_cycle(
        &mut self,
        sensor_value: u64,
        mut faults_for_attempt: impl FnMut(usize) -> BTreeMap<NodeId, Strategy<u64>>,
    ) -> CycleResolution {
        for attempt in 0..=self.policy.max_retries {
            let report = self
                .system
                .run_cycle(sensor_value, &faults_for_attempt(attempt));
            match report.outcome {
                ExternalOutcome::Correct => {
                    return if attempt == 0 {
                        self.stats.forward += 1;
                        CycleResolution::Forward
                    } else {
                        self.stats.backward += 1;
                        self.stats.retries += attempt;
                        CycleResolution::RecoveredBackward { retries: attempt }
                    };
                }
                ExternalOutcome::Default => continue, // backward recovery: retry
                ExternalOutcome::Incorrect => {
                    self.stats.undetected_failures += 1;
                    return CycleResolution::UndetectedFailure;
                }
            }
        }
        self.stats.retries += self.policy.max_retries;
        self.stats.safe_actions += 1;
        CycleResolution::SafeAction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::Architecture;
    use degradable::{Params, Val};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn deg4_driver() -> RecoveryDriver {
        RecoveryDriver::new(
            ChannelSystem::new(Architecture::Degradable {
                params: Params::new(1, 2).unwrap(),
            }),
            RecoveryPolicy::default(),
        )
    }

    fn lie(v: u64) -> Strategy<u64> {
        Strategy::ConstantLie(Val::Value(v))
    }

    #[test]
    fn clean_cycle_is_forward() {
        let mut d = deg4_driver();
        let r = d.run_cycle(42, |_| BTreeMap::new());
        assert_eq!(r, CycleResolution::Forward);
        assert_eq!(d.stats().forward, 1);
    }

    #[test]
    fn one_fault_is_masked_forward() {
        let mut d = deg4_driver();
        let r = d.run_cycle(42, |_| [(n(2), lie(1))].into_iter().collect());
        assert_eq!(
            r,
            CycleResolution::Forward,
            "m-masked fault is forward recovery"
        );
    }

    #[test]
    fn transient_double_fault_recovers_backward() {
        // Two faults on attempt 0 degrade the output to default; the
        // transient clears on retry: backward recovery succeeds.
        let mut d = deg4_driver();
        let r = d.run_cycle(42, |attempt| {
            if attempt == 0 {
                // Two silent channels: fault-free channels cannot reach the
                // (m+u) = 3 threshold for the computed value? They can —
                // 2 fault-free channels + nothing else... only 2 < 3: vote
                // defaults. (4 channels, 2 silent -> 2 correct outputs.)
                [(n(1), Strategy::Silent), (n(2), Strategy::Silent)]
                    .into_iter()
                    .collect()
            } else {
                BTreeMap::new()
            }
        });
        assert_eq!(r, CycleResolution::RecoveredBackward { retries: 1 });
        assert!(d.stats().is_safe());
    }

    #[test]
    fn permanent_double_fault_ends_safe() {
        let mut d = deg4_driver();
        let r = d.run_cycle(42, |_| {
            [(n(1), Strategy::Silent), (n(2), Strategy::Silent)]
                .into_iter()
                .collect()
        });
        assert_eq!(r, CycleResolution::SafeAction);
        assert_eq!(d.stats().safe_actions, 1);
        assert!(d.stats().is_safe());
    }

    #[test]
    fn byzantine_arch_can_fail_undetected() {
        // The 3-channel Byzantine system with 2 colluding faults that lie
        // consistently *at the channel-output layer* can push a wrong
        // value through the 2-of-3 vote. Our faulty channels emit
        // hash-based garbage, which is identical for identical (channel,
        // input) pairs but differs across channels, so the raw Incorrect
        // outcome needs the distribution layer to deceive a fault-free
        // channel instead: two liars telling channel 1 a wrong sender
        // value can do exactly that under OM(1) with f=2 > m.
        let sys = ChannelSystem::new(Architecture::Byzantine { m: 1 });
        let mut d = RecoveryDriver::new(sys, RecoveryPolicy::default());
        let mut saw_failure = false;
        for v in 0..50u64 {
            let r = d.run_cycle(v, |_| {
                [(n(2), lie(v ^ 1)), (n(3), lie(v ^ 1))]
                    .into_iter()
                    .collect()
            });
            if r == CycleResolution::UndetectedFailure {
                saw_failure = true;
                break;
            }
        }
        assert!(
            saw_failure,
            "expected the B-system to accept a wrong value under 2 faults: {:?}",
            d.stats()
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut d = deg4_driver();
        d.run_cycle(1, |_| BTreeMap::new());
        d.run_cycle(2, |_| {
            [(n(1), Strategy::Silent), (n(2), Strategy::Silent)]
                .into_iter()
                .collect()
        });
        let s = d.stats();
        assert_eq!(s.cycles(), 2);
        assert_eq!(s.forward, 1);
        assert_eq!(s.safe_actions, 1);
    }
}
