//! A fly-by-wire control loop — the paper's motivating safety scenario.
//!
//! > "if a controller in a fly-by-wire system receives a default value
//! > from the computer, as a safety precaution it can inform the pilot of
//! > the problem."
//!
//! A simple discretized pitch-control plant: each cycle the sensor reads
//! the pitch error, the channel system computes a correction, and the
//! actuator applies it. The three external outcomes map to:
//!
//! * **Correct** → the proper correction is applied; the error shrinks;
//! * **Default** → the actuator *holds* (safe action) and the pilot is
//!   alerted; the error drifts by the disturbance only;
//! * **Incorrect** → a wrong correction is applied; the error can grow —
//!   if it leaves the safe envelope the flight is lost.
//!
//! The experiment compares the Figure 1(a) 3-channel Byzantine system with
//! the Figure 1(b) 4-channel 1/2-degradable system under identical
//! two-fault bursts: the former can crash, the latter degrades safely.

use crate::system::{Architecture, ChannelSystem, ExternalOutcome};
use degradable::adversary::Strategy;
use degradable::Val;
use serde::{Deserialize, Serialize};
use simnet::{NodeId, SimRng};
use std::collections::BTreeMap;

/// Configuration of one flight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlightConfig {
    /// Number of control cycles to fly.
    pub cycles: usize,
    /// Pitch error beyond which the flight is lost.
    pub safe_envelope: i64,
    /// Per-cycle disturbance magnitude.
    pub disturbance: i64,
    /// Cycle at which a two-channel fault burst begins.
    pub burst_start: usize,
    /// Length of the fault burst in cycles.
    pub burst_len: usize,
    /// RNG seed for the disturbance sequence.
    pub seed: u64,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            cycles: 60,
            safe_envelope: 1_000,
            disturbance: 40,
            burst_start: 20,
            burst_len: 10,
            seed: 2024,
        }
    }
}

/// Result of one flight.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightReport {
    /// Architecture label.
    pub architecture: String,
    /// Pitch error trajectory (one entry per cycle).
    pub trajectory: Vec<i64>,
    /// Cycles with a correct actuation.
    pub correct_cycles: usize,
    /// Cycles where the actuator held and the pilot was alerted.
    pub pilot_alerts: usize,
    /// Cycles where a wrong correction was applied.
    pub wrong_actuations: usize,
    /// Whether the error ever left the safe envelope.
    pub crashed: bool,
}

/// The pitch correction a fault-free channel computes for sensor reading
/// `err`: proportional control, gain 1/2 (toward zero).
fn control_law(err: i64) -> i64 {
    -err / 2
}

/// Encodes a pitch error as the u64 sensor word (two's-complement-ish
/// offset encoding so the agreement layer sees plain u64s).
fn encode(err: i64) -> u64 {
    (err + (1 << 40)) as u64
}

/// Inverse of [`encode`].
#[cfg(test)]
fn decode(word: u64) -> i64 {
    word as i64 - (1 << 40)
}

/// Flies one flight with the given channel-system architecture. During the
/// burst window, two channels are Byzantine and collude on a wrong sensor
/// value (the worst case for a 3-channel system, which then computes and
/// agrees on a wrong correction).
pub fn fly(arch: Architecture, config: FlightConfig) -> FlightReport {
    let system = ChannelSystem::new(arch);
    let mut rng = SimRng::seed(config.seed);
    let mut err: i64 = 200;
    let mut trajectory = Vec::with_capacity(config.cycles);
    let mut correct_cycles = 0;
    let mut pilot_alerts = 0;
    let mut wrong_actuations = 0;
    let mut crashed = false;

    for cycle in 0..config.cycles {
        let sensor = encode(err);
        let in_burst = cycle >= config.burst_start && cycle < config.burst_start + config.burst_len;
        let strategies: BTreeMap<NodeId, Strategy<u64>> = if in_burst {
            // Two colluding channels pretend the pitch error is huge and
            // opposite, aiming to push the plane the wrong way.
            let fake = encode(-4 * err.max(100));
            [
                (NodeId::new(1), Strategy::ConstantLie(Val::Value(fake))),
                (NodeId::new(2), Strategy::ConstantLie(Val::Value(fake))),
            ]
            .into_iter()
            .collect()
        } else {
            BTreeMap::new()
        };

        let report = system.run_cycle(sensor, &strategies);
        let correction = match report.outcome {
            ExternalOutcome::Correct => {
                correct_cycles += 1;
                control_law(err)
            }
            ExternalOutcome::Default => {
                pilot_alerts += 1;
                0 // hold: the safe action
            }
            ExternalOutcome::Incorrect => {
                wrong_actuations += 1;
                // The voted (wrong) output corresponds to the control law
                // applied to the colluders' fake reading.
                match report.voted.value() {
                    Some(_) => {
                        let fake = -4 * err.max(100);
                        control_law(fake)
                    }
                    None => 0,
                }
            }
        };

        let disturbance =
            (rng.below(2 * config.disturbance as u64 + 1)) as i64 - config.disturbance;
        err += correction + disturbance;
        trajectory.push(err);
        if err.abs() > config.safe_envelope {
            crashed = true;
            break;
        }
    }

    FlightReport {
        architecture: arch.label(),
        trajectory,
        correct_cycles,
        pilot_alerts,
        wrong_actuations,
        crashed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use degradable::Params;

    fn byz() -> Architecture {
        Architecture::Byzantine { m: 1 }
    }

    fn deg() -> Architecture {
        Architecture::Degradable {
            params: Params::new(1, 2).unwrap(),
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for err in [-1_000_000i64, -1, 0, 1, 123_456] {
            assert_eq!(decode(encode(err)), err);
        }
    }

    #[test]
    fn clean_flight_stays_in_envelope() {
        let config = FlightConfig {
            burst_len: 0,
            ..FlightConfig::default()
        };
        for arch in [byz(), deg()] {
            let r = fly(arch, config);
            assert!(!r.crashed, "{}: {:?}", r.architecture, r.trajectory);
            assert_eq!(r.wrong_actuations, 0);
            assert_eq!(r.pilot_alerts, 0);
        }
    }

    #[test]
    fn byzantine_system_crashes_under_burst() {
        let r = fly(byz(), FlightConfig::default());
        assert!(r.wrong_actuations > 0, "{r:?}");
        assert!(
            r.crashed,
            "expected the 3-channel system to leave the envelope: {r:?}"
        );
    }

    #[test]
    fn degradable_system_degrades_safely_under_burst() {
        let r = fly(deg(), FlightConfig::default());
        assert_eq!(r.wrong_actuations, 0, "{r:?}");
        assert!(
            r.pilot_alerts > 0,
            "the pilot should have been alerted: {r:?}"
        );
        assert!(!r.crashed, "{r:?}");
    }

    #[test]
    fn degradable_resumes_after_burst() {
        let config = FlightConfig {
            cycles: 80,
            ..FlightConfig::default()
        };
        let r = fly(deg(), config);
        assert!(!r.crashed);
        // After the burst ends the system returns to correct operation.
        assert!(r.correct_cycles >= config.cycles - config.burst_len - 1);
    }
}
