//! Monte Carlo reliability comparison (Section 3's motivation, quantified).
//!
//! Sweeps a per-node fault probability and measures, at the external
//! entity, the probability of a correct, default, and incorrect outcome
//! for each architecture. The paper's qualitative claim made measurable:
//! the degradable system converts the Byzantine system's *incorrect*
//! outcomes into *default* (safe) outcomes once faults exceed `m`.
//!
//! Trials are independent and seeded; they are distributed over worker
//! threads by [`harness::SweepRunner`], which derives each trial's RNG
//! from `(seed, trial_index)` — so the sweep's result is bit-identical
//! for any worker count.

use crate::system::{Architecture, ChannelSystem, ExternalOutcome};
use degradable::adversary::Strategy;
use harness::SweepRunner;
use serde::{Deserialize, Serialize};
use simnet::{NodeId, SimRng};
use std::collections::BTreeMap;

/// Aggregated outcome distribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Trials ending correct.
    pub correct: usize,
    /// Trials ending in the default (safe) outcome.
    pub default: usize,
    /// Trials ending incorrect (unsafe).
    pub incorrect: usize,
}

impl OutcomeCounts {
    /// Total trials.
    pub fn total(&self) -> usize {
        self.correct + self.default + self.incorrect
    }

    /// Fraction of incorrect trials.
    pub fn p_incorrect(&self) -> f64 {
        self.incorrect as f64 / self.total().max(1) as f64
    }

    /// Fraction of correct trials.
    pub fn p_correct(&self) -> f64 {
        self.correct as f64 / self.total().max(1) as f64
    }

    /// Fraction of default trials.
    pub fn p_default(&self) -> f64 {
        self.default as f64 / self.total().max(1) as f64
    }

    fn add(&mut self, outcome: ExternalOutcome) {
        match outcome {
            ExternalOutcome::Correct => self.correct += 1,
            ExternalOutcome::Default => self.default += 1,
            ExternalOutcome::Incorrect => self.incorrect += 1,
        }
    }

    /// Accumulates another count set (e.g. when aggregating shards).
    pub fn merge(&mut self, other: OutcomeCounts) {
        self.correct += other.correct;
        self.default += other.default;
        self.incorrect += other.incorrect;
    }
}

/// Configuration of a Monte Carlo sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Probability that each *channel* is faulty in a trial (the sender is
    /// kept fault-free: the comparison targets conditions B.1/C.1/C.2,
    /// which assume a fault-free sender).
    pub channel_fault_p: f64,
    /// Number of trials.
    pub trials: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker threads.
    pub workers: usize,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            channel_fault_p: 0.1,
            trials: 2_000,
            seed: 77,
            workers: 4,
        }
    }
}

/// Sweep result split by whether the sampled fault count stayed within the
/// architecture's design limit (`u` for degradable, `m` for Byzantine, 0
/// for naive) — the conditions only promise anything within that limit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepResult {
    /// All trials.
    pub overall: OutcomeCounts,
    /// Trials with `f <= design limit`.
    pub within_design: OutcomeCounts,
    /// Trials with `f > design limit` (no promise made).
    pub beyond_design: OutcomeCounts,
}

impl SweepResult {
    /// Accumulates another sweep's counts (e.g. when aggregating shards).
    pub fn merge(&mut self, other: SweepResult) {
        self.overall.merge(other.overall);
        self.within_design.merge(other.within_design);
        self.beyond_design.merge(other.beyond_design);
    }
}

/// The architecture's design fault limit for channel faults.
pub fn design_limit(arch: Architecture) -> usize {
    match arch {
        Architecture::Byzantine { m } => m,
        Architecture::Degradable { params } => params.u(),
        Architecture::Naive { .. } => 0,
        Architecture::Crusader { t } => t,
    }
}

/// Runs one trial: sample a fault set and strategies, run one cycle.
/// Returns the fault count and the outcome.
fn run_trial(system: &ChannelSystem, rng: &mut SimRng, p: f64) -> (usize, ExternalOutcome) {
    let channels = system.architecture().channel_count();
    let sensor = rng.below(1 << 32);
    let wrong = sensor ^ (1 + rng.below(1 << 16));
    let mut strategies: BTreeMap<NodeId, Strategy<u64>> = BTreeMap::new();
    let battery = Strategy::battery(sensor, wrong, rng.below(u64::MAX - 1));
    for ch in 1..=channels {
        if rng.chance(p) {
            let (_, strat) = battery[rng.below(battery.len() as u64) as usize].clone();
            strategies.insert(NodeId::new(ch), strat);
        }
    }
    let f = strategies.len();
    (f, system.run_cycle(sensor, &strategies).outcome)
}

/// Runs the sweep for one architecture, parallelized over workers.
///
/// Results depend only on the config (not the worker count): trial `i`
/// draws from `SimRng::derive(config.seed, i)` via the shared
/// [`SweepRunner`].
pub fn run_monte_carlo(arch: Architecture, config: MonteCarloConfig) -> SweepResult {
    let system = ChannelSystem::new(arch);
    let limit = design_limit(arch);
    let p = config.channel_fault_p;
    SweepRunner::new(config.workers).fold(
        config.seed,
        config.trials,
        |_, mut rng| run_trial(&system, &mut rng, p),
        SweepResult::default(),
        |mut counts, (f, outcome)| {
            counts.overall.add(outcome);
            if f <= limit {
                counts.within_design.add(outcome);
            } else {
                counts.beyond_design.add(outcome);
            }
            counts
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use degradable::Params;

    fn byz() -> Architecture {
        Architecture::Byzantine { m: 1 }
    }

    fn deg() -> Architecture {
        Architecture::Degradable {
            params: Params::new(1, 2).unwrap(),
        }
    }

    fn config(trials: usize, p: f64) -> MonteCarloConfig {
        MonteCarloConfig {
            channel_fault_p: p,
            trials,
            seed: 99,
            workers: 4,
        }
    }

    #[test]
    fn zero_fault_probability_always_correct() {
        let c = run_monte_carlo(deg(), config(200, 0.0));
        assert_eq!(c.overall.correct, 200);
        assert_eq!(c.overall.total(), 200);
        assert_eq!(c.beyond_design.total(), 0);
    }

    #[test]
    fn degradable_never_incorrect_within_design() {
        // Within f <= u the degradable system's external outcome is
        // correct-or-default — C.1/C.2 — for *every* sampled adversary.
        let c = run_monte_carlo(deg(), config(2_000, 0.25));
        assert_eq!(
            c.within_design.incorrect, 0,
            "degradable system violated C.2: {c:?}"
        );
        assert!(c.within_design.default > 0, "expected some degraded trials");
    }

    #[test]
    fn byzantine_system_incorrect_beyond_design() {
        // The 3-channel system beyond m = 1 faults does produce incorrect
        // outcomes (colluding lies get through 2-of-3), while within the
        // design limit it is always correct.
        let c = run_monte_carlo(byz(), config(2_000, 0.25));
        assert_eq!(c.within_design.incorrect, 0);
        assert_eq!(c.within_design.default, 0, "B.1 promises correctness");
        assert!(
            c.beyond_design.incorrect > 0,
            "expected the Byzantine system to fail beyond m: {c:?}"
        );
    }

    #[test]
    fn results_are_reproducible() {
        let a = run_monte_carlo(deg(), config(500, 0.2));
        let b = run_monte_carlo(deg(), config(500, 0.2));
        assert_eq!(a, b);
    }

    #[test]
    fn results_are_worker_count_independent() {
        let with_workers = |workers| {
            run_monte_carlo(
                deg(),
                MonteCarloConfig {
                    channel_fault_p: 0.2,
                    trials: 300,
                    seed: 99,
                    workers,
                },
            )
        };
        let reference = with_workers(1);
        assert_eq!(with_workers(2), reference);
        assert_eq!(with_workers(8), reference);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let c = run_monte_carlo(byz(), config(400, 0.3)).overall;
        let sum = c.p_correct() + c.p_default() + c.p_incorrect();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(c.total(), 400);
    }

    #[test]
    fn design_limits() {
        assert_eq!(design_limit(byz()), 1);
        assert_eq!(design_limit(deg()), 2);
        assert_eq!(design_limit(Architecture::Naive { channels: 3 }), 0);
    }
}
