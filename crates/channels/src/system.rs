//! The multiple-channel fault-tolerant system of Section 3 (Figure 1).
//!
//! A **sender** (e.g. a sensor) distributes its value to computation
//! **channels**; every channel applies the same deterministic computation;
//! an **external entity** (e.g. a controller) votes over the channel
//! outputs:
//!
//! * Figure 1(a): `3m` channels, Byzantine agreement (OM) distribution,
//!   majority vote — conditions **B.1**, **B.2**;
//! * Figure 1(b): `2m+u` channels, `m/u`-degradable agreement
//!   distribution, `(m+u)`-out-of-`(2m+u)` vote — conditions **C.1**,
//!   **C.2**, **C.3**.
//!
//! Node ids: the sender is node 0; channel `i` is node `i` (1-based).

use degradable::adversary::Strategy;
use degradable::baselines::run_om;
use degradable::{AdversaryRun, ByzInstance, Params, Val};
use serde::{Deserialize, Serialize};
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// The deterministic per-channel computation applied to the agreed input.
/// A degraded (`V_d`) input propagates to a degraded output: the channel
/// enters its safe state instead of computing.
pub fn channel_compute(input: &Val) -> Val {
    input
        .as_ref()
        .map(|&x| x.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(17))
}

/// Which distribution protocol and voter the system uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Architecture {
    /// Figure 1(a): `3m` channels, OM(m) distribution, majority vote.
    Byzantine {
        /// Design fault tolerance `m` (channels = `3m`).
        m: usize,
    },
    /// Figure 1(b): `2m+u` channels, BYZ distribution,
    /// `(m+u)`-out-of-`(2m+u)` vote.
    Degradable {
        /// Agreement parameters (channels = `2m+u`).
        params: Params,
    },
    /// Strawman: channels trust the sender directly, majority vote.
    Naive {
        /// Number of channels.
        channels: usize,
    },
    /// Dolev's Crusader agreement distribution (the paper's reference
    /// \[2\]): `3t` channels, majority vote. Cheaper than OM (two rounds
    /// regardless of `t`) with the same `f <= t` usefulness window.
    Crusader {
        /// Design fault tolerance `t` (channels = `3t`).
        t: usize,
    },
}

impl Architecture {
    /// Number of channels in this architecture.
    pub fn channel_count(&self) -> usize {
        match *self {
            Architecture::Byzantine { m } => 3 * m,
            Architecture::Degradable { params } => 2 * params.m() + params.u(),
            Architecture::Naive { channels } => channels,
            Architecture::Crusader { t } => 3 * t,
        }
    }

    /// Total node count (sender + channels).
    pub fn node_count(&self) -> usize {
        self.channel_count() + 1
    }

    /// The external entity's vote threshold.
    pub fn vote_threshold(&self) -> usize {
        match *self {
            // Strict majority of the channels.
            Architecture::Byzantine { m } => 3 * m / 2 + 1,
            Architecture::Degradable { params } => params.m() + params.u(),
            Architecture::Naive { channels } => channels / 2 + 1,
            Architecture::Crusader { t } => 3 * t / 2 + 1,
        }
    }

    /// Short label for experiment output.
    pub fn label(&self) -> String {
        match *self {
            Architecture::Byzantine { m } => format!("byzantine(3m={}, m={m})", 3 * m),
            Architecture::Degradable { params } => {
                format!("degradable({} ch, {params})", self.channel_count())
            }
            Architecture::Naive { channels } => format!("naive({channels} ch)"),
            Architecture::Crusader { t } => format!("crusader(3t={}, t={t})", 3 * t),
        }
    }
}

/// What the external entity obtained, relative to ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ExternalOutcome {
    /// The vote produced the correct computation result.
    Correct,
    /// The vote produced the default value or no value — the safe case
    /// (triggers backward recovery or a safe action).
    Default,
    /// The vote produced a wrong value — the unsafe case.
    Incorrect,
}

/// Full report of one system cycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleReport {
    /// The value each channel agreed on as its input.
    pub channel_inputs: BTreeMap<NodeId, Val>,
    /// The value each channel output (faulty channels output garbage).
    pub channel_outputs: BTreeMap<NodeId, Val>,
    /// What the external entity's vote produced.
    pub voted: Val,
    /// Classification against ground truth.
    pub outcome: ExternalOutcome,
    /// Number of distinct input classes among fault-free channels
    /// (condition B.2 / C.3: 1 up to `m` faults, at most 2 up to `u`).
    pub fault_free_input_classes: usize,
}

/// One multiple-channel system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelSystem {
    arch: Architecture,
}

impl ChannelSystem {
    /// Creates a system with the given architecture.
    ///
    /// # Panics
    ///
    /// Panics if the architecture has no channels (e.g. `Byzantine{m: 0}`).
    pub fn new(arch: Architecture) -> Self {
        assert!(arch.channel_count() > 0, "a system needs channels");
        ChannelSystem { arch }
    }

    /// The architecture.
    pub fn architecture(&self) -> Architecture {
        self.arch
    }

    /// Runs one cycle: distribute `sensor_value` to the channels with the
    /// architecture's protocol (nodes in `strategies` are faulty), compute,
    /// and vote at the external entity.
    pub fn run_cycle(
        &self,
        sensor_value: u64,
        strategies: &BTreeMap<NodeId, Strategy<u64>>,
    ) -> CycleReport {
        let n = self.arch.node_count();
        let sender = NodeId::new(0);
        let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
        let sv = Val::Value(sensor_value);

        // 1. Distribution.
        let channel_inputs: BTreeMap<NodeId, Val> = match self.arch {
            Architecture::Byzantine { m } => {
                let strategies = strategies.clone();
                let mut fab = move |p: &degradable::Path, r: NodeId, t: &Val| {
                    strategies
                        .get(&p.last())
                        .expect("faulty relayer")
                        .claim(p, r, t)
                };
                run_om(n, m, sender, &sv, &faulty, &mut fab)
            }
            Architecture::Degradable { params } => {
                let instance = ByzInstance::new(n, params, sender).expect("2m+u channels + sender");
                AdversaryRun {
                    instance,
                    sender_value: sv,
                    strategies: strategies.clone(),
                }
                .run()
                .decisions
            }
            Architecture::Naive { .. } => {
                let strategies = strategies.clone();
                let mut fab = move |p: &degradable::Path, r: NodeId, t: &Val| {
                    strategies
                        .get(&p.last())
                        .expect("faulty relayer")
                        .claim(p, r, t)
                };
                degradable::baselines::naive_broadcast(n, sender, &sv, &faulty, &mut fab)
            }
            Architecture::Crusader { t } => {
                let strategies = strategies.clone();
                let mut fab = move |p: &degradable::Path, r: NodeId, tr: &Val| {
                    strategies
                        .get(&p.last())
                        .expect("faulty relayer")
                        .claim(p, r, tr)
                };
                degradable::baselines::run_crusader(n, t, sender, &sv, &faulty, &mut fab)
            }
        };

        // 2. Computation: fault-free channels compute on their agreed
        // input; a faulty channel behaves like an honest channel fed its
        // strategy's claim — the paper's dangerous case ("two of the
        // channels obtained the same incorrect value from the sender"),
        // where colluding liars produce *matching* wrong outputs.
        let output_path = degradable::Path::root(sender);
        let channel_outputs: BTreeMap<NodeId, Val> = channel_inputs
            .iter()
            .map(|(&ch, input)| {
                let out = match strategies.get(&ch) {
                    Some(s) => channel_compute(&s.claim(
                        &output_path.child(ch),
                        sender, // stand-in for the external entity
                        input,
                    )),
                    None => channel_compute(input),
                };
                (ch, out)
            })
            .collect();

        // 3. External vote.
        let outputs: Vec<Val> = channel_outputs.values().cloned().collect();
        let voted = degradable::vote(self.arch.vote_threshold(), &outputs);

        // 4. Classification.
        let truth = channel_compute(&Val::Value(sensor_value));
        let outcome = if voted == truth {
            ExternalOutcome::Correct
        } else if voted.is_default() {
            ExternalOutcome::Default
        } else {
            ExternalOutcome::Incorrect
        };

        let classes = channel_inputs
            .iter()
            .filter(|(ch, _)| !faulty.contains(ch))
            .map(|(_, v)| *v)
            .collect::<BTreeSet<Val>>()
            .len();

        CycleReport {
            channel_inputs,
            channel_outputs,
            voted,
            outcome,
            fault_free_input_classes: classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn byz3() -> ChannelSystem {
        ChannelSystem::new(Architecture::Byzantine { m: 1 })
    }

    fn deg4() -> ChannelSystem {
        ChannelSystem::new(Architecture::Degradable {
            params: Params::new(1, 2).unwrap(),
        })
    }

    #[test]
    fn architecture_counts() {
        assert_eq!(byz3().architecture().channel_count(), 3);
        assert_eq!(byz3().architecture().vote_threshold(), 2);
        assert_eq!(deg4().architecture().channel_count(), 4);
        assert_eq!(deg4().architecture().vote_threshold(), 3);
    }

    #[test]
    fn fault_free_cycle_correct_everywhere() {
        for sys in [byz3(), deg4()] {
            let r = sys.run_cycle(42, &BTreeMap::new());
            assert_eq!(r.outcome, ExternalOutcome::Correct, "{:?}", sys);
            assert_eq!(r.fault_free_input_classes, 1);
        }
    }

    #[test]
    fn b1_one_faulty_channel_masked() {
        // Figure 1(a): one lying channel, fault-free sender: majority vote
        // still correct (B.1), channels in identical states (B.2).
        let strategies: BTreeMap<_, _> = [(n(2), Strategy::ConstantLie(Val::Value(1)))]
            .into_iter()
            .collect();
        let r = byz3().run_cycle(42, &strategies);
        assert_eq!(r.outcome, ExternalOutcome::Correct);
        assert_eq!(r.fault_free_input_classes, 1);
    }

    #[test]
    fn b_system_fails_with_two_faults() {
        // Figure 1(a) with two colluding channel faults (f = 2 > m = 1):
        // the external entity can receive an incorrect value — the failure
        // mode that motivates degradable agreement. The colluders must
        // agree on their garbage: make them lie identically at the
        // distribution layer *and* both channels output the same wrong
        // computation; here we let their (hash-based) outputs differ, so
        // the 2-of-3 vote fails to the default instead — still a B-system
        // guarantee loss (no correct output), captured as != Correct.
        let strategies: BTreeMap<_, _> = [
            (n(2), Strategy::ConstantLie(Val::Value(1))),
            (n(3), Strategy::ConstantLie(Val::Value(1))),
        ]
        .into_iter()
        .collect();
        let r = byz3().run_cycle(42, &strategies);
        assert_ne!(r.outcome, ExternalOutcome::Correct);
    }

    #[test]
    fn c1_up_to_m_faults_correct() {
        let strategies: BTreeMap<_, _> = [(n(1), Strategy::ConstantLie(Val::Value(1)))]
            .into_iter()
            .collect();
        let r = deg4().run_cycle(42, &strategies);
        assert_eq!(r.outcome, ExternalOutcome::Correct);
        assert_eq!(r.fault_free_input_classes, 1);
    }

    #[test]
    fn c2_up_to_u_faults_correct_or_default() {
        // Sweep every pair of faulty channels and a diverse strategy
        // battery: the external entity must never obtain an incorrect
        // value (C.2).
        for a in 1..=4usize {
            for b in (a + 1)..=4usize {
                for (name, strat) in Strategy::battery(42, 13, 7) {
                    let strategies: BTreeMap<_, _> = [(n(a), strat.clone()), (n(b), strat.clone())]
                        .into_iter()
                        .collect();
                    let r = deg4().run_cycle(42, &strategies);
                    assert_ne!(
                        r.outcome,
                        ExternalOutcome::Incorrect,
                        "channels {a},{b} strategy {name}"
                    );
                    // C.3: at most two classes among fault-free channels.
                    assert!(r.fault_free_input_classes <= 2);
                }
            }
        }
    }

    #[test]
    fn crusader_arch_within_t_is_correct() {
        let sys = ChannelSystem::new(Architecture::Crusader { t: 1 });
        assert_eq!(sys.architecture().channel_count(), 3);
        for ch in 1..=3usize {
            for (name, strat) in Strategy::battery(42, 13, 1) {
                let strategies: BTreeMap<_, _> = [(n(ch), strat)].into_iter().collect();
                let r = sys.run_cycle(42, &strategies);
                assert_eq!(
                    r.outcome,
                    ExternalOutcome::Correct,
                    "ch {ch} strategy {name}"
                );
            }
        }
    }

    #[test]
    fn crusader_arch_beyond_t_can_fail_unsafely() {
        let sys = ChannelSystem::new(Architecture::Crusader { t: 1 });
        let strategies: BTreeMap<_, _> = [
            (n(2), Strategy::ConstantLie(Val::Value(1))),
            (n(3), Strategy::ConstantLie(Val::Value(1))),
        ]
        .into_iter()
        .collect();
        let r = sys.run_cycle(42, &strategies);
        assert_eq!(r.outcome, ExternalOutcome::Incorrect, "{r:?}");
    }

    #[test]
    fn naive_system_fails_with_faulty_sender() {
        let sys = ChannelSystem::new(Architecture::Naive { channels: 3 });
        let strategies: BTreeMap<_, _> = [(
            n(0),
            Strategy::TwoFaced {
                even: Val::Value(1),
                odd: Val::Value(2),
            },
        )]
        .into_iter()
        .collect();
        let r = sys.run_cycle(42, &strategies);
        // Channels received split values: no guarantee; states diverge.
        assert!(r.fault_free_input_classes > 1);
    }

    #[test]
    fn degraded_input_propagates_to_safe_state() {
        assert_eq!(channel_compute(&Val::Default), Val::Default);
        assert_ne!(channel_compute(&Val::Value(1)), Val::Value(1));
    }
}
