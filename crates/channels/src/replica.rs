//! Replicated command log over degradable agreement.
//!
//! The paper frames degradable agreement as a way to keep redundant
//! computation channels "in an identical state" (B.2 / C.3). The natural
//! systems generalization is a replicated log: a leader sequences
//! commands and distributes each via one `m/u`-degradable agreement
//! instance; replicas append what they decide. The paper's conditions then
//! become log properties:
//!
//! * `f <= m` — all fault-free replica logs are **identical** and carry
//!   the leader's commands (forward progress despite faults);
//! * `m < f <= u` — per slot, fault-free replicas hold at most two values,
//!   one of which is a **hole** (`V_d`): logs diverge only by holes, never
//!   by conflicting commands, so replica states are always consistent
//!   where defined;
//! * holes are *detected* divergence: a later [`ReplicatedLog::repair`]
//!   round (backward recovery, Section 3) re-runs agreement for the slot
//!   and fills it on every replica that still has the hole — safely,
//!   because non-hole replicas already hold the unique non-default value
//!   for that slot.

use degradable::adversary::Strategy;
use degradable::{AdversaryRun, ByzInstance, Params, Val};
use serde::{Deserialize, Serialize};
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// Outcome of appending (or repairing) one slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotReport {
    /// Slot index.
    pub slot: usize,
    /// Replicas that recorded the command.
    pub applied: BTreeSet<NodeId>,
    /// Replicas that recorded a hole.
    pub holes: BTreeSet<NodeId>,
}

/// Violations of the log guarantees.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogViolation {
    /// Two fault-free replicas hold two different non-hole commands in the
    /// same slot.
    ConflictingSlot {
        /// Slot index.
        slot: usize,
        /// One command.
        a: u64,
        /// A different command.
        b: u64,
    },
    /// `f <= m` for every slot so far, yet logs differ.
    LogsDiffer {
        /// First replica.
        a: NodeId,
        /// Second replica.
        b: NodeId,
        /// Slot where they differ.
        slot: usize,
    },
}

/// A replicated command log: node 0 is the leader/sequencer, nodes
/// `1..n` are replicas.
#[derive(Debug, Clone)]
pub struct ReplicatedLog {
    params: Params,
    n: usize,
    logs: BTreeMap<NodeId, Vec<Val>>,
}

impl ReplicatedLog {
    /// Creates an empty log system with `params.min_nodes()` nodes.
    pub fn new(params: Params) -> Self {
        let n = params.min_nodes();
        ReplicatedLog {
            params,
            n,
            logs: NodeId::all(n)
                .filter(|r| r.index() != 0)
                .map(|r| (r, Vec::new()))
                .collect(),
        }
    }

    /// Number of nodes (leader + replicas).
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of slots appended so far.
    pub fn len(&self) -> usize {
        self.logs.values().next().map_or(0, Vec::len)
    }

    /// Whether no slot has been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The log of one replica.
    pub fn log_of(&self, replica: NodeId) -> &[Val] {
        &self.logs[&replica]
    }

    /// Appends one command: the leader distributes it via degradable
    /// agreement under the given fault scenario; every replica appends its
    /// decision. Returns who applied and who recorded a hole (counting
    /// only fault-free replicas).
    pub fn append(
        &mut self,
        command: u64,
        strategies: &BTreeMap<NodeId, Strategy<u64>>,
    ) -> SlotReport {
        let slot = self.len();
        let decisions = self.run_agreement(command, strategies);
        let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
        let mut applied = BTreeSet::new();
        let mut holes = BTreeSet::new();
        for (r, v) in decisions {
            self.logs.get_mut(&r).expect("replica").push(v);
            if !faulty.contains(&r) {
                if v.is_default() {
                    holes.insert(r);
                } else {
                    applied.insert(r);
                }
            }
        }
        SlotReport {
            slot,
            applied,
            holes,
        }
    }

    /// Backward recovery for one slot: re-runs agreement for the slot's
    /// command and fills the hole on every replica that still has one.
    /// Replicas that already hold a value keep it (the degraded guarantee
    /// makes the non-hole value unique, so filling holes can never
    /// introduce a conflict).
    pub fn repair(
        &mut self,
        slot: usize,
        command: u64,
        strategies: &BTreeMap<NodeId, Strategy<u64>>,
    ) -> SlotReport {
        let decisions = self.run_agreement(command, strategies);
        let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
        let mut applied = BTreeSet::new();
        let mut holes = BTreeSet::new();
        for (r, v) in decisions {
            let log = self.logs.get_mut(&r).expect("replica");
            if log[slot].is_default() && !v.is_default() {
                log[slot] = v;
            }
            if !faulty.contains(&r) {
                if log[slot].is_default() {
                    holes.insert(r);
                } else {
                    applied.insert(r);
                }
            }
        }
        SlotReport {
            slot,
            applied,
            holes,
        }
    }

    /// Appends several commands in one **multiplexed** execution
    /// ([`degradable::service::run_batch`]): all slots share a single
    /// message-passing run instead of one per slot — the transport a real
    /// deployment would use for a pipeline of log entries.
    pub fn append_batch(
        &mut self,
        commands: &[u64],
        strategies: &BTreeMap<NodeId, Strategy<u64>>,
    ) -> Vec<SlotReport> {
        let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
        let instances: Vec<degradable::BatchInstance<u64>> = commands
            .iter()
            .map(|&c| degradable::BatchInstance {
                sender: NodeId::new(0),
                value: Val::Value(c),
            })
            .collect();
        let batch = degradable::run_batch(self.params, self.n, &instances, strategies, 0xBA7C);
        let mut reports = Vec::with_capacity(commands.len());
        for decisions in batch.decisions {
            let slot = self.len();
            let mut applied = BTreeSet::new();
            let mut holes = BTreeSet::new();
            for (r, v) in decisions {
                self.logs.get_mut(&r).expect("replica").push(v);
                if !faulty.contains(&r) {
                    if v.is_default() {
                        holes.insert(r);
                    } else {
                        applied.insert(r);
                    }
                }
            }
            reports.push(SlotReport {
                slot,
                applied,
                holes,
            });
        }
        reports
    }

    fn run_agreement(
        &self,
        command: u64,
        strategies: &BTreeMap<NodeId, Strategy<u64>>,
    ) -> BTreeMap<NodeId, Val> {
        let instance = ByzInstance::new(self.n, self.params, NodeId::new(0))
            .expect("n = min_nodes by construction");
        AdversaryRun {
            instance,
            sender_value: Val::Value(command),
            strategies: strategies.clone(),
        }
        .run()
        .decisions
    }

    /// Checks the log guarantees over the fault-free replicas: non-hole
    /// entries must agree per slot; if additionally `max_f_seen <= m`,
    /// entire logs must be identical.
    pub fn check(&self, faulty: &BTreeSet<NodeId>, max_f_seen: usize) -> Option<LogViolation> {
        let holders: Vec<NodeId> = self
            .logs
            .keys()
            .copied()
            .filter(|r| !faulty.contains(r))
            .collect();
        for slot in 0..self.len() {
            let mut nonhole: Option<u64> = None;
            for &h in &holders {
                if let Val::Value(c) = self.logs[&h][slot] {
                    match nonhole {
                        None => nonhole = Some(c),
                        Some(prev) if prev != c => {
                            return Some(LogViolation::ConflictingSlot {
                                slot,
                                a: prev,
                                b: c,
                            })
                        }
                        _ => {}
                    }
                }
            }
        }
        if max_f_seen <= self.params.m() {
            for w in holders.windows(2) {
                for slot in 0..self.len() {
                    if self.logs[&w[0]][slot] != self.logs[&w[1]][slot] {
                        return Some(LogViolation::LogsDiffer {
                            a: w[0],
                            b: w[1],
                            slot,
                        });
                    }
                }
            }
        }
        None
    }

    /// The state of a replica: the fold (here: order-sensitive hash) of
    /// its applied commands, skipping holes. Two replicas whose logs agree
    /// on non-hole entries but differ in holes will differ in state —
    /// *detectably*, which is what makes backward recovery possible.
    pub fn state_of(&self, replica: NodeId) -> u64 {
        self.logs[&replica]
            .iter()
            .fold(0xcbf2_9ce4_8422_2325u64, |acc, v| match v {
                Val::Value(c) => acc
                    .rotate_left(5)
                    .wrapping_mul(0x1000_0000_01b3)
                    .wrapping_add(*c),
                Val::Default => acc, // holes do not advance the state
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn log12() -> ReplicatedLog {
        ReplicatedLog::new(Params::new(1, 2).unwrap()) // 5 nodes
    }

    #[test]
    fn fault_free_logs_identical() {
        let mut log = log12();
        for c in 0..10u64 {
            let r = log.append(c, &BTreeMap::new());
            assert_eq!(r.applied.len(), 4);
            assert!(r.holes.is_empty());
        }
        assert!(log.check(&BTreeSet::new(), 0).is_none());
        let states: BTreeSet<u64> = (1..5).map(|i| log.state_of(n(i))).collect();
        assert_eq!(states.len(), 1);
    }

    #[test]
    fn one_fault_logs_still_identical() {
        let mut log = log12();
        let strategies: BTreeMap<_, _> = [(n(4), Strategy::ConstantLie(Val::Value(99)))]
            .into_iter()
            .collect();
        for c in 0..10u64 {
            log.append(c, &strategies);
        }
        let faulty: BTreeSet<_> = [n(4)].into_iter().collect();
        assert!(log.check(&faulty, 1).is_none());
        // The three fault-free replicas applied every command.
        for i in 1..4 {
            assert!(log.log_of(n(i)).iter().all(|v| !v.is_default()));
        }
    }

    #[test]
    fn two_faults_only_holes_never_conflicts() {
        let mut log = log12();
        let strategies: BTreeMap<_, _> = [
            (n(3), Strategy::ConstantLie(Val::Value(99))),
            (n(4), Strategy::ConstantLie(Val::Value(99))),
        ]
        .into_iter()
        .collect();
        for c in 0..10u64 {
            log.append(c, &strategies);
        }
        let faulty: BTreeSet<_> = [n(3), n(4)].into_iter().collect();
        assert!(log.check(&faulty, 2).is_none());
    }

    #[test]
    fn repair_fills_holes_after_transient() {
        let mut log = log12();
        // Slot 0 appended under a double fault that forces holes:
        let silent: BTreeMap<_, _> = [(n(1), Strategy::Silent), (n(2), Strategy::Silent)]
            .into_iter()
            .collect();
        let r = log.append(7, &silent);
        assert!(!r.holes.is_empty(), "expected degraded slot: {r:?}");
        // Transient cleared: repair with no faults.
        let r = log.repair(0, 7, &BTreeMap::new());
        assert_eq!(r.holes.len(), 0, "{r:?}");
        assert!(log.check(&BTreeSet::new(), 0).is_none());
        // All replicas now carry the command.
        for i in 1..5 {
            assert_eq!(log.log_of(n(i))[0], Val::Value(7));
        }
    }

    #[test]
    fn repair_never_overwrites_applied_values() {
        let mut log = log12();
        log.append(7, &BTreeMap::new());
        // Malicious repair attempt with a different command under faults:
        let strategies: BTreeMap<_, _> = [
            (n(3), Strategy::ConstantLie(Val::Value(1))),
            (n(4), Strategy::ConstantLie(Val::Value(1))),
        ]
        .into_iter()
        .collect();
        log.repair(0, 8, &strategies);
        for i in 1..5 {
            assert_eq!(
                log.log_of(n(i))[0],
                Val::Value(7),
                "replica {i} overwritten"
            );
        }
    }

    #[test]
    fn states_diverge_only_by_holes() {
        let mut log = log12();
        let strategies: BTreeMap<_, _> = [(n(3), Strategy::Silent), (n(4), Strategy::Silent)]
            .into_iter()
            .collect();
        for c in 0..5u64 {
            log.append(c, &strategies);
        }
        let faulty: BTreeSet<_> = [n(3), n(4)].into_iter().collect();
        assert!(log.check(&faulty, 2).is_none());
        // Replica 1 and 2 are fault-free: where both applied, values equal.
        for slot in 0..5 {
            let (a, b) = (log.log_of(n(1))[slot], log.log_of(n(2))[slot]);
            if !a.is_default() && !b.is_default() {
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn batch_append_matches_sequential() {
        let strategies: BTreeMap<_, _> = [
            (n(3), Strategy::ConstantLie(Val::Value(99))),
            (n(4), Strategy::Silent),
        ]
        .into_iter()
        .collect();
        let mut seq = log12();
        for c in 10..15u64 {
            seq.append(c, &strategies);
        }
        let mut batched = log12();
        let reports = batched.append_batch(&[10, 11, 12, 13, 14], &strategies);
        assert_eq!(reports.len(), 5);
        for i in 1..5 {
            assert_eq!(seq.log_of(n(i)), batched.log_of(n(i)), "replica {i}");
        }
        let faulty: BTreeSet<_> = strategies.keys().copied().collect();
        assert!(batched.check(&faulty, 2).is_none());
    }

    #[test]
    fn checker_catches_planted_conflict() {
        let mut log = log12();
        log.append(7, &BTreeMap::new());
        log.logs.get_mut(&n(2)).unwrap()[0] = Val::Value(8);
        assert!(matches!(
            log.check(&BTreeSet::new(), 2),
            Some(LogViolation::ConflictingSlot { slot: 0, .. })
        ));
    }
}
