//! Closed-form reliability bounds for the Figure 1 architectures.
//!
//! With independent per-channel fault probability `p`, the number of
//! faulty channels is binomial; the paper's conditions then give hard
//! bounds on the external entity's outcome probabilities:
//!
//! * Byzantine `3m`-channel system: `P(correct) >= P(f <= m)` (B.1), and
//!   all mass beyond `m` may be **silently unsafe**:
//!   `P(incorrect) <= P(f > m)` with no detection guarantee;
//! * degradable `2m+u`-channel system: `P(correct) >= P(f <= m)` (C.1),
//!   `P(correct or default) >= P(f <= u)` (C.2), so
//!   `P(incorrect) <= P(f > u)` — typically orders of magnitude smaller.
//!
//! These analytic bounds are cross-validated against the Monte Carlo
//! sweeps of [`crate::montecarlo`] (tests below and experiment E8).

use crate::system::Architecture;
use serde::{Deserialize, Serialize};

/// `C(n, k)` as `f64` (exact for the small `n` used here).
fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut num = 1.0f64;
    let mut den = 1.0f64;
    for i in 0..k {
        num *= (n - i) as f64;
        den *= (i + 1) as f64;
    }
    num / den
}

/// `P(f = k)` for `channels` independent faults with probability `p`.
pub fn p_exactly(channels: usize, k: usize, p: f64) -> f64 {
    binomial(channels, k) * p.powi(k as i32) * (1.0 - p).powi((channels - k) as i32)
}

/// `P(f <= k)`.
pub fn p_at_most(channels: usize, k: usize, p: f64) -> f64 {
    (0..=k.min(channels))
        .map(|i| p_exactly(channels, i, p))
        .sum()
}

/// Analytic outcome bounds for one architecture at fault probability `p`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityBounds {
    /// Lower bound on the probability of a correct external output.
    pub p_correct_min: f64,
    /// Lower bound on the probability of a correct-or-default (safe)
    /// output.
    pub p_safe_min: f64,
    /// Upper bound on the probability of an incorrect (unsafe) output.
    pub p_incorrect_max: f64,
}

/// Computes the bounds implied by the paper's conditions.
pub fn bounds(arch: Architecture, p: f64) -> ReliabilityBounds {
    let c = arch.channel_count();
    match arch {
        Architecture::Byzantine { m } => {
            let within = p_at_most(c, m, p);
            ReliabilityBounds {
                p_correct_min: within,
                // beyond m the B-system detects nothing: safe mass = within
                p_safe_min: within,
                p_incorrect_max: 1.0 - within,
            }
        }
        Architecture::Degradable { params } => {
            let within_m = p_at_most(c, params.m(), p);
            let within_u = p_at_most(c, params.u(), p);
            ReliabilityBounds {
                p_correct_min: within_m,
                p_safe_min: within_u,
                p_incorrect_max: 1.0 - within_u,
            }
        }
        Architecture::Crusader { t } => {
            let within = p_at_most(c, t, p);
            ReliabilityBounds {
                p_correct_min: within,
                p_safe_min: within,
                p_incorrect_max: 1.0 - within,
            }
        }
        Architecture::Naive { .. } => ReliabilityBounds {
            // the naive system only promises anything with zero faults
            p_correct_min: p_at_most(c, 0, p),
            p_safe_min: p_at_most(c, 0, p),
            p_incorrect_max: 1.0 - p_at_most(c, 0, p),
        },
    }
}

/// Probability that a mission of `cycles` independent cycles completes
/// with **no unsafe outcome**, lower-bounded from the per-cycle bound.
pub fn mission_safety(arch: Architecture, p: f64, cycles: usize) -> f64 {
    (1.0 - bounds(arch, p).p_incorrect_max).powi(cycles as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::{run_monte_carlo, MonteCarloConfig};
    use degradable::Params;

    fn byz() -> Architecture {
        Architecture::Byzantine { m: 1 }
    }

    fn deg() -> Architecture {
        Architecture::Degradable {
            params: Params::new(1, 2).unwrap(),
        }
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(4, 0), 1.0);
        assert_eq!(binomial(4, 2), 6.0);
        assert_eq!(binomial(4, 4), 1.0);
        assert_eq!(binomial(4, 5), 0.0);
    }

    #[test]
    fn distribution_sums_to_one() {
        for &p in &[0.0, 0.1, 0.5, 0.9] {
            let total: f64 = (0..=4).map(|k| p_exactly(4, k, p)).sum();
            assert!((total - 1.0).abs() < 1e-12, "p={p}: {total}");
        }
    }

    #[test]
    fn degradable_unsafe_bound_dominates_byzantine() {
        // P(f > u) << P(f > m) at equal p: the degradable system's unsafe
        // exposure is strictly smaller for every p in (0, 1).
        for &p in &[0.01, 0.05, 0.1, 0.2, 0.3] {
            let b = bounds(byz(), p);
            let d = bounds(deg(), p);
            assert!(
                d.p_incorrect_max < b.p_incorrect_max,
                "p={p}: {d:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn monte_carlo_within_analytic_bounds() {
        for &p in &[0.1, 0.25] {
            let cfg = MonteCarloConfig {
                channel_fault_p: p,
                trials: 3_000,
                seed: 0xB0B,
                workers: 4,
            };
            for arch in [byz(), deg()] {
                let mc = run_monte_carlo(arch, cfg).overall;
                let b = bounds(arch, p);
                // statistical slack: 3 sigma of a binomial proportion
                let slack = 3.0 * (0.25f64 / cfg.trials as f64).sqrt();
                assert!(
                    mc.p_incorrect() <= b.p_incorrect_max + slack,
                    "{arch:?} p={p}: measured {} > bound {}",
                    mc.p_incorrect(),
                    b.p_incorrect_max
                );
                assert!(
                    mc.p_correct() + slack >= b.p_correct_min,
                    "{arch:?} p={p}: correct {} < bound {}",
                    mc.p_correct(),
                    b.p_correct_min
                );
                assert!(
                    mc.p_correct() + mc.p_default() + slack >= b.p_safe_min,
                    "{arch:?} p={p}"
                );
            }
        }
    }

    #[test]
    fn mission_safety_monotone_in_cycles() {
        let one = mission_safety(deg(), 0.1, 1);
        let many = mission_safety(deg(), 0.1, 100);
        assert!(many < one);
        assert!(many > 0.0);
    }

    #[test]
    fn mission_safety_ordering() {
        // Over a 1000-cycle mission at p = 0.05 the degradable system is
        // dramatically more likely to stay safe.
        let b = mission_safety(byz(), 0.05, 1000);
        let d = mission_safety(deg(), 0.05, 1000);
        assert!(d > b, "degradable {d} vs byzantine {b}");
        assert!(d > 0.5, "degradable mission safety too low: {d}");
    }

    #[test]
    fn zero_p_is_perfect() {
        let b = bounds(deg(), 0.0);
        assert_eq!(b.p_correct_min, 1.0);
        assert_eq!(b.p_incorrect_max, 0.0);
        assert_eq!(mission_safety(deg(), 0.0, 10_000), 1.0);
    }
}
