//! # clocksync — clock models and degradable clock synchronization
//!
//! Substrate for Section 6 of Vaidya's *Degradable Agreement in the
//! Presence of Byzantine Faults* (1993). Algorithm BYZ needs detectable
//! message absence, hence synchronized clocks — but software clock
//! synchronization itself dies at a third of the clocks faulty, which is
//! exactly the regime degradable agreement targets (`u` may exceed `N/3`).
//! The paper offers three answers, all modelled here:
//!
//! * [`convergence`] — the classical interactive-convergence algorithm
//!   (works below `n/3` clock faults; the baseline and its breaking point);
//! * [`degradable_sync`] — the paper's **`m/u`-degradable clock
//!   synchronization** problem and a candidate protocol built on
//!   degradable agreement itself (the paper conjectures achievability with
//!   more than `2m+u` clocks; we validate the candidate empirically);
//! * [`hardware`] — the engineering alternative of Section 6.2: decoupled
//!   clock-hardware fault budgets and witness clocks.
//!
//! ```
//! use clocksync::prelude::*;
//! use degradable::Params;
//! use std::collections::BTreeMap;
//!
//! let clocks = ensemble(5, 1_000, 0, &[], 42);
//! let config = SyncConfig {
//!     params: Params::new(1, 2)?,
//!     sync_tolerance: 10,
//!     real_time_tolerance: 2_000,
//! };
//! let out = run_degradable_sync(&clocks, &BTreeMap::new(), config, 1_000_000);
//! assert_eq!(out.condition1, Some(true));
//! # Ok::<(), degradable::ParamsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod convergence;
pub mod degradable_sync;
pub mod hardware;

pub use clock::{ensemble, Clock, ClockFault};
pub use convergence::{
    run_consistency_sync, run_convergence, ConvergenceConfig, ConvergenceOutcome,
};
pub use degradable_sync::{
    run_degradable_sync, run_degradable_sync_corrected, run_periodic_sync, PeriodicConfig,
    PeriodicOutcome, SyncConfig, SyncOutcome,
};
pub use hardware::HardwareEnsemble;

/// Convenience glob import.
pub mod prelude {
    pub use crate::clock::{ensemble, Clock, ClockFault};
    pub use crate::convergence::{
        run_consistency_sync, run_convergence, ConvergenceConfig, ConvergenceOutcome,
    };
    pub use crate::degradable_sync::{
        run_degradable_sync, run_degradable_sync_corrected, run_periodic_sync, PeriodicConfig,
        PeriodicOutcome, SyncConfig, SyncOutcome,
    };
    pub use crate::hardware::HardwareEnsemble;
}
