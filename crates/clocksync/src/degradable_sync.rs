//! `m/u`-degradable clock synchronization (Section 6.1 of the paper).
//!
//! The paper *formulates* the problem and conjectures achievability with
//! more than `2m + u` clocks:
//!
//! 1. if at most `m` clocks are faulty, **all** fault-free clocks must be
//!    synchronized and approximate real time;
//! 2. if more than `m` but at most `u` clocks are faulty then **either**
//!    at least `m+1` fault-free clocks are synchronized and approximate
//!    real time, **or** at least `m+1` fault-free clocks detect the
//!    existence of more than `m` faulty clocks.
//!
//! This module implements the candidate protocol the paper's observation
//! suggests — distribute every clock reading by `m/u`-degradable agreement
//! and exploit the default value as a fault signal — and evaluates it
//! empirically (the paper offers no proof; our experiments report the
//! fraction of scenarios in which the two conditions held).
//!
//! **Protocol.** Each node broadcasts its reading via one BYZ instance.
//! Every node `i` ends with a vector `A_i` of `n` agreed entries, some of
//! which may be `V_d`.
//!
//! * *Detection:* with `f <= m` faults, D.1 guarantees every fault-free
//!   sender's entry is its true (non-default) reading, so at most `f <= m`
//!   entries of `A_i` can be `V_d`. Hence `#V_d(A_i) > m` is a **sound**
//!   detector of "more than `m` faults".
//! * *Adjustment:* node `i` sets its clock to the median of the
//!   non-default entries of `A_i`. With `f <= m`, all fault-free nodes
//!   hold identical vectors (D.1/D.2), at most `m < (n-m)/2` entries are
//!   adversarial, and the median is bracketed by fault-free readings: all
//!   fault-free clocks land on the *same* value within the fault-free
//!   reading envelope — condition 1 holds by construction.

use crate::clock::Clock;
use degradable::adversary::Strategy;
use degradable::{AdversaryRun, ByzInstance, Params, Val};
use serde::{Deserialize, Serialize};
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// Configuration for one degradable-sync round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncConfig {
    /// Agreement parameters.
    pub params: Params,
    /// Two corrected fault-free clocks within this many microticks count
    /// as synchronized.
    pub sync_tolerance: u64,
    /// A corrected clock within this many microticks of real time counts
    /// as approximating real time.
    pub real_time_tolerance: u64,
}

/// Outcome of one degradable-sync round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncOutcome {
    /// Corrected reading per fault-free node.
    pub corrected: BTreeMap<NodeId, u64>,
    /// Fault-free nodes whose vectors exposed more than `m` defaults (the
    /// detection signal).
    pub detectors: BTreeSet<NodeId>,
    /// Size of the largest set of fault-free nodes that are pairwise
    /// synchronized *and* approximate real time.
    pub synchronized_class: usize,
    /// Whether condition 1 of the problem statement held (checked when
    /// `f <= m`).
    pub condition1: Option<bool>,
    /// Whether condition 2 held (checked when `m < f <= u`).
    pub condition2: Option<bool>,
}

/// Runs one round of the candidate degradable clock-sync protocol.
///
/// `clocks[i]` is node `i`'s clock; nodes in `strategies` are Byzantine
/// and lie per their strategy in every agreement instance (including their
/// own broadcast, where the "truthful" value is their possibly-garbage
/// clock reading).
///
/// # Panics
///
/// Panics if `clocks.len()` does not satisfy the `2m+u+1` node bound.
pub fn run_degradable_sync(
    clocks: &[Clock],
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    config: SyncConfig,
    real_time: u64,
) -> SyncOutcome {
    run_degradable_sync_corrected(
        clocks,
        &vec![0; clocks.len()],
        strategies,
        config,
        real_time,
    )
}

/// Like [`run_degradable_sync`] but with an existing per-node correction
/// applied to every reading — the building block of
/// [`run_periodic_sync`], where corrections accumulate across
/// resynchronization rounds.
///
/// # Panics
///
/// Panics if the clock/correction lengths differ or the node bound is
/// violated.
pub fn run_degradable_sync_corrected(
    clocks: &[Clock],
    corrections: &[i64],
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    config: SyncConfig,
    real_time: u64,
) -> SyncOutcome {
    assert_eq!(clocks.len(), corrections.len(), "one correction per clock");
    let n = clocks.len();
    let params = config.params;
    assert!(
        params.admits(n),
        "need at least {} clocks for {params}",
        params.min_nodes()
    );
    let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
    let f = faulty.len();

    // One degradable-agreement instance per sender; build each node's
    // agreed vector.
    let mut vectors: BTreeMap<NodeId, Vec<Val>> =
        NodeId::all(n).map(|r| (r, vec![Val::Default; n])).collect();
    for s in NodeId::all(n) {
        let raw = clocks[s.index()].read_for(s.index(), real_time);
        let reading = (raw as i128 + corrections[s.index()] as i128).max(0) as u64;
        let instance = ByzInstance::new(n, params, s).expect("bound checked above");
        let scenario = AdversaryRun {
            instance,
            sender_value: Val::Value(reading),
            strategies: strategies.clone(),
        };
        let record = scenario.run();
        for (r, v) in record.decisions {
            vectors.get_mut(&r).expect("receiver exists")[s.index()] = v;
        }
        // The sender trusts its own reading.
        vectors.get_mut(&s).expect("sender exists")[s.index()] = Val::Value(reading);
    }

    // Detection + adjustment for every fault-free node.
    let mut corrected = BTreeMap::new();
    let mut detectors = BTreeSet::new();
    for i in NodeId::all(n) {
        if faulty.contains(&i) {
            continue;
        }
        let vector = &vectors[&i];
        let defaults = vector.iter().filter(|v| v.is_default()).count();
        if defaults > params.m() {
            detectors.insert(i);
        }
        let mut readings: Vec<u64> = vector.iter().filter_map(|v| v.value().copied()).collect();
        readings.sort_unstable();
        let adjusted = if readings.is_empty() {
            clocks[i.index()].nominal(real_time)
        } else {
            readings[readings.len() / 2]
        };
        corrected.insert(i, adjusted);
    }

    // Largest synchronized-and-accurate class.
    let accurate: Vec<u64> = corrected
        .values()
        .copied()
        .filter(|&c| c.abs_diff(real_time) <= config.real_time_tolerance)
        .collect();
    let synchronized_class = accurate
        .iter()
        .map(|&a| {
            accurate
                .iter()
                .filter(|&&b| a.abs_diff(b) <= config.sync_tolerance)
                .count()
        })
        .max()
        .unwrap_or(0);

    let (condition1, condition2) = if f <= params.m() {
        (Some(synchronized_class == corrected.len()), None)
    } else if f <= params.u() {
        (
            None,
            Some(synchronized_class > params.m() || detectors.len() > params.m()),
        )
    } else {
        (None, None)
    };

    SyncOutcome {
        corrected,
        detectors,
        synchronized_class,
        condition1,
        condition2,
    }
}

/// Configuration of a periodic (multi-round) degradable-sync simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodicConfig {
    /// Per-round sync configuration.
    pub sync: SyncConfig,
    /// Microticks between resynchronizations.
    pub period: u64,
    /// Number of resynchronization rounds.
    pub rounds: usize,
}

/// Result of a periodic simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodicOutcome {
    /// Max pairwise skew among fault-free corrected clocks after each
    /// round's adjustment.
    pub skew_per_round: Vec<u64>,
    /// Number of fault-free detectors per round.
    pub detectors_per_round: Vec<usize>,
    /// Rounds in which the applicable paper condition failed (empirical
    /// counterexamples to the conjecture — expected empty).
    pub failed_rounds: Vec<usize>,
}

/// Runs `rounds` resynchronizations: each round the candidate protocol
/// produces adjusted clock values; the resulting per-node corrections
/// carry into the next round, while drift keeps pulling the clocks apart
/// between rounds.
pub fn run_periodic_sync(
    clocks: &[Clock],
    strategies: &BTreeMap<NodeId, Strategy<u64>>,
    config: PeriodicConfig,
) -> PeriodicOutcome {
    let n = clocks.len();
    let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
    let mut corrections: Vec<i64> = vec![0; n];
    let mut skew_per_round = Vec::with_capacity(config.rounds);
    let mut detectors_per_round = Vec::with_capacity(config.rounds);
    let mut failed_rounds = Vec::new();

    for round in 1..=config.rounds {
        let now = config.period * round as u64;
        let out = run_degradable_sync_corrected(clocks, &corrections, strategies, config.sync, now);
        // Fold the adjustment into each fault-free node's correction; a
        // node that detected too many faults keeps its old correction
        // (the "safe" choice — it knows its vector is untrustworthy).
        for (&node, &adjusted) in &out.corrected {
            if out.detectors.contains(&node) {
                continue;
            }
            let raw = clocks[node.index()].read_for(node.index(), now) as i64;
            corrections[node.index()] = adjusted as i64 - raw;
        }
        // Measure the post-adjustment skew among fault-free clocks.
        let values: Vec<i64> = NodeId::all(n)
            .filter(|v| !faulty.contains(v))
            .map(|v| clocks[v.index()].nominal(now) as i64 + corrections[v.index()])
            .collect();
        let skew = match (values.iter().max(), values.iter().min()) {
            (Some(&max), Some(&min)) => (max - min) as u64,
            _ => 0,
        };
        skew_per_round.push(skew);
        detectors_per_round.push(out.detectors.len());
        let ok = match (out.condition1, out.condition2) {
            (Some(c1), _) => c1,
            (_, Some(c2)) => c2,
            _ => true,
        };
        if !ok {
            failed_rounds.push(round);
        }
    }
    PeriodicOutcome {
        skew_per_round,
        detectors_per_round,
        failed_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ensemble;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn config(m: usize, u: usize) -> SyncConfig {
        SyncConfig {
            params: Params::new(m, u).unwrap(),
            sync_tolerance: 10,
            real_time_tolerance: 2_000,
        }
    }

    const T: u64 = 10_000_000;

    #[test]
    fn no_faults_all_synchronized() {
        let clocks = ensemble(5, 1_000, 0, &[], 3);
        let out = run_degradable_sync(&clocks, &BTreeMap::new(), config(1, 2), T);
        assert_eq!(out.condition1, Some(true));
        assert_eq!(out.synchronized_class, 5);
        assert!(out.detectors.is_empty());
    }

    #[test]
    fn f_le_m_all_synchronized_despite_liar() {
        let clocks = ensemble(5, 1_000, 0, &[4], 5);
        let strategies: BTreeMap<_, _> = [(n(4), Strategy::ConstantLie(Val::Value(99_999_999)))]
            .into_iter()
            .collect();
        let out = run_degradable_sync(&clocks, &strategies, config(1, 2), T);
        assert_eq!(out.condition1, Some(true), "{out:?}");
        // Median rejects the single outlier: everyone lands within the
        // fault-free envelope.
        for c in out.corrected.values() {
            assert!(c.abs_diff(T) <= 2_000);
        }
    }

    #[test]
    fn beyond_m_condition2_holds_with_silent_faults() {
        // Two silent faults (f = u = 2 > m = 1): every fault-free node sees
        // 2 > m defaults and detects.
        let clocks = ensemble(5, 1_000, 0, &[3, 4], 7);
        let strategies: BTreeMap<_, _> = [(n(3), Strategy::Silent), (n(4), Strategy::Silent)]
            .into_iter()
            .collect();
        let out = run_degradable_sync(&clocks, &strategies, config(1, 2), T);
        assert_eq!(out.condition2, Some(true), "{out:?}");
        assert!(out.detectors.len() >= 2);
    }

    #[test]
    fn beyond_m_condition2_holds_with_lying_faults() {
        // Two consistent liars: no defaults anywhere, so detection stays
        // silent — but then all fault-free vectors coincide and the median
        // synchronizes all 3 >= m+1 fault-free clocks.
        let clocks = ensemble(5, 1_000, 0, &[3, 4], 9);
        let strategies: BTreeMap<_, _> = [
            (n(3), Strategy::ConstantLie(Val::Value(T + 1_500))),
            (n(4), Strategy::ConstantLie(Val::Value(T - 1_500))),
        ]
        .into_iter()
        .collect();
        let out = run_degradable_sync(&clocks, &strategies, config(1, 2), T);
        assert_eq!(out.condition2, Some(true), "{out:?}");
    }

    #[test]
    fn battery_of_adversaries_preserves_condition2() {
        // Sweep the strategy battery at f = u across several seeds; the
        // conjecture's conditions should hold in every run (empirical
        // validation — the paper gives no proof).
        for seed in 0..10u64 {
            for (name, strat) in Strategy::battery(T, T + 50_000, seed) {
                let clocks = ensemble(7, 1_000, 0, &[5, 6], seed);
                let strategies: BTreeMap<_, _> = [(n(5), strat.clone()), (n(6), strat.clone())]
                    .into_iter()
                    .collect();
                let out = run_degradable_sync(&clocks, &strategies, config(1, 4), T);
                assert_eq!(
                    out.condition2,
                    Some(true),
                    "strategy {name} seed {seed}: {out:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn node_bound_enforced() {
        let clocks = ensemble(4, 1_000, 0, &[], 3);
        run_degradable_sync(&clocks, &BTreeMap::new(), config(1, 2), T);
    }

    fn periodic(m: usize, u: usize, rounds: usize) -> PeriodicConfig {
        PeriodicConfig {
            sync: config(m, u),
            period: 1_000_000,
            rounds,
        }
    }

    #[test]
    fn periodic_sync_bounds_drifting_clocks() {
        // Drifting fault-free clocks re-diverge between rounds; periodic
        // resync keeps the skew within the drift-per-period envelope.
        let clocks = ensemble(5, 1_000, 100, &[], 13); // up to ±100 ppm
        let out = run_periodic_sync(&clocks, &BTreeMap::new(), periodic(1, 2, 8));
        assert!(out.failed_rounds.is_empty());
        for (round, &skew) in out.skew_per_round.iter().enumerate() {
            // ±100 ppm over 1e6 ticks = ±100 ticks of fresh divergence.
            assert!(skew <= 400, "round {round}: skew {skew}");
        }
    }

    #[test]
    fn periodic_sync_with_liar_stays_synchronized() {
        let clocks = ensemble(5, 1_000, 50, &[4], 17);
        let strategies: BTreeMap<_, _> = [(n(4), Strategy::ConstantLie(Val::Value(77)))]
            .into_iter()
            .collect();
        let out = run_periodic_sync(&clocks, &strategies, periodic(1, 2, 8));
        assert!(out.failed_rounds.is_empty(), "{out:?}");
        assert!(*out.skew_per_round.last().unwrap() <= 400);
    }

    #[test]
    fn periodic_sync_beyond_m_keeps_condition2() {
        let clocks = ensemble(5, 1_000, 50, &[3, 4], 19);
        let strategies: BTreeMap<_, _> = [(n(3), Strategy::Silent), (n(4), Strategy::Silent)]
            .into_iter()
            .collect();
        let out = run_periodic_sync(&clocks, &strategies, periodic(1, 2, 6));
        assert!(out.failed_rounds.is_empty(), "{out:?}");
        // Silent faults are detected every round.
        assert!(out.detectors_per_round.iter().all(|&d| d >= 2));
    }
}
