//! Interactive-convergence clock synchronization (the CNV algorithm of
//! Lamport & Melliar-Smith), the classical baseline the paper's Section 6
//! builds on.
//!
//! Every resynchronization period each node reads every clock, replaces
//! readings farther than `delta` from its own with its own reading
//! (egocentric clipping), and adjusts its correction by the average
//! difference. With fewer than `n/3` faulty clocks the fault-free clocks
//! stay within a bounded skew; with `n/3` or more, two-faced clocks can
//! drive them apart — exactly the impossibility \[refs 3, 5 of the paper\]
//! that motivates *degradable* clock synchronization.

use crate::clock::Clock;
use serde::{Deserialize, Serialize};

/// Configuration of a convergence run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceConfig {
    /// Clipping window: readings farther than this from the reader's own
    /// clock are discarded (replaced by the reader's own reading).
    pub delta: u64,
    /// Microticks between resynchronizations.
    pub period: u64,
    /// Number of resynchronization rounds to simulate.
    pub rounds: usize,
}

impl Default for ConvergenceConfig {
    fn default() -> Self {
        ConvergenceConfig {
            delta: 2_000,
            period: 1_000_000,
            rounds: 10,
        }
    }
}

/// Result of a convergence run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceOutcome {
    /// Maximum pairwise skew among fault-free *corrected* clocks after each
    /// round (microticks).
    pub skew_per_round: Vec<u64>,
    /// Final corrections per node.
    pub corrections: Vec<i64>,
}

impl ConvergenceOutcome {
    /// Final skew (after the last round).
    pub fn final_skew(&self) -> u64 {
        *self.skew_per_round.last().unwrap_or(&0)
    }
}

/// Runs the interactive-convergence algorithm.
///
/// `healthy` flags which clocks are fault-free (used only for *measuring*
/// skew — the algorithm itself treats all clocks uniformly, as it must).
pub fn run_convergence(
    clocks: &[Clock],
    healthy: &[bool],
    config: ConvergenceConfig,
) -> ConvergenceOutcome {
    let n = clocks.len();
    assert_eq!(healthy.len(), n, "one health flag per clock");
    let mut corrections: Vec<i64> = vec![0; n];
    let mut skew_per_round = Vec::with_capacity(config.rounds);

    for round in 1..=config.rounds {
        let now = config.period * round as u64;
        // Each node i reads every clock j (j may report observer-dependent
        // garbage) and computes the clipped average difference.
        let new_corrections: Vec<i64> = (0..n)
            .map(|i| {
                let own = clocks[i].read_for(i, now) as i64 + corrections[i];
                let mut sum: i128 = 0;
                for j in 0..n {
                    let theirs = clocks[j].read_for(i, now) as i64 + corrections[j];
                    let diff = theirs - own;
                    if diff.unsigned_abs() <= config.delta {
                        sum += diff as i128;
                    }
                    // else: egocentric replacement by own reading (diff 0)
                }
                corrections[i] + (sum / n as i128) as i64
            })
            .collect();
        corrections = new_corrections;

        // Measure skew among fault-free corrected clocks.
        let corrected: Vec<i64> = (0..n)
            .filter(|&i| healthy[i])
            .map(|i| clocks[i].nominal(now) as i64 + corrections[i])
            .collect();
        let skew = match (corrected.iter().max(), corrected.iter().min()) {
            (Some(&max), Some(&min)) => (max - min) as u64,
            _ => 0,
        };
        skew_per_round.push(skew);
    }
    ConvergenceOutcome {
        skew_per_round,
        corrections,
    }
}

/// The *consistency*-family baseline (Lamport & Melliar-Smith's COM, the
/// sibling of CNV): instead of egocentric averaging, every node's reading
/// is distributed by a Byzantine-agreement instance (OM) and each node
/// adjusts to the median of the agreed vector. Tolerates `f < n/3` like
/// CNV but reaches *exact* agreement on the correction each round (all
/// fault-free clocks land on the same value), at the cost of OM's message
/// complexity. The degradable variant of exactly this scheme is
/// `clocksync::degradable_sync` — swap OM for BYZ and the `n/3` wall turns
/// into the `m`/`u` ladder.
pub fn run_consistency_sync(
    clocks: &[Clock],
    healthy: &[bool],
    m: usize,
    config: ConvergenceConfig,
) -> ConvergenceOutcome {
    use degradable::baselines::run_om;
    use degradable::{AgreementValue, Val};
    use simnet::NodeId;
    use std::collections::BTreeSet;

    let n = clocks.len();
    assert_eq!(healthy.len(), n, "one health flag per clock");
    assert!(n > 3 * m, "OM-based sync needs n > 3m");
    let faulty: BTreeSet<NodeId> = (0..n).filter(|&i| !healthy[i]).map(NodeId::new).collect();
    let mut corrections: Vec<i64> = vec![0; n];
    let mut skew_per_round = Vec::with_capacity(config.rounds);

    for round in 1..=config.rounds {
        let now = config.period * round as u64;
        // Gather each node's agreed vector of corrected readings.
        let mut vectors: Vec<Vec<Val>> = vec![vec![AgreementValue::Default; n]; n];
        for s in 0..n {
            let sender = NodeId::new(s);
            let own = (clocks[s].read_for(s, now) as i64 + corrections[s]).max(0) as u64;
            // A faulty clock's broadcast: two-faced readings per receiver.
            let mut fab = |_p: &degradable::Path, r: NodeId, _t: &Val| {
                Val::Value(clocks[s].read_for(r.index(), now))
            };
            let decisions = run_om(n, m, sender, &Val::Value(own), &faulty, &mut fab);
            for (r, v) in decisions {
                vectors[r.index()][s] = v;
            }
            vectors[s][s] = Val::Value(own);
        }
        // Median adjustment per fault-free node.
        for i in 0..n {
            if !healthy[i] {
                continue;
            }
            let mut vals: Vec<u64> = vectors[i]
                .iter()
                .filter_map(|v| v.value().copied())
                .collect();
            vals.sort_unstable();
            if !vals.is_empty() {
                let target = vals[vals.len() / 2] as i64;
                let raw = clocks[i].read_for(i, now) as i64;
                corrections[i] = target - raw;
            }
        }
        let corrected: Vec<i64> = (0..n)
            .filter(|&i| healthy[i])
            .map(|i| clocks[i].nominal(now) as i64 + corrections[i])
            .collect();
        let skew = match (corrected.iter().max(), corrected.iter().min()) {
            (Some(&max), Some(&min)) => (max - min) as u64,
            _ => 0,
        };
        skew_per_round.push(skew);
    }
    ConvergenceOutcome {
        skew_per_round,
        corrections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{ensemble, Clock, ClockFault};

    fn healthy_flags(n: usize, faulty: &[usize]) -> Vec<bool> {
        (0..n).map(|i| !faulty.contains(&i)).collect()
    }

    #[test]
    fn fault_free_ensemble_converges() {
        let clocks = ensemble(4, 1_000, 0, &[], 11);
        let out = run_convergence(
            &clocks,
            &healthy_flags(4, &[]),
            ConvergenceConfig::default(),
        );
        // Initial spread up to 2000; after convergence the skew shrinks.
        assert!(
            out.final_skew() <= 2,
            "expected tight sync, got skew {}",
            out.final_skew()
        );
    }

    #[test]
    fn tolerates_less_than_a_third() {
        // n = 4, one Byzantine clock: skew stays within the window.
        let clocks = ensemble(4, 1_000, 0, &[3], 13);
        let out = run_convergence(
            &clocks,
            &healthy_flags(4, &[3]),
            ConvergenceConfig::default(),
        );
        assert!(
            out.final_skew() <= ConvergenceConfig::default().delta,
            "skew {} exceeded delta",
            out.final_skew()
        );
    }

    #[test]
    fn breaks_at_a_third() {
        // n = 3 with 1 Byzantine clock (f = n/3): the Dolev-Halpern-Strong
        // two-faced clock tells node 0 a time just below its window and
        // node 1 a time just above its window, pulling them apart every
        // round. The same adversary against n = 4 (one extra healthy
        // clock) is contained.
        let mk = |n: usize| {
            let mut clocks = vec![
                Clock::healthy(-900, 0),
                Clock::healthy(900, 0),
                Clock::faulty(
                    0,
                    0,
                    ClockFault::PerObserver {
                        deltas: [-2_800, 2_800, 0, 0, 0, 0, 0, 0],
                    },
                ),
            ];
            for _ in 3..n {
                clocks.push(Clock::healthy(0, 0));
            }
            clocks
        };
        let cfg = ConvergenceConfig {
            delta: 2_000,
            period: 1_000_000,
            rounds: 12,
        };
        let three = run_convergence(&mk(3), &healthy_flags(3, &[2]), cfg);
        let four = run_convergence(&mk(4), &healthy_flags(4, &[2]), cfg);
        // With f = n/3 the adversary pins the fault-free clocks apart at
        // (or beyond) their initial 1800-tick spread — convergence never
        // happens; with f < n/3 the same adversary is averaged away.
        assert!(
            three.final_skew() >= 1_800,
            "n=3 should fail to converge, got {}",
            three.final_skew()
        );
        assert!(
            four.final_skew() <= 10,
            "n=4 should converge tightly, got {}",
            four.final_skew()
        );
    }

    #[test]
    fn consistency_sync_exact_agreement() {
        // COM lands every fault-free clock on the same median: zero skew
        // with zero drift, even under a two-faced faulty clock.
        let clocks = ensemble(4, 1_000, 0, &[3], 7);
        let healthy = healthy_flags(4, &[3]);
        let out = run_consistency_sync(&clocks, &healthy, 1, ConvergenceConfig::default());
        assert_eq!(out.final_skew(), 0, "{:?}", out.skew_per_round);
    }

    #[test]
    fn consistency_sync_bounds_drift() {
        let clocks = ensemble(7, 1_000, 100, &[5, 6], 9);
        let healthy = healthy_flags(7, &[5, 6]);
        let out = run_consistency_sync(&clocks, &healthy, 2, ConvergenceConfig::default());
        // re-divergence between rounds is bounded by drift-per-period
        for (round, &skew) in out.skew_per_round.iter().enumerate() {
            assert!(skew <= 400, "round {round}: {skew}");
        }
    }

    #[test]
    #[should_panic(expected = "n > 3m")]
    fn consistency_sync_needs_om_bound() {
        let clocks = ensemble(3, 100, 0, &[], 1);
        run_consistency_sync(
            &clocks,
            &[true, true, true],
            1,
            ConvergenceConfig::default(),
        );
    }

    #[test]
    fn skew_history_has_one_entry_per_round() {
        let clocks = ensemble(5, 500, 0, &[], 3);
        let cfg = ConvergenceConfig {
            rounds: 7,
            ..ConvergenceConfig::default()
        };
        let out = run_convergence(&clocks, &healthy_flags(5, &[]), cfg);
        assert_eq!(out.skew_per_round.len(), 7);
    }

    #[test]
    fn drift_is_repeatedly_corrected() {
        // With drift but periodic resync, skew stays bounded across rounds.
        let clocks = ensemble(5, 500, 50, &[], 21);
        let out = run_convergence(
            &clocks,
            &healthy_flags(5, &[]),
            ConvergenceConfig::default(),
        );
        for (round, &skew) in out.skew_per_round.iter().enumerate() {
            assert!(skew < 1_000, "round {round}: skew {skew} diverged");
        }
    }
}
