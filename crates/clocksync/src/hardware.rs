//! Hardware clock synchronization and witness clocks (Section 6.2).
//!
//! The paper's engineering alternative to degradable clock sync: clock
//! hardware is orders of magnitude simpler than a processor, so clock
//! failures can be budgeted separately — "a processor being faulty does not
//! necessarily imply that the associated clock hardware is faulty as well".
//! Two mechanisms are modelled:
//!
//! * **Decoupled fault budgets** ([`HardwareEnsemble`]): `n` processors
//!   each paired with a clock; processor faults may exceed `n/3` while
//!   clock faults stay below a third of the *clock* population, keeping
//!   classical synchronization viable for the timing plane.
//! * **Witness clocks** (paper's analogy to Pâris's witnesses): `w` extra
//!   standalone clocks raise the clock population to `n + w`, tolerating
//!   `floor((n + w - 1) / 3)` clock faults — more than the processor
//!   population alone could.

use crate::clock::Clock;
use crate::convergence::{run_convergence, ConvergenceConfig, ConvergenceOutcome};
use serde::{Deserialize, Serialize};

/// A system of `n` processors with attached clocks plus optional witness
/// clocks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareEnsemble {
    processor_count: usize,
    clocks: Vec<Clock>,
    clock_faulty: Vec<bool>,
}

impl HardwareEnsemble {
    /// Builds an ensemble: `processor_clocks[i]` serves processor `i`;
    /// `witnesses` are standalone clocks with no processor attached.
    /// `clock_faulty` flags which of the `processor_clocks.len() +
    /// witnesses.len()` clocks are faulty.
    ///
    /// # Panics
    ///
    /// Panics if the flag vector length does not match the clock count.
    pub fn new(
        processor_clocks: Vec<Clock>,
        witnesses: Vec<Clock>,
        clock_faulty: Vec<bool>,
    ) -> Self {
        let processor_count = processor_clocks.len();
        let mut clocks = processor_clocks;
        clocks.extend(witnesses);
        assert_eq!(
            clock_faulty.len(),
            clocks.len(),
            "one fault flag per clock (processors + witnesses)"
        );
        HardwareEnsemble {
            processor_count,
            clocks,
            clock_faulty,
        }
    }

    /// Number of processors.
    pub fn processor_count(&self) -> usize {
        self.processor_count
    }

    /// Total clock count (processors + witnesses).
    pub fn clock_count(&self) -> usize {
        self.clocks.len()
    }

    /// Number of faulty clocks.
    pub fn clock_fault_count(&self) -> usize {
        self.clock_faulty.iter().filter(|&&f| f).count()
    }

    /// Maximum clock faults tolerable by classical synchronization over
    /// this clock population: `floor((count - 1) / 3)` (strictly less than
    /// a third).
    pub fn tolerable_clock_faults(&self) -> usize {
        (self.clock_count().saturating_sub(1)) / 3
    }

    /// Whether the clock plane can synchronize (clock faults strictly
    /// below a third of the clock population).
    pub fn clock_plane_viable(&self) -> bool {
        self.clock_fault_count() <= self.tolerable_clock_faults()
    }

    /// Runs interactive convergence over the whole clock population
    /// (witnesses included).
    pub fn synchronize(&self, config: ConvergenceConfig) -> ConvergenceOutcome {
        let healthy: Vec<bool> = self.clock_faulty.iter().map(|f| !f).collect();
        run_convergence(&self.clocks, &healthy, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ensemble;

    fn flags(total: usize, faulty: &[usize]) -> Vec<bool> {
        (0..total).map(|i| faulty.contains(&i)).collect()
    }

    #[test]
    fn witnesses_raise_tolerance() {
        // The paper's Figure 1(b) example: 5 nodes (sender + 4 channels);
        // adding two witness clocks tolerates two clock failures.
        let base = HardwareEnsemble::new(ensemble(5, 500, 0, &[], 1), vec![], flags(5, &[]));
        assert_eq!(base.tolerable_clock_faults(), 1);
        let with_witnesses = HardwareEnsemble::new(
            ensemble(5, 500, 0, &[], 1),
            ensemble(2, 500, 0, &[], 2),
            flags(7, &[]),
        );
        assert_eq!(with_witnesses.tolerable_clock_faults(), 2);
    }

    #[test]
    fn clock_plane_viability() {
        let e = HardwareEnsemble::new(ensemble(4, 500, 0, &[0], 1), vec![], flags(4, &[0]));
        assert_eq!(e.clock_fault_count(), 1);
        assert!(e.clock_plane_viable());
        let e2 = HardwareEnsemble::new(ensemble(4, 500, 0, &[0, 1], 1), vec![], flags(4, &[0, 1]));
        assert!(!e2.clock_plane_viable());
    }

    #[test]
    fn synchronization_with_witnesses_survives_two_clock_faults() {
        // 5 processor clocks (2 faulty) + 2 healthy witnesses: 2 <= (7-1)/3.
        let e = HardwareEnsemble::new(
            ensemble(5, 500, 0, &[3, 4], 5),
            ensemble(2, 500, 0, &[], 6),
            flags(7, &[3, 4]),
        );
        assert!(e.clock_plane_viable());
        let out = e.synchronize(ConvergenceConfig::default());
        assert!(
            out.final_skew() <= ConvergenceConfig::default().delta,
            "skew {}",
            out.final_skew()
        );
    }

    #[test]
    fn processor_faults_do_not_count_against_clock_plane() {
        // 5 processors, 3 of them Byzantine (> n/3!) but with healthy
        // clocks: the clock plane stays viable — the Section 6.2 argument.
        let e = HardwareEnsemble::new(ensemble(5, 500, 0, &[], 9), vec![], flags(5, &[]));
        assert!(e.clock_plane_viable());
        let out = e.synchronize(ConvergenceConfig::default());
        assert!(out.final_skew() <= 2);
    }
}
