//! Hardware clock models.
//!
//! Time is modelled in integer **microticks** (`u64`). A clock maps real
//! time to a local reading through an initial offset and a drift rate;
//! faulty clocks misreport arbitrarily — including *two-faced* misreporting
//! (different readings to different observers in the same instant), the
//! clock-domain analogue of a Byzantine node, which is what makes
//! synchronization beyond `n/3` faults impossible \[Dolev-Halpern-Strong\].

use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// How a clock misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ClockFault {
    /// Reads correctly (offset + drift within spec).
    None,
    /// Reports a pseudo-random value to each (observer, instant) pair —
    /// the fully Byzantine clock. `spread` bounds how far the garbage can
    /// wander from real time.
    Arbitrary {
        /// Hash seed (determinism).
        seed: u64,
        /// Maximum distance of the fabricated reading from real time.
        spread: u64,
    },
    /// Frozen at a fixed reading.
    Stuck {
        /// The reading it always reports.
        at: u64,
    },
    /// Runs at a grossly wrong rate.
    Racing {
        /// Parts-per-million beyond the healthy drift bound.
        extra_ppm: i64,
    },
    /// Reports `real + deltas[observer]` — the *targeted* two-faced clock
    /// of the Dolev–Halpern–Strong impossibility argument, which tells
    /// each observer a different tailored time to hold the fault-free
    /// clocks apart.
    PerObserver {
        /// Offset per observer index (missing entries read as 0).
        deltas: [i64; 8],
    },
}

/// One clock: initial offset, drift rate, and optional fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Clock {
    offset: i64,
    drift_ppm: i64,
    fault: ClockFault,
}

impl Clock {
    /// A healthy clock with the given initial offset (microticks) and
    /// drift (parts per million).
    pub fn healthy(offset: i64, drift_ppm: i64) -> Self {
        Clock {
            offset,
            drift_ppm,
            fault: ClockFault::None,
        }
    }

    /// A clock with an explicit fault mode.
    pub fn faulty(offset: i64, drift_ppm: i64, fault: ClockFault) -> Self {
        Clock {
            offset,
            drift_ppm,
            fault,
        }
    }

    /// Whether this clock is fault-free.
    pub fn is_healthy(&self) -> bool {
        matches!(self.fault, ClockFault::None)
    }

    /// The fault mode.
    pub fn fault(&self) -> ClockFault {
        self.fault
    }

    /// The reading this clock reports to `observer` at real time `real`
    /// (microticks). Healthy clocks report the same value to every
    /// observer; an [`ClockFault::Arbitrary`] clock is two-faced.
    pub fn read_for(&self, observer: usize, real: u64) -> u64 {
        match self.fault {
            ClockFault::None => self.nominal(real),
            ClockFault::Arbitrary { seed, spread } => {
                let mut h = DefaultHasher::new();
                (seed, observer, real).hash(&mut h);
                let jitter = h.finish() % (2 * spread + 1);
                (real + jitter).saturating_sub(spread)
            }
            ClockFault::Stuck { at } => at,
            ClockFault::Racing { extra_ppm } => {
                let skewed = real as i128
                    * (1_000_000 + self.drift_ppm as i128 + extra_ppm as i128)
                    / 1_000_000;
                (skewed + self.offset as i128).max(0) as u64
            }
            ClockFault::PerObserver { deltas } => {
                let d = deltas.get(observer).copied().unwrap_or(0);
                (real as i128 + d as i128).max(0) as u64
            }
        }
    }

    /// The reading a healthy observer-independent clock would show.
    pub fn nominal(&self, real: u64) -> u64 {
        let drifted = real as i128 * (1_000_000 + self.drift_ppm as i128) / 1_000_000;
        (drifted + self.offset as i128).max(0) as u64
    }
}

/// Builds an ensemble of `n` clocks: healthy ones with offsets in
/// `[-max_offset, +max_offset]` and drifts in `[-max_drift_ppm,
/// +max_drift_ppm]`, with the clocks listed in `faulty` replaced by
/// [`ClockFault::Arbitrary`] clocks.
pub fn ensemble(
    n: usize,
    max_offset: i64,
    max_drift_ppm: i64,
    faulty: &[usize],
    seed: u64,
) -> Vec<Clock> {
    use rand::RngCore;
    let mut rng = simnet::SimRng::seed(seed);
    (0..n)
        .map(|i| {
            let offset = (rng.next_u64() % (2 * max_offset as u64 + 1)) as i64 - max_offset;
            let drift = if max_drift_ppm == 0 {
                0
            } else {
                (rng.next_u64() % (2 * max_drift_ppm as u64 + 1)) as i64 - max_drift_ppm
            };
            if faulty.contains(&i) {
                Clock::faulty(
                    offset,
                    drift,
                    ClockFault::Arbitrary {
                        seed: seed ^ (i as u64).wrapping_mul(0x9E37_79B9),
                        spread: 1_000_000,
                    },
                )
            } else {
                Clock::healthy(offset, drift)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_clock_is_observer_independent() {
        let c = Clock::healthy(500, 100);
        assert_eq!(c.read_for(0, 1_000_000), c.read_for(7, 1_000_000));
    }

    #[test]
    fn healthy_clock_offset_and_drift() {
        let c = Clock::healthy(500, 100); // +100 ppm
                                          // At t = 1_000_000: drifted = 1_000_100; +500 = 1_000_600.
        assert_eq!(c.nominal(1_000_000), 1_000_600);
    }

    #[test]
    fn arbitrary_clock_is_two_faced() {
        let c = Clock::faulty(
            0,
            0,
            ClockFault::Arbitrary {
                seed: 3,
                spread: 10_000,
            },
        );
        // Overwhelmingly likely to differ for at least one pair:
        let readings: Vec<u64> = (0..8).map(|o| c.read_for(o, 1_000_000)).collect();
        let distinct: std::collections::BTreeSet<_> = readings.iter().collect();
        assert!(distinct.len() > 1, "expected two-faced readings");
    }

    #[test]
    fn arbitrary_clock_is_deterministic() {
        let c = Clock::faulty(
            0,
            0,
            ClockFault::Arbitrary {
                seed: 3,
                spread: 10,
            },
        );
        assert_eq!(c.read_for(2, 999), c.read_for(2, 999));
    }

    #[test]
    fn stuck_clock_never_moves() {
        let c = Clock::faulty(0, 0, ClockFault::Stuck { at: 42 });
        assert_eq!(c.read_for(0, 0), 42);
        assert_eq!(c.read_for(1, 10_000_000), 42);
    }

    #[test]
    fn racing_clock_runs_fast() {
        let c = Clock::faulty(0, 0, ClockFault::Racing { extra_ppm: 500_000 });
        assert!(c.read_for(0, 1_000_000) > 1_400_000);
    }

    #[test]
    fn ensemble_respects_fault_list() {
        let clocks = ensemble(5, 100, 10, &[1, 3], 7);
        assert_eq!(clocks.len(), 5);
        for (i, c) in clocks.iter().enumerate() {
            assert_eq!(c.is_healthy(), !(i == 1 || i == 3));
        }
    }

    #[test]
    fn ensemble_offsets_bounded() {
        let clocks = ensemble(20, 100, 0, &[], 9);
        for c in clocks {
            let r = c.nominal(1_000_000);
            assert!((999_900..=1_000_100).contains(&r));
        }
    }
}
