//! Property-based tests for the clock subsystem.

use clocksync::prelude::*;
use degradable::adversary::Strategy;
use degradable::Params;
use proptest::prelude::*;
use simnet::NodeId;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fault-free convergence always tightens the skew below the initial
    /// spread.
    #[test]
    fn convergence_tightens(n in 3usize..9, seed in 0u64..500) {
        let clocks = ensemble(n, 1_000, 0, &[], seed);
        let healthy = vec![true; n];
        let out = run_convergence(&clocks, &healthy, ConvergenceConfig::default());
        prop_assert!(out.final_skew() <= 2_000);
        // and strictly improves on the worst possible initial spread
        prop_assert!(out.final_skew() < 2_000 || out.skew_per_round[0] == 2_000);
    }

    /// Below a third of faulty clocks, skew stays bounded by the clipping
    /// window.
    #[test]
    fn below_third_bounded(extra in 0usize..5, seed in 0u64..500) {
        let n = 4 + extra;
        let clocks = ensemble(n, 1_000, 0, &[0], seed);
        let healthy: Vec<bool> = (0..n).map(|i| i != 0).collect();
        let cfg = ConvergenceConfig::default();
        let out = run_convergence(&clocks, &healthy, cfg);
        prop_assert!(out.final_skew() <= cfg.delta, "skew {}", out.final_skew());
    }

    /// Degradable sync condition 1 holds for every sampled f <= m scenario.
    #[test]
    fn degradable_sync_condition1(seed in 0u64..300, strat_idx in 0usize..6) {
        let params = Params::new(1, 2).unwrap();
        let clocks = ensemble(5, 1_000, 0, &[4], seed);
        let battery = Strategy::battery(10_000_000, 10_100_000, seed);
        let (_, strat) = battery[strat_idx % battery.len()].clone();
        let strategies: BTreeMap<NodeId, Strategy<u64>> =
            [(NodeId::new(4), strat)].into_iter().collect();
        let config = SyncConfig {
            params,
            sync_tolerance: 10,
            real_time_tolerance: 2_000,
        };
        let out = run_degradable_sync(&clocks, &strategies, config, 10_000_000);
        prop_assert_eq!(out.condition1, Some(true), "{:?}", out);
    }

    /// Degradable sync condition 2 holds for every sampled m < f <= u
    /// scenario (empirical support for the paper's conjecture).
    #[test]
    fn degradable_sync_condition2(seed in 0u64..300, strat_idx in 0usize..6, f in 2usize..3) {
        let params = Params::new(1, 2).unwrap();
        let faulty: Vec<usize> = (5 - f..5).collect();
        let clocks = ensemble(5, 1_000, 0, &faulty, seed);
        let battery = Strategy::battery(10_000_000, 10_100_000, seed);
        let (_, strat) = battery[strat_idx % battery.len()].clone();
        let strategies: BTreeMap<NodeId, Strategy<u64>> = faulty
            .iter()
            .map(|&i| (NodeId::new(i), strat.clone()))
            .collect();
        let config = SyncConfig {
            params,
            sync_tolerance: 10,
            real_time_tolerance: 2_000,
        };
        let out = run_degradable_sync(&clocks, &strategies, config, 10_000_000);
        prop_assert_eq!(out.condition2, Some(true), "{:?}", out);
    }

    /// Healthy clock readings stay within offset+drift bounds.
    #[test]
    fn healthy_reading_bounds(offset in -1_000i64..1_000, drift in -50i64..50,
                              t in 1u64..100_000_000) {
        let c = Clock::healthy(offset, drift);
        let r = c.nominal(t) as i128;
        let ideal = t as i128;
        let max_err = offset.unsigned_abs() as i128 + (ideal * 50 / 1_000_000) + 1;
        prop_assert!((r - ideal).abs() <= max_err, "reading {} vs {}", r, ideal);
    }

    /// Witness clocks never lower the tolerable fault budget.
    #[test]
    fn witnesses_monotone(n in 3usize..8, w in 0usize..4) {
        let base = HardwareEnsemble::new(
            ensemble(n, 100, 0, &[], 1),
            vec![],
            vec![false; n],
        );
        let extended = HardwareEnsemble::new(
            ensemble(n, 100, 0, &[], 1),
            ensemble(w, 100, 0, &[], 2),
            vec![false; n + w],
        );
        prop_assert!(extended.tolerable_clock_faults() >= base.tolerable_clock_faults());
    }
}
