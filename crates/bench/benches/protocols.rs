//! Criterion benches: end-to-end protocol executions.
//!
//! BYZ(m,m) (reference and message-passing executors) against the OM(m)
//! and Crusader baselines across system sizes — the performance half of
//! experiment P1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use degradable::adversary::Strategy;
use degradable::baselines::{run_crusader, run_om};
use degradable::{run_protocol, AdversaryRun, ByzInstance, Params, Val};
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet};

fn strategies_for(n: usize, f: usize) -> BTreeMap<NodeId, Strategy<u64>> {
    (n - f..n)
        .map(|i| (NodeId::new(i), Strategy::ConstantLie(Val::Value(9))))
        .collect()
}

fn bench_byz_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("byz_reference");
    for (n, m, u) in [(5usize, 1usize, 2usize), (7, 2, 2), (9, 2, 4), (10, 3, 3)] {
        let inst = ByzInstance::new(n, Params::new(m, u).unwrap(), NodeId::new(0)).unwrap();
        let strategies = strategies_for(n, u);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}_u{u}")),
            &(inst, strategies),
            |b, (inst, strategies)| {
                b.iter(|| {
                    AdversaryRun {
                        instance: *inst,
                        sender_value: Val::Value(1),
                        strategies: strategies.clone(),
                    }
                    .run()
                })
            },
        );
    }
    group.finish();
}

fn bench_byz_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("byz_protocol_message_passing");
    for (n, m, u) in [(5usize, 1usize, 2usize), (7, 2, 2), (9, 2, 4)] {
        let inst = ByzInstance::new(n, Params::new(m, u).unwrap(), NodeId::new(0)).unwrap();
        let strategies = strategies_for(n, u);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}_u{u}")),
            &(inst, strategies),
            |b, (inst, strategies)| b.iter(|| run_protocol(inst, &Val::Value(1), strategies, 7)),
        );
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    for (n, m) in [(4usize, 1usize), (7, 2), (10, 3)] {
        let faulty: BTreeSet<NodeId> = (n - m..n).map(NodeId::new).collect();
        group.bench_with_input(
            BenchmarkId::new("om", format!("n{n}_m{m}")),
            &(n, m, faulty.clone()),
            |b, (n, m, faulty)| {
                b.iter(|| {
                    let mut fab = |_: &degradable::Path, _: NodeId, _: &Val| Val::Value(9);
                    run_om(*n, *m, NodeId::new(0), &Val::Value(1), faulty, &mut fab)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("crusader", format!("n{n}_t{m}")),
            &(n, m, faulty.clone()),
            |b, (n, t, faulty)| {
                b.iter(|| {
                    let mut fab = |_: &degradable::Path, _: NodeId, _: &Val| Val::Value(9);
                    run_crusader(*n, *t, NodeId::new(0), &Val::Value(1), faulty, &mut fab)
                })
            },
        );
    }
    group.finish();
}

fn bench_signed_messages(c: &mut Criterion) {
    use degradable::sm::run_sm_honest;
    let mut group = c.benchmark_group("signed_messages");
    for (n, m) in [(4usize, 1usize), (7, 2), (10, 3)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &(n, m),
            |b, &(n, m)| b.iter(|| run_sm_honest(n, m, NodeId::new(0), &Val::Value(1))),
        );
    }
    group.finish();
}

fn bench_tradeoff_cost(c: &mut Criterion) {
    // Fixed N = 10: the cost of choosing m (full-agreement strength).
    let mut group = c.benchmark_group("tradeoff_cost_n10");
    for params in degradable::analysis::tradeoffs(10) {
        let inst = ByzInstance::new(10, params, NodeId::new(0)).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(params.to_string().replace('/', "_")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    AdversaryRun {
                        instance: *inst,
                        sender_value: Val::Value(1),
                        strategies: BTreeMap::new(),
                    }
                    .run()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_byz_reference,
    bench_byz_protocol,
    bench_baselines,
    bench_signed_messages,
    bench_tradeoff_cost
);
criterion_main!(benches);
