//! Criterion benches: arena-backed EIG engine vs the recursive reference
//! evaluator (`reference_eval`) on identical inputs.
//!
//! Two shapes from the E14 sweep — `(n = 10, m = 2)` and `(n = 13,
//! m = 2)`, both with `u = m` and the full `m + u` battery of faulty
//! relayers — measured three ways: the reference oracle, the engine with
//! a cold arena (built inside the loop), and the engine with a warm
//! shared arena (built once, the sweep-loop configuration). The gap
//! between reference and warm-engine is the memoization + flat-arena
//! win; the cold-vs-warm gap isolates the one-off interning cost. See
//! EXPERIMENTS.md (E14) for interpretation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use degradable::adversary::Strategy;
use degradable::{reference_eval, ByzInstance, Params, Val};
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// The benchmark fixture: an instance plus `m + u` battery liars.
fn fixture(n: usize, m: usize) -> (ByzInstance, BTreeMap<NodeId, Strategy<u64>>) {
    let inst = ByzInstance::new(n, Params::new(m, m).unwrap(), NodeId::new(0)).unwrap();
    let battery = Strategy::battery(3, 9, 0xE14);
    let strategies: BTreeMap<NodeId, Strategy<u64>> = (1..=2 * m)
        .map(|i| (NodeId::new(i), battery[i % battery.len()].1.clone()))
        .collect();
    (inst, strategies)
}

fn shapes() -> [(usize, usize); 2] {
    [(10, 2), (13, 2)]
}

fn bench_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("eig_fold_reference");
    for (n, m) in shapes() {
        let (inst, strategies) = fixture(n, m);
        let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &(inst, strategies, faulty),
            |b, (inst, strategies, faulty)| {
                b.iter(|| {
                    let mut fab = |path: &degradable::Path, r: NodeId, t: &Val| {
                        strategies.get(&path.last()).unwrap().claim(path, r, t)
                    };
                    reference_eval(
                        inst.n(),
                        inst.sender(),
                        inst.depth(),
                        inst.rule(),
                        &Val::Value(1),
                        faulty,
                        &mut fab,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_engine_cold(c: &mut Criterion) {
    let mut group = c.benchmark_group("eig_fold_engine_cold_arena");
    for (n, m) in shapes() {
        let (inst, strategies) = fixture(n, m);
        let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &(inst, strategies, faulty),
            |b, (inst, strategies, faulty)| {
                b.iter(|| {
                    let engine = inst.engine();
                    let mut fab = |path: &degradable::Path, r: NodeId, t: &Val| {
                        strategies.get(&path.last()).unwrap().claim(path, r, t)
                    };
                    inst.run_engine(&engine, &Val::Value(1), faulty, &mut fab)
                })
            },
        );
    }
    group.finish();
}

fn bench_engine_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("eig_fold_engine_warm_arena");
    for (n, m) in shapes() {
        let (inst, strategies) = fixture(n, m);
        let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
        let engine = inst.engine();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &(inst, strategies, faulty),
            |b, (inst, strategies, faulty)| {
                b.iter(|| {
                    let mut fab = |path: &degradable::Path, r: NodeId, t: &Val| {
                        strategies.get(&path.last()).unwrap().claim(path, r, t)
                    };
                    inst.run_engine(&engine, &Val::Value(1), faulty, &mut fab)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_reference,
    bench_engine_cold,
    bench_engine_warm
);
criterion_main!(benches);
