//! Criterion benches: core primitives — `VOTE(α, β)`, EIG view
//! resolution, path enumeration and the condition checker.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use degradable::path::paths_of_length;
use degradable::{check_degradable, vote, EigView, Params, Path, RunRecord, Val, VoteRule};
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet};

fn bench_vote(c: &mut Criterion) {
    let mut group = c.benchmark_group("vote");
    for size in [8usize, 64, 512] {
        let values: Vec<Val> = (0..size)
            .map(|i| {
                if i % 3 == 0 {
                    Val::Value(7)
                } else {
                    Val::Value(i as u64 % 5)
                }
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &values, |b, values| {
            b.iter(|| vote(values.len() / 2, values))
        });
    }
    group.finish();
}

fn bench_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_enumeration");
    for (n, len) in [(7usize, 3usize), (10, 3), (10, 4)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_len{len}")),
            &(n, len),
            |b, &(n, len)| b.iter(|| paths_of_length(NodeId::new(0), n, len)),
        );
    }
    group.finish();
}

fn filled_view(n: usize, depth: usize, me: NodeId) -> EigView<u64> {
    let mut view = EigView::new(n, depth, me);
    for level in 1..=depth {
        for path in paths_of_length(NodeId::new(0), n, level) {
            if !path.contains(me) {
                view.record(path.clone(), Val::Value((path.len() % 3) as u64));
            }
        }
    }
    view
}

fn bench_resolve(c: &mut Criterion) {
    let mut group = c.benchmark_group("eig_resolve");
    for (n, m) in [(5usize, 1usize), (7, 2), (10, 3)] {
        let view = filled_view(n, m + 1, NodeId::new(1));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &(view, m),
            |b, (view, m)| b.iter(|| view.resolve(NodeId::new(0), VoteRule::Degradable { m: *m })),
        );
    }
    group.finish();
}

fn bench_condition_check(c: &mut Criterion) {
    let n = 16usize;
    let record: RunRecord<u64> = RunRecord {
        params: Params::new(2, 5).unwrap(),
        n,
        sender: NodeId::new(0),
        sender_value: Val::Value(7),
        faulty: (11..16).map(NodeId::new).collect::<BTreeSet<_>>(),
        decisions: (1..n)
            .map(|i| {
                (
                    NodeId::new(i),
                    if i % 4 == 0 {
                        Val::Default
                    } else {
                        Val::Value(7)
                    },
                )
            })
            .collect::<BTreeMap<_, _>>(),
    };
    c.bench_function("check_degradable_n16", |b| {
        b.iter(|| check_degradable(&record))
    });
}

fn bench_path_ops(c: &mut Criterion) {
    let path = Path::root(NodeId::new(0))
        .child(NodeId::new(3))
        .child(NodeId::new(5));
    c.bench_function("path_children_n12", |b| b.iter(|| path.children(12)));
}

criterion_group!(
    benches,
    bench_vote,
    bench_paths,
    bench_resolve,
    bench_condition_check,
    bench_path_ops
);
criterion_main!(benches);
