//! Criterion benches: the `simnet` substrate — round engine throughput,
//! connectivity computation, disjoint-path extraction and relay
//! transmission.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simnet::routing::{CopyAction, RelayNetwork};
use simnet::{vertex_connectivity, vertex_disjoint_paths, NodeId, RoundEngine, Topology};
use std::collections::BTreeSet;

fn bench_engine_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_broadcast_rounds");
    for n in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut engine = RoundEngine::<u64>::new(Topology::complete(n), 1);
                engine.run(3, |ctx| ctx.broadcast(ctx.round() as u64))
            })
        });
    }
    group.finish();
}

fn bench_connectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertex_connectivity");
    for (k, n) in [(3usize, 10usize), (4, 16), (5, 24)] {
        let topo = Topology::harary(k, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("H{k}_{n}")),
            &topo,
            |b, topo| b.iter(|| vertex_connectivity(topo.graph())),
        );
    }
    group.finish();
}

fn bench_disjoint_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("disjoint_paths");
    for (k, n) in [(4usize, 12usize), (5, 20)] {
        let topo = Topology::harary(k, n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("H{k}_{n}")),
            &topo,
            |b, topo| {
                b.iter(|| vertex_disjoint_paths(topo.graph(), NodeId::new(0), NodeId::new(n / 2)))
            },
        );
    }
    group.finish();
}

fn bench_relay_transmit(c: &mut Criterion) {
    let topo = Topology::harary(4, 12);
    let net = RelayNetwork::new(&topo, 1, 2).expect("connectivity 4 suffices");
    let faulty: BTreeSet<NodeId> = [NodeId::new(3), NodeId::new(7)].into_iter().collect();
    c.bench_function("relay_transmit_h4_12", |b| {
        b.iter(|| {
            let mut adv = |_: simnet::routing::RelayHop| CopyAction::Replace(9u32);
            net.transmit(NodeId::new(0), NodeId::new(6), &42u32, &faulty, &mut adv)
        })
    });
}

fn bench_relay_build(c: &mut Criterion) {
    let topo = Topology::harary(4, 12);
    c.bench_function("relay_network_build_h4_12", |b| {
        b.iter(|| RelayNetwork::new(&topo, 1, 2).expect("suffices"))
    });
}

criterion_group!(
    benches,
    bench_engine_broadcast,
    bench_connectivity,
    bench_disjoint_paths,
    bench_relay_transmit,
    bench_relay_build
);
criterion_main!(benches);
