//! **Experiment A1 (ablation)** — why algorithm BYZ is built the way it
//! is. Two knobs distinguish BYZ from Lamport's OM on the same EIG
//! message pattern:
//!
//! 1. the fold: `VOTE(n'-1-m, n'-1)` **threshold** vote instead of strict
//!    majority;
//! 2. the depth: `m+1` rounds.
//!
//! Ablating either destroys the degraded guarantee:
//!
//! * with the *majority* fold (i.e. plain OM) at `N = 2m+u+1`, adversaries
//!   with `m < f <= u` make fault-free receivers adopt a **foreign value**
//!   (D.3 violated) — majority is too eager; the higher threshold is what
//!   forces "sender's value or `V_d`";
//! * with depth `m` (one round short), `f <= m` already breaks D.1/D.2 —
//!   the recursion depth is exactly the classic requirement.
//!
//! The un-ablated configuration passes the identical sweeps (control
//! rows).

use agreement_bench::print_table;
use degradable::adversary::Strategy;
use degradable::conditions::{check_degradable, RunRecord};
use degradable::eig::{run_eig, VoteRule};
use degradable::{Params, Val};
use simnet::{NodeId, SimRng};
use std::collections::{BTreeMap, BTreeSet};

/// Runs the EIG pattern with an explicit rule/depth and checks the
/// degradable conditions.
fn sweep(
    params: Params,
    rule: VoteRule,
    depth: usize,
    f_range: std::ops::RangeInclusive<usize>,
) -> (usize, usize) {
    let n = params.min_nodes();
    let mut runs = 0usize;
    let mut violations = 0usize;
    for f in f_range {
        let mut rng = SimRng::seed(0xAB1 + f as u64);
        for placement in 0..10usize {
            let faulty: BTreeSet<NodeId> = rng
                .choose_indices(n, f)
                .into_iter()
                .map(NodeId::new)
                .collect();
            for (_, strat) in Strategy::battery(1, 2, placement as u64) {
                let strategies: BTreeMap<NodeId, Strategy<u64>> =
                    faulty.iter().map(|&i| (i, strat.clone())).collect();
                let mut fab = |p: &degradable::Path, r: NodeId, t: &Val| {
                    strategies.get(&p.last()).expect("faulty").claim(p, r, t)
                };
                let decisions = run_eig(
                    n,
                    NodeId::new(0),
                    depth,
                    rule,
                    &Val::Value(1),
                    &faulty,
                    &mut fab,
                );
                let record = RunRecord {
                    params,
                    n,
                    sender: NodeId::new(0),
                    sender_value: Val::Value(1),
                    faulty: faulty.clone(),
                    decisions,
                };
                runs += 1;
                if check_degradable(&record).is_violated() {
                    violations += 1;
                }
            }
            if f == 0 {
                break;
            }
        }
    }
    (violations, runs)
}

fn main() {
    println!("A1: ablation of BYZ's design choices (threshold fold, m+1 rounds)");
    let mut ablation_story = true;

    // Ablation 1: majority fold (i.e. plain OM's rule). A wrong value can
    // carry a majority of the u faulty votes plus nothing else only when
    // u > (N-1)/2 = (2m+u)/2, i.e. u > 2m — test exactly there, with the
    // un-ablated control alongside.
    let mut rows = Vec::new();
    for (m, u) in [(1usize, 3usize), (1, 4), (2, 5)] {
        let params = Params::new(m, u).expect("u >= m");
        let depth = params.rounds();
        let (v_ctrl, r_ctrl) = sweep(params, VoteRule::Degradable { m }, depth, m + 1..=u);
        let (v_major, r_major) = sweep(params, VoteRule::Majority, depth, m + 1..=u);
        ablation_story &= v_ctrl == 0 && v_major > 0;
        rows.push(vec![
            params.to_string(),
            format!("{v_ctrl}/{r_ctrl}"),
            format!("{v_major}/{r_major}"),
        ]);
    }
    print_table(
        "ablation 1 — fold rule, degraded regime (m < f <= u), u > 2m",
        &["params", "BYZ threshold vote (control)", "majority fold"],
        &rows,
    );
    println!("(for u <= 2m the battery found no majority-fold break at these sizes: a wrong");
    println!(" value then needs more votes than u faults can supply; the threshold vote is");
    println!(" what extends the guarantee to every u >= m.)");

    // Ablation 2: one round short (depth m instead of m+1) breaks even the
    // classic regime f <= m.
    let mut rows = Vec::new();
    for (m, u) in [(1usize, 2usize), (1, 3), (2, 3)] {
        let params = Params::new(m, u).expect("u >= m");
        let depth = params.rounds();
        let (v_ctrl, r_ctrl) = sweep(params, VoteRule::Degradable { m }, depth, 0..=m);
        let (v_shallow, r_shallow) =
            sweep(params, VoteRule::Degradable { m }, depth - 1, 0..=m);
        ablation_story &= v_ctrl == 0 && v_shallow > 0;
        rows.push(vec![
            params.to_string(),
            format!("{v_ctrl}/{r_ctrl}"),
            format!("{v_shallow}/{r_shallow}"),
        ]);
    }
    print_table(
        "ablation 2 — recursion depth, classic regime (f <= m)",
        &["params", "depth m+1 (control)", "depth m"],
        &rows,
    );

    println!("\nreading: swapping the threshold vote for majority reintroduces foreign-value");
    println!("adoption in the degraded regime (where u > 2m); cutting one round breaks even");
    println!("the classic regime. Both of the paper's design choices are load-bearing.");
    if ablation_story {
        println!("\nRESULT: ablations break exactly where the proofs need the ablated feature");
    } else {
        println!("\nRESULT: ablation did not behave as expected");
        std::process::exit(1);
    }
}
