//! **Experiment A1 (ablation)** — why algorithm BYZ is built the way it
//! is. Two knobs distinguish BYZ from Lamport's OM on the same EIG
//! message pattern:
//!
//! 1. the fold: `VOTE(n'-1-m, n'-1)` **threshold** vote instead of strict
//!    majority;
//! 2. the depth: `m+1` rounds.
//!
//! Ablating either destroys the degraded guarantee:
//!
//! * with the *majority* fold (i.e. plain OM) at `N = 2m+u+1`, adversaries
//!   with `m < f <= u` make fault-free receivers adopt a **foreign value**
//!   (D.3 violated) — majority is too eager; the higher threshold is what
//!   forces "sender's value or `V_d`";
//! * with depth `m` (one round short), `f <= m` already breaks D.1/D.2 —
//!   the recursion depth is exactly the classic requirement.
//!
//! The un-ablated configuration passes the identical sweeps (control
//! rows). Each `(m, u)` case runs its control and ablated sweeps on a
//! [`harness::SweepRunner`] worker; results land in a JSON report under
//! `results/`.

use degradable::adversary::Strategy;
use degradable::conditions::{check_degradable, RunRecord};
use degradable::eig::{run_eig, VoteRule};
use degradable::{Params, Val};
use harness::report::Table;
use harness::{Report, RunArgs, SweepRunner};
use simnet::{NodeId, SimRng};
use std::collections::{BTreeMap, BTreeSet};

/// Runs the EIG pattern with an explicit rule/depth and checks the
/// degradable conditions. Placements come from `rng`, forked per fault
/// count.
fn sweep(
    params: Params,
    rule: VoteRule,
    depth: usize,
    f_range: std::ops::RangeInclusive<usize>,
    placements: usize,
    rng: &SimRng,
) -> (usize, usize) {
    let n = params.min_nodes();
    let mut runs = 0usize;
    let mut violations = 0usize;
    for f in f_range {
        let mut rng = rng.fork(f as u64);
        for placement in 0..placements {
            let faulty: BTreeSet<NodeId> = rng
                .choose_indices(n, f)
                .into_iter()
                .map(NodeId::new)
                .collect();
            for (_, strat) in Strategy::battery(1, 2, placement as u64) {
                let strategies: BTreeMap<NodeId, Strategy<u64>> =
                    faulty.iter().map(|&i| (i, strat.clone())).collect();
                let mut fab = |p: &degradable::Path, r: NodeId, t: &Val| {
                    strategies.get(&p.last()).expect("faulty").claim(p, r, t)
                };
                let decisions = run_eig(
                    n,
                    NodeId::new(0),
                    depth,
                    rule,
                    &Val::Value(1),
                    &faulty,
                    &mut fab,
                );
                let record = RunRecord {
                    params,
                    n,
                    sender: NodeId::new(0),
                    sender_value: Val::Value(1),
                    faulty: faulty.clone(),
                    decisions,
                };
                runs += 1;
                if check_degradable(&record).is_violated() {
                    violations += 1;
                }
            }
            if f == 0 {
                break;
            }
        }
    }
    (violations, runs)
}

fn main() {
    println!("A1: ablation of BYZ's design choices (threshold fold, m+1 rounds)");
    let args = RunArgs::parse();
    let placements = args.trials_or(10);
    let runner = SweepRunner::new(args.workers_or(4));
    let seed = args.seed_or(0xAB1);

    // Ablation 1: majority fold (i.e. plain OM's rule). A wrong value can
    // carry a majority of the u faulty votes plus nothing else only when
    // u > (N-1)/2 = (2m+u)/2, i.e. u > 2m — test exactly there, with the
    // un-ablated control alongside.
    let fold_cases = [(1usize, 3usize), (1, 4), (2, 5)];
    let fold_rows = runner.map(seed, &fold_cases, |_, &(m, u), rng| {
        let params = Params::new(m, u).expect("u >= m");
        let depth = params.rounds();
        let ctrl = sweep(
            params,
            VoteRule::Degradable { m },
            depth,
            m + 1..=u,
            placements,
            &rng,
        );
        let major = sweep(
            params,
            VoteRule::Majority,
            depth,
            m + 1..=u,
            placements,
            &rng,
        );
        (params.to_string(), ctrl, major)
    });
    let mut ablation_story = fold_rows
        .iter()
        .all(|(_, (v_ctrl, _), (v_major, _))| *v_ctrl == 0 && *v_major > 0);

    // Ablation 2: one round short (depth m instead of m+1) breaks even the
    // classic regime f <= m.
    let depth_cases = [(1usize, 2usize), (1, 3), (2, 3)];
    let depth_rows = runner.map(seed ^ 0xD, &depth_cases, |_, &(m, u), rng| {
        let params = Params::new(m, u).expect("u >= m");
        let depth = params.rounds();
        let ctrl = sweep(
            params,
            VoteRule::Degradable { m },
            depth,
            0..=m,
            placements,
            &rng,
        );
        let shallow = sweep(
            params,
            VoteRule::Degradable { m },
            depth - 1,
            0..=m,
            placements,
            &rng,
        );
        (params.to_string(), ctrl, shallow)
    });
    ablation_story &= depth_rows
        .iter()
        .all(|(_, (v_ctrl, _), (v_shallow, _))| *v_ctrl == 0 && *v_shallow > 0);

    // (params label, control (violations, runs), ablated (violations, runs))
    type AblationRow = (String, (usize, usize), (usize, usize));
    let as_cells = |rows: &[AblationRow]| -> Vec<Vec<String>> {
        rows.iter()
            .map(|(p, (vc, rc), (va, ra))| {
                vec![p.clone(), format!("{vc}/{rc}"), format!("{va}/{ra}")]
            })
            .collect()
    };
    let mut report = Report::new("ablation");
    report
        .set_meta("placements_per_f", placements)
        .set_meta("seed", seed)
        .set_meta("workers", runner.workers())
        .set_metric("ablation_story_holds", ablation_story)
        .add_table(Table::with_rows(
            "ablation 1 — fold rule, degraded regime (m < f <= u), u > 2m",
            &["params", "BYZ threshold vote (control)", "majority fold"],
            as_cells(&fold_rows),
        ))
        .add_table(Table::with_rows(
            "ablation 2 — recursion depth, classic regime (f <= m)",
            &["params", "depth m+1 (control)", "depth m"],
            as_cells(&depth_rows),
        ));
    report.print_tables();
    println!("(for u <= 2m the battery found no majority-fold break at these sizes: a wrong");
    println!(" value then needs more votes than u faults can supply; the threshold vote is");
    println!(" what extends the guarantee to every u >= m.)");
    match report.write(args.out_path()) {
        Ok(path) => println!("\nreport: {}", path.display()),
        Err(e) => eprintln!("\nreport write failed: {e}"),
    }

    println!("\nreading: swapping the threshold vote for majority reintroduces foreign-value");
    println!("adoption in the degraded regime (where u > 2m); cutting one round breaks even");
    println!("the classic regime. Both of the paper's design choices are load-bearing.");
    if ablation_story {
        println!("\nRESULT: ablations break exactly where the proofs need the ablated feature");
    } else {
        println!("\nRESULT: ablation did not behave as expected");
        std::process::exit(1);
    }
}
