//! **Experiment E3** — the Section 2 trade-off: "given a system consisting
//! of 7 nodes, one may achieve 2/2-degradable, 1/4-degradable, or
//! 0/6-degradable agreement".
//!
//! For each configuration the fault count `f` is swept from 0 to 6; every
//! combination of (fault placement sample, strategy battery member,
//! sender value) is run and the applicable guarantee is checked:
//!
//! * `f <= m`: full Byzantine agreement (D.1/D.2);
//! * `m < f <= u`: degraded agreement (D.3/D.4);
//! * `f > u`: no promise (reported as `beyond u`).

use agreement_bench::print_table;
use degradable::adversary::Strategy;
use degradable::analysis::tradeoffs;
use degradable::{ByzInstance, Scenario, Val, Verdict};
use simnet::{NodeId, SimRng};
use std::collections::BTreeMap;

const N: usize = 7;
const PLACEMENTS_PER_F: usize = 8;

fn main() {
    println!("E3: the 7-node trade-off (Section 2)");
    let configs = tradeoffs(N);
    println!(
        "available maximal configurations: {}",
        configs
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let mut rows = Vec::new();
    let mut all_ok = true;
    for params in &configs {
        let mut cells = vec![params.to_string()];
        for f in 0..N {
            let mut runs = 0usize;
            let mut violations = 0usize;
            let mut degraded_runs = 0usize;
            let mut rng = SimRng::seed(0xE3 + f as u64);
            for placement in 0..PLACEMENTS_PER_F {
                let faulty = rng.choose_indices(N, f);
                for (_, strat) in Strategy::battery(1, 2, placement as u64) {
                    let strategies: BTreeMap<NodeId, Strategy<u64>> = faulty
                        .iter()
                        .map(|&i| (NodeId::new(i), strat.clone()))
                        .collect();
                    let instance = ByzInstance::new(N, *params, NodeId::new(0))
                        .expect("7 nodes fit all three configs");
                    let sc = Scenario {
                        instance,
                        sender_value: Val::Value(1),
                        strategies,
                    };
                    runs += 1;
                    match sc.verdict() {
                        Verdict::Satisfied(s) => {
                            if matches!(
                                s.condition,
                                degradable::Condition::D3 | degradable::Condition::D4
                            ) {
                                degraded_runs += 1;
                            }
                        }
                        Verdict::Violated(_) => violations += 1,
                        Verdict::BeyondU { .. } => {}
                    }
                }
                if f == 0 {
                    break; // only one empty placement
                }
            }
            let label = if violations > 0 {
                all_ok = false;
                format!("VIOLATED {violations}/{runs}")
            } else if f <= params.m() {
                "full".to_string()
            } else if f <= params.u() {
                if degraded_runs > 0 {
                    "degraded".to_string()
                } else {
                    "degraded*".to_string() // conditions held as full agreement
                }
            } else {
                "beyond u".to_string()
            };
            cells.push(label);
        }
        rows.push(cells);
    }

    let headers: Vec<String> = std::iter::once("config".to_string())
        .chain((0..N).map(|f| format!("f={f}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table("guarantee achieved per fault count", &header_refs, &rows);
    println!(
        "\nlegend: full = D.1/D.2 (Byzantine agreement); degraded = D.3/D.4 (classes with V_d);"
    );
    println!("        degraded* = degraded regime but every sampled adversary still produced full agreement;");
    println!("        beyond u = outside the contract, nothing checked.");

    if all_ok {
        println!("\nRESULT: matches the paper — 2/2, 1/4 and 0/6 all achievable with 7 nodes");
    } else {
        println!("\nRESULT: MISMATCH (violations inside the contract)");
        std::process::exit(1);
    }
}
