//! **Experiment E3** — the Section 2 trade-off: "given a system consisting
//! of 7 nodes, one may achieve 2/2-degradable, 1/4-degradable, or
//! 0/6-degradable agreement".
//!
//! For each configuration the fault count `f` is swept from 0 to 6; every
//! combination of (fault placement sample, strategy battery member,
//! sender value) is run and the applicable guarantee is checked:
//!
//! * `f <= m`: full Byzantine agreement (D.1/D.2);
//! * `m < f <= u`: degraded agreement (D.3/D.4);
//! * `f > u`: no promise (reported as `beyond u`).
//!
//! Each `(config, f)` cell is an independent sweep fanned out over
//! [`harness::SweepRunner`] workers (placements drawn from the cell's
//! derived RNG), and the grid is written as a JSON report under `results/`.

use degradable::adversary::Strategy;
use degradable::analysis::tradeoffs;
use degradable::{AdversaryRun, ByzInstance, Params, Val, Verdict};
use harness::report::Table;
use harness::{Report, RunArgs, SweepRunner};
use simnet::{NodeId, SimRng};
use std::collections::BTreeMap;

const N: usize = 7;
const PLACEMENTS_PER_F: usize = 8;

/// One grid cell: all sampled adversaries for one `(params, f)` pair.
fn cell(params: Params, f: usize, placements: usize, mut rng: SimRng) -> (String, bool) {
    let mut runs = 0usize;
    let mut violations = 0usize;
    let mut degraded_runs = 0usize;
    for placement in 0..placements {
        let faulty = rng.choose_indices(N, f);
        for (_, strat) in Strategy::battery(1, 2, placement as u64) {
            let strategies: BTreeMap<NodeId, Strategy<u64>> = faulty
                .iter()
                .map(|&i| (NodeId::new(i), strat.clone()))
                .collect();
            let instance =
                ByzInstance::new(N, params, NodeId::new(0)).expect("7 nodes fit all three configs");
            let sc = AdversaryRun {
                instance,
                sender_value: Val::Value(1),
                strategies,
            };
            runs += 1;
            match sc.verdict() {
                Verdict::Satisfied(s) => {
                    if matches!(
                        s.condition,
                        degradable::Condition::D3 | degradable::Condition::D4
                    ) {
                        degraded_runs += 1;
                    }
                }
                Verdict::Violated(_) => violations += 1,
                Verdict::BeyondU { .. } => {}
            }
        }
        if f == 0 {
            break; // only one empty placement
        }
    }
    let label = if violations > 0 {
        format!("VIOLATED {violations}/{runs}")
    } else if f <= params.m() {
        "full".to_string()
    } else if f <= params.u() {
        if degraded_runs > 0 {
            "degraded".to_string()
        } else {
            "degraded*".to_string() // conditions held as full agreement
        }
    } else {
        "beyond u".to_string()
    };
    (label, violations == 0)
}

fn main() {
    println!("E3: the 7-node trade-off (Section 2)");
    let args = RunArgs::parse();
    let placements = args.trials_or(PLACEMENTS_PER_F);
    let configs = tradeoffs(N);
    println!(
        "available maximal configurations: {}",
        configs
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let grid: Vec<(Params, usize)> = configs
        .iter()
        .flat_map(|&params| (0..N).map(move |f| (params, f)))
        .collect();
    let runner = SweepRunner::new(args.workers_or(4));
    let labels = runner.map(args.seed_or(0xE3), &grid, |_, &(params, f), rng| {
        cell(params, f, placements, rng)
    });
    let all_ok = labels.iter().all(|(_, ok)| *ok);

    // Regroup the flat grid into one row per configuration.
    let rows: Vec<Vec<String>> = configs
        .iter()
        .enumerate()
        .map(|(ci, params)| {
            std::iter::once(params.to_string())
                .chain(labels[ci * N..(ci + 1) * N].iter().map(|(l, _)| l.clone()))
                .collect()
        })
        .collect();

    let headers: Vec<String> = std::iter::once("config".to_string())
        .chain((0..N).map(|f| format!("f={f}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut report = Report::new("tradeoff7");
    report
        .set_meta("placements_per_f", placements)
        .set_meta("workers", runner.workers())
        .set_metric("all_ok", all_ok)
        .add_table(Table::with_rows(
            "guarantee achieved per fault count",
            &header_refs,
            rows,
        ));
    report.print_tables();
    println!(
        "\nlegend: full = D.1/D.2 (Byzantine agreement); degraded = D.3/D.4 (classes with V_d);"
    );
    println!("        degraded* = degraded regime but every sampled adversary still produced full agreement;");
    println!("        beyond u = outside the contract, nothing checked.");
    match report.write(args.out_path()) {
        Ok(path) => println!("\nreport: {}", path.display()),
        Err(e) => eprintln!("\nreport write failed: {e}"),
    }

    if all_ok {
        println!("\nRESULT: matches the paper — 2/2, 1/4 and 0/6 all achievable with 7 nodes");
    } else {
        println!("\nRESULT: MISMATCH (violations inside the contract)");
        std::process::exit(1);
    }
}
