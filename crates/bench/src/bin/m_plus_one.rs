//! **Experiment E7** — the Section 2 corollary: with `N > 2m+u`, for any
//! `f <= u` at least `m+1` fault-free nodes (sender included) agree on an
//! identical value.
//!
//! Sweeps fault counts, placements and the adversary battery at
//! `N = 2m+u+1` and reports the *minimum observed* size of the largest
//! agreeing fault-free class — which must never drop below `m+1`.
//!
//! Each `(m, u)` pair sweeps independently on a [`harness::SweepRunner`]
//! worker (placements from the pair's derived RNG, forked per fault
//! count); the table is written as a JSON report under `results/`.

use degradable::adversary::Strategy;
use degradable::{largest_fault_free_class, AdversaryRun, ByzInstance, Params, Val};
use harness::report::Table;
use harness::{Report, RunArgs, SweepRunner};
use simnet::{NodeId, SimRng};
use std::collections::BTreeMap;

fn sweep_pair(m: usize, u: usize, placements: usize, rng: SimRng) -> Vec<String> {
    let params = Params::new(m, u).expect("u >= m");
    let n = params.min_nodes();
    let instance = ByzInstance::new(n, params, NodeId::new(0)).expect("at bound");
    let mut min_class = usize::MAX;
    let mut runs = 0usize;
    for f in 0..=u {
        let mut rng = rng.fork(f as u64);
        for placement in 0..placements {
            let faulty = rng.choose_indices(n, f);
            for (_, strat) in Strategy::battery(1, 2, placement as u64) {
                let strategies: BTreeMap<NodeId, Strategy<u64>> = faulty
                    .iter()
                    .map(|&i| (NodeId::new(i), strat.clone()))
                    .collect();
                let record = AdversaryRun {
                    instance,
                    sender_value: Val::Value(1),
                    strategies,
                }
                .run();
                min_class = min_class.min(largest_fault_free_class(&record));
                runs += 1;
            }
            if f == 0 {
                break;
            }
        }
    }
    let ok = min_class > m;
    vec![
        format!("{m}/{u}"),
        n.to_string(),
        runs.to_string(),
        (m + 1).to_string(),
        min_class.to_string(),
        if ok { "holds" } else { "VIOLATED" }.to_string(),
    ]
}

fn main() {
    println!("E7: the m+1 agreeing fault-free nodes corollary (Section 2)");
    let args = RunArgs::parse();
    let placements = args.trials_or(10);
    let pairs = [(1usize, 1usize), (1, 2), (1, 4), (2, 2), (2, 3), (0, 6)];
    let runner = SweepRunner::new(args.workers_or(4));
    let rows = runner.map(args.seed_or(0xE7), &pairs, |_, &(m, u), rng| {
        sweep_pair(m, u, placements, rng)
    });
    let all_ok = rows.iter().all(|r| r.last().is_some_and(|s| s == "holds"));

    let mut report = Report::new("m_plus_one");
    report
        .set_meta("placements_per_f", placements)
        .set_meta("workers", runner.workers())
        .set_metric("all_ok", all_ok)
        .add_table(Table::with_rows(
            "minimum observed agreeing fault-free class over all sweeps (f <= u)",
            &[
                "params",
                "N",
                "runs",
                "required (m+1)",
                "min observed",
                "status",
            ],
            rows,
        ));
    report.print_tables();
    match report.write(args.out_path()) {
        Ok(path) => println!("\nreport: {}", path.display()),
        Err(e) => eprintln!("\nreport write failed: {e}"),
    }
    if all_ok {
        println!("\nRESULT: matches the paper — at least m+1 fault-free nodes always agree");
    } else {
        println!("\nRESULT: MISMATCH");
        std::process::exit(1);
    }
}
