//! **Experiment E7** — the Section 2 corollary: with `N > 2m+u`, for any
//! `f <= u` at least `m+1` fault-free nodes (sender included) agree on an
//! identical value.
//!
//! Sweeps fault counts, placements and the adversary battery at
//! `N = 2m+u+1` and reports the *minimum observed* size of the largest
//! agreeing fault-free class — which must never drop below `m+1`.

use agreement_bench::print_table;
use degradable::adversary::Strategy;
use degradable::{largest_fault_free_class, ByzInstance, Params, Scenario, Val};
use simnet::{NodeId, SimRng};
use std::collections::BTreeMap;

fn main() {
    println!("E7: the m+1 agreeing fault-free nodes corollary (Section 2)");
    let mut rows = Vec::new();
    let mut all_ok = true;
    for (m, u) in [(1usize, 1usize), (1, 2), (1, 4), (2, 2), (2, 3), (0, 6)] {
        let params = Params::new(m, u).expect("u >= m");
        let n = params.min_nodes();
        let instance = ByzInstance::new(n, params, NodeId::new(0)).expect("at bound");
        let mut min_class = usize::MAX;
        let mut runs = 0usize;
        for f in 0..=u {
            let mut rng = SimRng::seed(0xE7 + (m * 31 + u * 7 + f) as u64);
            for placement in 0..10usize {
                let faulty = rng.choose_indices(n, f);
                for (_, strat) in Strategy::battery(1, 2, placement as u64) {
                    let strategies: BTreeMap<NodeId, Strategy<u64>> = faulty
                        .iter()
                        .map(|&i| (NodeId::new(i), strat.clone()))
                        .collect();
                    let record = Scenario {
                        instance,
                        sender_value: Val::Value(1),
                        strategies,
                    }
                    .run();
                    min_class = min_class.min(largest_fault_free_class(&record));
                    runs += 1;
                }
                if f == 0 {
                    break;
                }
            }
        }
        let ok = min_class > m;
        all_ok &= ok;
        rows.push(vec![
            format!("{m}/{u}"),
            n.to_string(),
            runs.to_string(),
            (m + 1).to_string(),
            min_class.to_string(),
            if ok { "holds" } else { "VIOLATED" }.to_string(),
        ]);
    }
    print_table(
        "minimum observed agreeing fault-free class over all sweeps (f <= u)",
        &["params", "N", "runs", "required (m+1)", "min observed", "status"],
        &rows,
    );
    if all_ok {
        println!("\nRESULT: matches the paper — at least m+1 fault-free nodes always agree");
    } else {
        println!("\nRESULT: MISMATCH");
        std::process::exit(1);
    }
}
