//! **Experiment E10** — small-model certification of Theorem 1.
//!
//! For the smallest interesting instances, *every* quantifier of the
//! theorem is closed by enumeration: every sender position, every fault
//! set of size up to `u`, and every deterministic adversary over the
//! domain `{V_d, α, β}` (sufficient by value-symmetry — BYZ only compares
//! values for equality). A run of this binary is a machine-checked proof
//! of Theorem 1 for these instances, and the matching below-bound
//! enumeration exhibits Theorem 2's violations the same way.

use agreement_bench::print_table;
use degradable::{certify, ExhaustiveSearch, Params, Val};
use simnet::NodeId;
use std::collections::BTreeSet;
use std::time::Instant;

fn main() {
    println!("E10: small-model certification (all senders x all fault sets x all adversaries)");
    let mut rows = Vec::new();
    let mut all_ok = true;

    for (m, u) in [(1usize, 1usize), (1, 2)] {
        let params = Params::new(m, u).expect("u >= m");
        let n = params.min_nodes();
        let start = Instant::now();
        let report = certify(params, n, 50_000_000).expect("within budget");
        let secs = start.elapsed().as_secs_f64();
        all_ok &= report.certified();
        rows.push(vec![
            format!("{params} @ N={n}"),
            report.configurations.to_string(),
            report.adversaries.to_string(),
            if report.certified() {
                "CERTIFIED".to_string()
            } else {
                format!(
                    "VIOLATION: {:?}",
                    report.violation.as_ref().map(|w| &w.violation)
                )
            },
            format!("{secs:.2}s"),
        ]);
    }
    print_table(
        "Theorem 1, machine-checked for small instances",
        &[
            "instance",
            "configurations",
            "adversary tables",
            "outcome",
            "time",
        ],
        &rows,
    );

    // The matching Theorem 2 side: at N-1 a violating adversary exists,
    // found by the same enumeration.
    let mut rows = Vec::new();
    for (m, u) in [(1usize, 1usize), (1, 2)] {
        let params = Params::new(m, u).expect("u >= m");
        let n = params.min_nodes() - 1;
        let inst =
            degradable::ByzInstance::new_below_bound(n, params, NodeId::new(0)).expect("in range");
        let faulty: BTreeSet<NodeId> = (n - u..n).map(NodeId::new).collect();
        let search = ExhaustiveSearch::new(
            inst,
            Val::Value(1),
            faulty,
            vec![Val::Default, Val::Value(1), Val::Value(2)],
        );
        let witness = search.find_violation().expect("small space");
        all_ok &= witness.is_some();
        rows.push(vec![
            format!("{params} @ N={n}"),
            search.combination_count().to_string(),
            match witness {
                Some(w) => format!("violation found: {}", w.violation),
                None => "UNEXPECTEDLY clean".to_string(),
            },
        ]);
    }
    print_table(
        "Theorem 2, witnessed one node below the bound",
        &["instance", "adversary tables", "outcome"],
        &rows,
    );

    if all_ok {
        println!("\nRESULT: Theorem 1 certified and Theorem 2 witnessed on the small models");
    } else {
        println!("\nRESULT: MISMATCH");
        std::process::exit(1);
    }
}
