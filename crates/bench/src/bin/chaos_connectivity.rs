//! **Experiment E13** — empirical certification of the Theorem 3
//! connectivity bound under link-level chaos.
//!
//! Two campaigns, one report (`results/chaos_connectivity.json`, schema
//! v4 — both campaigns' chaos counters also land in the `obs` registry
//! section, and `--trace-out PATH` writes a logical-clock Chrome trace):
//!
//! 1. **Relay sweep** — BYZ over [`sender_cut_topology`] with the cut-set
//!    size swept around `m+u+1` and the full Theorem 3 cut adversary (`u`
//!    faulty cut members corrupting crossing copies and lying as
//!    participants), overlaid with benign link chaos (duplication +
//!    arrival reordering) at increasing intensity. Expected: **zero**
//!    D.1–D.4 violations at connectivity `m+u+1` across every chaos
//!    intensity, and **at least one** at `m+u` — the bound is exact and
//!    chaos-stable.
//! 2. **Engine sweep** — BYZ as a message-passing protocol on the round
//!    engine with uniform [`ChaosConfig`] intensity (loss, duplication,
//!    reordering, corruption). Corruption is detectably garbled and reads
//!    as absence (`V_d`), so no chaos intensity may ever manufacture a
//!    *foreign* value at a fault-free receiver. Per-trial injected-fault
//!    counts are aggregated into the v2 report.
//!
//! The report contains no worker-count field: it is bit-identical for any
//! `--workers` value (every trial's randomness derives from the master
//! seed and trial index alone).

use degradable::adversary::Strategy;
use degradable::{
    check_degradable, run_sparse_chaotic, sender_cut_topology, ByzInstance, Params, RelayChaos,
    RelayCorruption, Val,
};
use harness::report::Table;
use harness::{ChaosConfig, ProtocolExecutor, Report, RunArgs, Scenario, SweepRunner};
use obs::{Obs, TimeMode};
use simnet::linkfault::Partition;
use simnet::{vertex_connectivity, NodeId};
use std::collections::BTreeMap;

/// One relay-sweep cell: parameters, cut size, and benign chaos level.
#[derive(Debug, Clone, Copy)]
struct RelayCell {
    m: usize,
    u: usize,
    n: usize,
    cut: usize,
    duplicate_p: f64,
    reorder: bool,
}

struct RelayRow {
    cells: Vec<String>,
    at_bound: bool,
    violations: usize,
    chaos_events: usize,
}

fn relay_cell(cell: &RelayCell, trials: usize, mut rng: simnet::SimRng, obs: &mut Obs) -> RelayRow {
    let span = obs.span(
        "chaos.relay_cell",
        vec![("cut", cell.cut as u64), ("n", cell.n as u64)],
    );
    let RelayCell {
        m,
        u,
        n,
        cut,
        duplicate_p,
        reorder,
    } = *cell;
    let params = Params::new(m, u).expect("u >= m");
    let inst = ByzInstance::new(n, params, NodeId::new(0)).expect("n within bounds");
    let topo = sender_cut_topology(n, cut);
    // The topology realizes exactly the claimed connectivity, and the
    // minimum vertex cut found by the Partition helper has that size.
    assert_eq!(vertex_connectivity(topo.graph()), cut);
    let separator = Partition::of(topo.graph()).expect("non-complete graph has a cut");
    assert_eq!(separator.len(), cut);

    // Theorem 3 cut adversary: u faulty cut members lie as participants
    // and corrupt every crossing copy to 9.
    let strategies: BTreeMap<NodeId, Strategy<u64>> = (2..2 + u)
        .map(|i| (NodeId::new(i), Strategy::ConstantLie(Val::Value(9))))
        .collect();
    let faulty: std::collections::BTreeSet<NodeId> = strategies.keys().copied().collect();

    let mut violations = 0usize;
    let mut chaos_events = 0usize;
    for _ in 0..trials {
        let chaos = RelayChaos {
            drop_p: 0.0,
            corrupt_p: 0.0,
            duplicate_p,
            reorder,
            seed: rng.below(u64::MAX),
        };
        let run = run_sparse_chaotic(
            &inst,
            &topo,
            &Val::Value(7),
            &strategies,
            &RelayCorruption::ReplaceWith(Val::Value(9)),
            true,
            &chaos,
        )
        .expect("below-bound runs allowed");
        chaos_events += run.chaos_events;
        let record = run.record(&inst, Val::Value(7), faulty.clone());
        if check_degradable(&record).is_violated() {
            violations += 1;
        }
    }

    obs.finish(span, chaos_events as u64);
    obs.add("chaos.relay_events", chaos_events as u64);
    obs.add("chaos.relay_violations", violations as u64);

    let at_bound = cut > m + u;
    RelayRow {
        cells: vec![
            format!("{m}/{u}"),
            n.to_string(),
            cut.to_string(),
            if at_bound { "m+u+1" } else { "m+u" }.to_string(),
            format!("{duplicate_p:.1}"),
            reorder.to_string(),
            trials.to_string(),
            chaos_events.to_string(),
            violations.to_string(),
        ],
        at_bound,
        violations,
        chaos_events,
    }
}

/// One engine-sweep row: uniform chaos intensity on the complete graph.
#[derive(Debug, Clone, Copy)]
struct EngineCell {
    drop_p: f64,
    corrupt_p: f64,
    duplicate_p: f64,
    reorder_window: usize,
}

struct EngineRow {
    cells: Vec<String>,
    foreign: usize,
    injected: usize,
}

fn engine_cell(
    cell: &EngineCell,
    trials: usize,
    mut rng: simnet::SimRng,
    obs: &mut Obs,
) -> EngineRow {
    let span = obs.span(
        "chaos.engine_cell",
        vec![("reorder_w", cell.reorder_window as u64)],
    );
    let chaos = ChaosConfig {
        drop_p: cell.drop_p,
        duplicate_p: cell.duplicate_p,
        reorder_window: cell.reorder_window,
        corrupt_p: cell.corrupt_p,
    };
    let mut foreign = 0usize;
    let mut injected = 0usize;
    let mut degraded_runs = 0usize;
    for _ in 0..trials {
        let scenario = Scenario::new(7, 1, 2)
            .with_sender_value(Val::Value(7))
            .with_strategy(NodeId::new(3), Strategy::ConstantLie(Val::Value(9)))
            .with_strategy(NodeId::new(5), Strategy::ConstantLie(Val::Value(9)))
            .with_master_seed(rng.below(u64::MAX))
            .with_chaos(chaos);
        let faulty = scenario.faulty();
        let (record, net) = ProtocolExecutor
            .execute_detailed(&scenario)
            .expect("valid scenario");
        injected += net.link_fault_injections();
        let mut saw_default = false;
        for (node, decision) in &record.decisions {
            if faulty.contains(node) {
                continue;
            }
            match decision {
                Val::Value(7) => {}
                Val::Default => saw_default = true,
                // Anything else is a value the chaos layer manufactured:
                // corruption must read as absence, never as a wrong value.
                Val::Value(_) => foreign += 1,
            }
        }
        if saw_default {
            degraded_runs += 1;
        }
    }
    obs.finish(span, injected as u64);
    obs.add("chaos.engine_injected", injected as u64);
    obs.add("chaos.engine_foreign_values", foreign as u64);

    EngineRow {
        cells: vec![
            format!("{:.2}", cell.drop_p),
            format!("{:.2}", cell.corrupt_p),
            format!("{:.2}", cell.duplicate_p),
            cell.reorder_window.to_string(),
            trials.to_string(),
            injected.to_string(),
            degraded_runs.to_string(),
            foreign.to_string(),
        ],
        foreign,
        injected,
    }
}

fn main() {
    println!("E13: Theorem 3 connectivity bound under link-level chaos");
    let args = RunArgs::parse();
    let master_seed = args.seed_or(0xC4A05);
    let trials = args.trials_or(12);
    let runner = SweepRunner::new(args.workers_or(4));

    // Campaign 1: relay sweep around the bound. Cases use u > m so the
    // below-bound cut attack deterministically tricks the acceptance rule
    // (u = k-m corrupted copies versus only m honest ones).
    let mut relay_cells = Vec::new();
    for &(m, u, n) in &[(1usize, 2usize, 8usize), (1, 3, 8)] {
        for cut in [m + u, m + u + 1] {
            for &(duplicate_p, reorder) in &[(0.0, false), (0.5, true), (1.0, true)] {
                relay_cells.push(RelayCell {
                    m,
                    u,
                    n,
                    cut,
                    duplicate_p,
                    reorder,
                });
            }
        }
    }
    let mut obs_rec = Obs::enabled();
    let relay_rows = runner.map_observed(
        master_seed,
        &relay_cells,
        &mut obs_rec,
        |_, cell, rng, obs| relay_cell(cell, trials, rng, obs),
    );

    // Campaign 2: engine sweep on the complete graph.
    let engine_cells = [
        EngineCell {
            drop_p: 0.0,
            corrupt_p: 0.0,
            duplicate_p: 0.0,
            reorder_window: 0,
        },
        EngineCell {
            drop_p: 0.2,
            corrupt_p: 0.0,
            duplicate_p: 0.0,
            reorder_window: 0,
        },
        EngineCell {
            drop_p: 0.0,
            corrupt_p: 0.2,
            duplicate_p: 0.0,
            reorder_window: 0,
        },
        EngineCell {
            drop_p: 0.0,
            corrupt_p: 0.0,
            duplicate_p: 1.0,
            reorder_window: 2,
        },
        EngineCell {
            drop_p: 0.15,
            corrupt_p: 0.15,
            duplicate_p: 0.3,
            reorder_window: 2,
        },
    ];
    let engine_rows = runner.map_observed(
        master_seed ^ 0xE16,
        &engine_cells,
        &mut obs_rec,
        |_, cell, rng, obs| engine_cell(cell, trials, rng, obs),
    );

    // Aggregate pass/fail.
    let violations_at_bound: usize = relay_rows
        .iter()
        .filter(|r| r.at_bound)
        .map(|r| r.violations)
        .sum();
    let violations_below_bound: usize = relay_rows
        .iter()
        .filter(|r| !r.at_bound)
        .map(|r| r.violations)
        .sum();
    let relay_chaos_events: usize = relay_rows.iter().map(|r| r.chaos_events).sum();
    let foreign_values: usize = engine_rows.iter().map(|r| r.foreign).sum();
    let engine_injected: usize = engine_rows.iter().map(|r| r.injected).sum();

    let relay_headers = [
        "m/u",
        "n",
        "cut",
        "regime",
        "dup_p",
        "reorder",
        "trials",
        "chaos_events",
        "violations",
    ];
    let engine_headers = [
        "drop_p",
        "corrupt_p",
        "dup_p",
        "reorder_w",
        "trials",
        "injected_faults",
        "degraded_runs",
        "foreign_values",
    ];

    let mut report = Report::new("chaos_connectivity");
    report
        .set_meta("master_seed", master_seed)
        .set_meta("trials_per_cell", trials)
        .set_metric("violations_at_bound", violations_at_bound)
        .set_metric("violations_below_bound", violations_below_bound)
        .set_metric("relay_chaos_events", relay_chaos_events)
        .set_metric("foreign_values_total", foreign_values)
        .set_metric("injected_faults_total", engine_injected)
        .add_table(Table::with_rows(
            "relay sweep: cut adversary + benign chaos around the m+u+1 bound",
            &relay_headers,
            relay_rows.iter().map(|r| r.cells.clone()).collect(),
        ))
        .add_table(Table::with_rows(
            "engine sweep: uniform chaos on the complete graph (corruption reads as absence)",
            &engine_headers,
            engine_rows.iter().map(|r| r.cells.clone()).collect(),
        ));
    report.set_obs_registry(obs_rec.registry());
    report.print_tables();
    if let Some(trace_path) = args.trace_out_path() {
        // Logical timestamps keep the file deterministic; wall times ride
        // along in span args for anyone who wants them.
        match std::fs::write(
            trace_path,
            obs::chrome_trace_json(&obs_rec, TimeMode::Logical),
        ) {
            Ok(()) => println!("\ntrace: {}", trace_path.display()),
            Err(e) => eprintln!("\ntrace write failed: {e}"),
        }
    }
    match report.write(args.out_path()) {
        Ok(path) => println!("\nreport: {}", path.display()),
        Err(e) => eprintln!("\nreport write failed: {e}"),
    }

    let bound_exact = violations_at_bound == 0 && violations_below_bound > 0;
    let safety = foreign_values == 0 && engine_injected > 0 && relay_chaos_events > 0;
    if bound_exact && safety {
        println!(
            "\nRESULT: matches Theorem 3 — 0 violations at connectivity m+u+1 \
             ({violations_below_bound} at m+u), no chaos-manufactured values"
        );
    } else {
        println!(
            "\nRESULT: MISMATCH (at_bound={violations_at_bound}, \
             below={violations_below_bound}, foreign={foreign_values})"
        );
        std::process::exit(1);
    }
}
