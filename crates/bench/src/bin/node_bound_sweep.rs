//! **Experiment E4** — Theorem 2 generalized: sweeping the node count `N`
//! around `2m+u+1` for several `(m, u)` and reporting, per `N`, whether
//! the structured below-bound adversary (u colluding constant liars with a
//! fault-free sender) breaks BYZ. The violation region must end exactly at
//! `N = 2m+u+1`.
//!
//! Runs through [`harness::SweepRunner`] (one worker task per `(m, u)`
//! row) and writes a versioned JSON report under `results/`.

use agreement_bench::print_csv;
use degradable::adversary::Strategy;
use degradable::{AdversaryRun, ByzInstance, Params, Val};
use harness::report::Table;
use harness::{Report, RunArgs, SweepRunner};
use simnet::NodeId;
use std::collections::BTreeMap;

fn verdict_at(n: usize, m: usize, u: usize) -> &'static str {
    let params = Params::new(m, u).expect("u >= m");
    // Inapplicable below u+2 (need u faulty receivers plus a fault-free
    // one) or below 2m+1 (the recursion's vote thresholds degenerate).
    if n < u + 2 || n < 2 * m + 1 {
        return "·";
    }
    let inst = match ByzInstance::new(n, params, NodeId::new(0)) {
        Ok(i) => i,
        Err(_) => ByzInstance::new_below_bound(n, params, NodeId::new(0)).expect("in range"),
    };
    let strategies: BTreeMap<NodeId, Strategy<u64>> = (n - u..n)
        .map(|i| (NodeId::new(i), Strategy::ConstantLie(Val::Value(2))))
        .collect();
    let verdict = AdversaryRun {
        instance: inst,
        sender_value: Val::Value(1),
        strategies,
    }
    .verdict();
    if verdict.is_violated() {
        "VIOLATED"
    } else {
        "ok"
    }
}

fn main() {
    println!("E4: node-count sweep around the 2m+u+1 bound (Theorem 2)");
    let args = RunArgs::parse();
    let cases = [(1usize, 1usize), (1, 2), (1, 3), (2, 2), (2, 3), (3, 3)];
    let max_n = 14usize;

    let headers: Vec<String> = std::iter::once("m/u (N_min)".to_string())
        .chain((3..=max_n).map(|n| n.to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    // Each (m, u) row is an independent deterministic sweep; the runner
    // fans the rows out over workers and keeps them in case order.
    let runner = SweepRunner::new(args.workers_or(4));
    let per_case = runner.map(args.seed_or(0xE4), &cases, |_, &(m, u), _rng| {
        let n_min = 2 * m + u + 1;
        let mut cells = vec![format!("{m}/{u} ({n_min})")];
        let mut exact = true;
        for n in 3..=max_n {
            let v = verdict_at(n, m, u);
            // The bound must be exact: violated at N = n_min - 1 (when the
            // scenario is runnable), ok from n_min on.
            if n >= n_min && v == "VIOLATED" {
                exact = false;
            }
            if n == n_min - 1 && v == "ok" && m >= 1 {
                exact = false;
            }
            cells.push(v.to_string());
        }
        (cells, exact)
    });
    let threshold_exact = per_case.iter().all(|(_, exact)| *exact);
    let rows: Vec<Vec<String>> = per_case.into_iter().map(|(cells, _)| cells).collect();

    let mut report = Report::new("node_bound_sweep");
    report
        .set_meta("workers", runner.workers())
        .set_metric("threshold_exact", threshold_exact)
        .add_table(Table::with_rows(
            "structured adversary outcome per node count (ok / VIOLATED / · = inapplicable)",
            &header_refs,
            rows.clone(),
        ));
    report.print_tables();
    print_csv("node_bound_sweep", &header_refs, &rows);
    match report.write(args.out_path()) {
        Ok(path) => println!("\nreport: {}", path.display()),
        Err(e) => eprintln!("\nreport write failed: {e}"),
    }

    if threshold_exact {
        println!("\nRESULT: matches Theorem 2 — the violation region ends exactly at N = 2m+u+1");
    } else {
        println!("\nRESULT: MISMATCH");
        std::process::exit(1);
    }
}
