//! **Experiment E6** — Section 6: clock synchronization.
//!
//! Three parts:
//!
//! 1. the classical interactive-convergence baseline and its `n/3`
//!    breaking point (references \[3, 5\] of the paper);
//! 2. **degradable clock synchronization** (Section 6.1): the candidate
//!    protocol built on degradable agreement, swept over fault counts and
//!    the adversary battery — reporting how often conditions 1 and 2 of
//!    the paper's problem statement held (the paper only conjectures
//!    achievability);
//! 3. the Section 6.2 hardware alternative: decoupled clock-fault budgets
//!    and witness clocks.

use agreement_bench::{pct, print_table};
use clocksync::prelude::*;
use degradable::adversary::Strategy;
use degradable::Params;
use simnet::{NodeId, SimRng};
use std::collections::BTreeMap;

fn main() {
    println!("E6: clock synchronization (Section 6)");

    // Part 1: interactive convergence baseline.
    let mut rows = Vec::new();
    let cfg = ConvergenceConfig::default();
    for (n, faulty) in [
        (4usize, vec![]),
        (4, vec![3]),
        (3, vec![2]),
        (7, vec![5, 6]),
    ] {
        let clocks: Vec<Clock> = if n == 3 && faulty == vec![2] {
            // the targeted two-faced clock that defeats n = 3
            vec![
                Clock::healthy(-900, 0),
                Clock::healthy(900, 0),
                Clock::faulty(
                    0,
                    0,
                    ClockFault::PerObserver {
                        deltas: [-2_800, 2_800, 0, 0, 0, 0, 0, 0],
                    },
                ),
            ]
        } else {
            ensemble(n, 1_000, 10, &faulty, 17)
        };
        let healthy: Vec<bool> = (0..n).map(|i| !faulty.contains(&i)).collect();
        let out = run_convergence(&clocks, &healthy, cfg);
        rows.push(vec![
            n.to_string(),
            faulty.len().to_string(),
            format!(
                "{}",
                if 3 * faulty.len() < n {
                    "f < n/3"
                } else {
                    "f >= n/3"
                }
            ),
            out.skew_per_round
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(" "),
        ]);
    }
    print_table(
        "interactive convergence: fault-free skew per round (microticks)",
        &["n", "f", "regime", "skew trajectory"],
        &rows,
    );

    // Part 2: degradable clock synchronization.
    let mut rows = Vec::new();
    let mut conjecture_held = true;
    for (m, u, n) in [(1usize, 2usize, 5usize), (1, 4, 7), (2, 2, 7)] {
        let params = Params::new(m, u).expect("u >= m");
        let config = SyncConfig {
            params,
            sync_tolerance: 10,
            real_time_tolerance: 2_000,
        };
        for f in 0..=u {
            let mut checked = 0usize;
            let mut held = 0usize;
            let mut detections = 0usize;
            let mut rng = SimRng::seed(0xC10C + f as u64);
            for trial in 0..12usize {
                let faulty_idx = rng.choose_indices(n, f);
                for (_, strat) in Strategy::battery(10_000_000, 10_050_000, trial as u64) {
                    let clocks = ensemble(n, 1_000, 0, &faulty_idx, 31 + trial as u64);
                    let strategies: BTreeMap<NodeId, Strategy<u64>> = faulty_idx
                        .iter()
                        .map(|&i| (NodeId::new(i), strat.clone()))
                        .collect();
                    let out = run_degradable_sync(&clocks, &strategies, config, 10_000_000);
                    checked += 1;
                    let ok = match (out.condition1, out.condition2) {
                        (Some(c1), _) => c1,
                        (_, Some(c2)) => c2,
                        _ => true,
                    };
                    if ok {
                        held += 1;
                    }
                    if !out.detectors.is_empty() {
                        detections += 1;
                    }
                }
                if f == 0 {
                    break;
                }
            }
            if held != checked {
                conjecture_held = false;
            }
            rows.push(vec![
                format!("{m}/{u} (n={n})"),
                f.to_string(),
                if f <= m { "condition 1" } else { "condition 2" }.to_string(),
                format!("{held}/{checked}"),
                pct(detections as f64 / checked as f64),
            ]);
        }
    }
    print_table(
        "degradable clock sync: paper conditions held per fault count",
        &["params", "f", "applicable", "held", "runs w/ detection"],
        &rows,
    );
    println!(
        "(the paper only *conjectures* achievability; the candidate protocol satisfied the \
         conditions in {} of the sampled scenarios)",
        if conjecture_held { "all" } else { "NOT all" }
    );

    // Part 2b: periodic resynchronization under drift.
    let mut rows = Vec::new();
    for (label, faulty, strat) in [
        ("no faults", vec![], None),
        (
            "1 liar (f<=m)",
            vec![4usize],
            Some(Strategy::ConstantLie(degradable::Val::Value(77))),
        ),
        ("2 silent (m<f<=u)", vec![3, 4], Some(Strategy::Silent)),
    ] {
        let clocks = ensemble(5, 1_000, 100, &faulty, 23);
        let strategies: BTreeMap<NodeId, Strategy<u64>> = match &strat {
            None => BTreeMap::new(),
            Some(s) => faulty
                .iter()
                .map(|&i| (NodeId::new(i), s.clone()))
                .collect(),
        };
        let out = run_periodic_sync(
            &clocks,
            &strategies,
            PeriodicConfig {
                sync: SyncConfig {
                    params: Params::new(1, 2).expect("1 <= 2"),
                    sync_tolerance: 10,
                    real_time_tolerance: 2_000,
                },
                period: 1_000_000,
                rounds: 8,
            },
        );
        rows.push(vec![
            label.to_string(),
            out.skew_per_round
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(" "),
            out.failed_rounds.len().to_string(),
        ]);
        conjecture_held &= out.failed_rounds.is_empty();
    }
    print_table(
        "periodic degradable sync under ±100ppm drift (1/2, n=5): skew after each resync",
        &[
            "scenario",
            "skew per round (microticks)",
            "condition failures",
        ],
        &rows,
    );

    // Part 3: hardware clocks and witnesses (Section 6.2).
    let mut rows = Vec::new();
    for (n, witnesses, clock_faults) in [(5usize, 0usize, 1usize), (5, 0, 2), (5, 2, 2)] {
        let total = n + witnesses;
        let faulty_idx: Vec<usize> = (0..clock_faults).collect();
        let flags: Vec<bool> = (0..total).map(|i| faulty_idx.contains(&i)).collect();
        let e = HardwareEnsemble::new(
            ensemble(n, 500, 0, &faulty_idx, 41),
            ensemble(witnesses, 500, 0, &[], 43),
            flags,
        );
        let viable = e.clock_plane_viable();
        let skew = if viable {
            e.synchronize(ConvergenceConfig::default())
                .final_skew()
                .to_string()
        } else {
            "-".to_string()
        };
        rows.push(vec![
            n.to_string(),
            witnesses.to_string(),
            clock_faults.to_string(),
            e.tolerable_clock_faults().to_string(),
            viable.to_string(),
            skew,
        ]);
    }
    print_table(
        "hardware clock plane (Section 6.2): witnesses raise the clock-fault budget",
        &[
            "processors",
            "witness clocks",
            "clock faults",
            "tolerable",
            "viable",
            "final skew",
        ],
        &rows,
    );

    if conjecture_held {
        println!("\nRESULT: consistent with Section 6 (baseline breaks at n/3; degradable-sync conditions held empirically; witnesses extend the budget)");
    } else {
        println!("\nRESULT: candidate protocol failed the conjectured conditions in some scenario");
        std::process::exit(1);
    }
}
