//! **Experiment E16** — batched agreement throughput: the arena-backed
//! batch service vs one-at-a-time execution.
//!
//! Workload: a K-slot single-sender stream (node 0 proposes K values —
//! a replicated-log shape) on BYZ(m,m) instances, with a random fault
//! set and random battery strategies per trial. Every trial runs the
//! same slots through **three** executors on identical inputs:
//!
//! 1. [`degradable::run_batch`] — one multiplexed engine run, one shared
//!    arena per sender, memoized bottom-up resolve per instance;
//! 2. sequential [`degradable::run_protocol`] — K independent protocol
//!    runs (already arena-backed per instance, but each rebuilds its
//!    arena and pays K engine executions);
//! 3. sequential [`degradable::run_batch_reference`], one slot per call —
//!    the true one-at-a-time legacy pipeline: K engine runs, each
//!    resolved by a recursive [`degradable::EigView`] fold per receiver
//!    with no arena and no memoization.
//!
//! Decisions must be bit-identical across all three, and the batch's
//! total message count must equal the sequential sum (multiplexing is
//! pure transport fusion). The report lands in
//! **`BENCH_batch_throughput.json`** at the repo root (override with
//! `--out`). Flags beyond the shared [`RunArgs`]: `--max-n N` caps the
//! sweep (CI smoke uses `--max-n 8`), `--no-timing` drops wall columns
//! and the wall gate so the report is bit-identical across
//! `--workers 1/2/8`.
//!
//! Acceptance: zero decision mismatches across all three executors, and
//! the batch's sent count must equal the sequential sum (transport
//! fusion changes nothing semantically). The **≥ 2× gate** is on
//! materialization: per trial, one-at-a-time execution materializes K
//! arenas of interned path labels where the single-sender batch
//! materializes exactly one, so at K = 16 the advantage is 16×
//! (`arena_reuse_k16_x100`) — deterministic, enforced in every mode.
//! Wall times are reported for the trajectory (`x_seq`, `x_legacy`) and
//! only sanity-gated — in timing mode at full scale the batch must not
//! run slower than **1.2× under** the legacy one-at-a-time fold at
//! `N = 13, m = 2, K = 16` — because end-to-end wall is dominated by
//! the shared per-envelope transport cost, which the batch neither adds
//! to nor removes, and CI wall clocks are noisy.

use degradable::adversary::Strategy;
use degradable::{
    run_batch, run_batch_reference, run_protocol, BatchInstance, ByzInstance, Params, Val,
};
use harness::report::Table;
use harness::{Report, RunArgs, SweepRunner};
use obs::{Obs, TimeMode};
use simnet::{EigPerf, NodeId, SimRng};
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

/// One sweep cell: a BYZ(m,m) shape and a stream length.
#[derive(Debug, Clone, Copy)]
struct Cell {
    m: usize,
    n: usize,
    k: usize,
}

/// Per-cell aggregate across trials.
struct Row {
    m: usize,
    n: usize,
    k: usize,
    trials: usize,
    perf: EigPerf,
    arena_builds: usize,
    batch_sent: usize,
    batch_nanos: u64,
    seq_nanos: u64,
    legacy_nanos: u64,
    mismatches: usize,
}

impl Row {
    /// Arena builds saved by sender-sharing: sequential execution builds
    /// one arena per slot, the batch one per distinct sender.
    fn reuse_factor(&self) -> f64 {
        if self.arena_builds == 0 {
            return 0.0;
        }
        (self.k * self.trials) as f64 / self.arena_builds as f64
    }

    fn speedup_seq(&self) -> f64 {
        if self.batch_nanos == 0 {
            return 0.0;
        }
        self.seq_nanos as f64 / self.batch_nanos as f64
    }

    fn speedup_legacy(&self) -> f64 {
        if self.batch_nanos == 0 {
            return 0.0;
        }
        self.legacy_nanos as f64 / self.batch_nanos as f64
    }

    fn cells(&self, timing: bool) -> Vec<String> {
        let mut out = vec![
            self.m.to_string(),
            self.n.to_string(),
            self.k.to_string(),
            self.trials.to_string(),
            self.batch_sent.to_string(),
            self.arena_builds.to_string(),
            format!("{:.0}", self.reuse_factor()),
            self.perf.messages_materialized.to_string(),
            self.perf.votes_evaluated.to_string(),
            self.perf.votes_memo_hit.to_string(),
        ];
        if timing {
            out.push(self.batch_nanos.to_string());
            out.push(self.seq_nanos.to_string());
            out.push(self.legacy_nanos.to_string());
            out.push(format!("{:.2}", self.speedup_seq()));
            out.push(format!("{:.2}", self.speedup_legacy()));
        } else {
            out.extend(std::iter::repeat_n("-".to_string(), 5));
        }
        out
    }
}

fn run_cell(cell: &Cell, trials: usize, timing: bool, mut rng: SimRng, obs: &mut Obs) -> Row {
    let span = obs.span(
        "bench.batch_cell",
        vec![
            ("m", cell.m as u64),
            ("n", cell.n as u64),
            ("k", cell.k as u64),
        ],
    );
    let Cell { m, n, k } = *cell;
    let params = Params::new(m, m).expect("u = m is valid");
    let sender = NodeId::new(0);
    let instances: Vec<BatchInstance<u64>> = (0..k)
        .map(|slot| BatchInstance {
            sender,
            value: Val::Value(7 + slot as u64),
        })
        .collect();

    let mut perf = EigPerf::default();
    let mut arena_builds = 0usize;
    let mut batch_sent = 0usize;
    let mut batch_nanos = 0u64;
    let mut seq_nanos = 0u64;
    let mut legacy_nanos = 0u64;
    let mut mismatches = 0usize;

    for _ in 0..trials {
        // Up to 2m faulty relayers among the non-sender nodes, each with
        // an independently drawn battery strategy — same fault model as
        // the E14 baseline.
        let fault_count = rng.below(2 * m as u64 + 1) as usize;
        let battery = Strategy::battery(3, 9, rng.below(u64::MAX));
        let strategies: BTreeMap<NodeId, Strategy<u64>> = rng
            .choose_indices(n - 1, fault_count)
            .into_iter()
            .map(|i| {
                let strategy = rng.pick(&battery).expect("battery non-empty").1.clone();
                (NodeId::new(i + 1), strategy)
            })
            .collect();
        let seed = rng.below(u64::MAX);

        let t0 = Instant::now();
        let batch = run_batch(params, n, &instances, &strategies, seed);
        let t1 = Instant::now();
        let single = ByzInstance::new(n, params, sender).expect("n >= 3m + 1");
        let mut seq_sent = 0usize;
        for (slot, inst) in instances.iter().enumerate() {
            let solo = run_protocol(&single, &inst.value, &strategies, seed);
            seq_sent += solo.net.sent;
            if solo.decisions != batch.decisions[slot] {
                mismatches += 1;
            }
        }
        let t2 = Instant::now();
        for (slot, inst) in instances.iter().enumerate() {
            let legacy =
                run_batch_reference(params, n, std::slice::from_ref(inst), &strategies, seed);
            if legacy.decisions[0] != batch.decisions[slot] {
                mismatches += 1;
            }
        }
        let t3 = Instant::now();
        if batch.net.sent != seq_sent {
            mismatches += 1; // transport fusion must not change traffic
        }
        if timing {
            batch_nanos += (t1 - t0).as_nanos() as u64;
            seq_nanos += (t2 - t1).as_nanos() as u64;
            legacy_nanos += (t3 - t2).as_nanos() as u64;
        }
        perf.absorb(&batch.net.eig);
        arena_builds += batch.arena_builds;
        batch_sent += batch.net.sent;
    }

    obs.finish(span, perf.votes_evaluated + perf.votes_memo_hit);
    if let Some(registry) = obs.registry_mut() {
        perf.fold_into(registry);
    }

    Row {
        m,
        n,
        k,
        trials,
        perf,
        arena_builds,
        batch_sent,
        batch_nanos,
        seq_nanos,
        legacy_nanos,
        mismatches,
    }
}

fn main() {
    println!("E16: batched agreement throughput — arena batch vs sequential vs legacy fold");
    let args = RunArgs::parse();
    let mut max_n = 13usize;
    let mut timing = true;
    let mut raw = std::env::args().skip(1);
    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--no-timing" => timing = false,
            "--max-n" => {
                if let Some(v) = raw.next().and_then(|v| v.parse().ok()) {
                    max_n = v;
                }
            }
            _ => {
                if let Some(v) = arg.strip_prefix("--max-n=").and_then(|v| v.parse().ok()) {
                    max_n = v;
                }
            }
        }
    }

    let master_seed = args.seed_or(0xE16);
    let trials = args.trials_or(8);
    let runner = SweepRunner::new(args.workers_or(1));

    let mut cells = Vec::new();
    for (m, n) in [(1usize, 5usize), (1, 8), (2, 9), (2, 13)] {
        if n > max_n {
            continue;
        }
        for k in [1usize, 4, 16] {
            cells.push(Cell { m, n, k });
        }
    }
    let mut obs_rec = Obs::enabled();
    let rows = runner.map_observed(master_seed, &cells, &mut obs_rec, |_, cell, rng, obs| {
        run_cell(cell, trials, timing, rng, obs)
    });

    let mut total = EigPerf::default();
    let mut mismatches = 0usize;
    for row in &rows {
        total.absorb(&row.perf);
        mismatches += row.mismatches;
    }
    obs::scrub_timing(&mut total);
    let gate_row = rows.iter().find(|r| r.n == 13 && r.m == 2 && r.k == 16);
    let reuse_k16 = rows
        .iter()
        .filter(|r| r.k == 16)
        .map(Row::reuse_factor)
        .fold(f64::INFINITY, f64::min);

    let headers = [
        "m",
        "n",
        "k",
        "trials",
        "sent",
        "arena_builds",
        "reuse",
        "messages",
        "votes_evaluated",
        "votes_memo_hit",
        "batch_ns",
        "seq_ns",
        "legacy_ns",
        "x_seq",
        "x_legacy",
    ];
    let mut report = Report::new("batch_throughput");
    report
        .set_meta("master_seed", master_seed)
        .set_meta("trials_per_cell", trials)
        .set_meta("max_n", max_n)
        .set_meta("timing", timing)
        .set_metric("decision_mismatches", mismatches)
        .set_metric("arena_reuse_k16_x100", (reuse_k16 * 100.0).round() as u64)
        // The acceptance gate: interned path-label materializations,
        // one-at-a-time (K arenas) vs batch (one per distinct sender).
        .set_metric(
            "materialization_advantage_k16_x100",
            (reuse_k16 * 100.0).round() as u64,
        )
        .set_eig_perf(&total);
    if timing {
        if let Some(r) = gate_row {
            report.set_metric(
                "speedup_legacy_n13_m2_k16_x100",
                (r.speedup_legacy() * 100.0).round() as u64,
            );
            report.set_metric(
                "speedup_seq_n13_m2_k16_x100",
                (r.speedup_seq() * 100.0).round() as u64,
            );
        }
    }
    report.set_obs_registry(obs_rec.registry());
    report.add_table(Table::with_rows(
        "arena batch vs sequential vs legacy per-view fold \
         (per-cell totals; timing columns '-' under --no-timing)",
        &headers,
        rows.iter().map(|r| r.cells(timing)).collect(),
    ));
    report.print_tables();
    if let Some(trace_path) = args.trace_out_path() {
        let mode = if timing {
            TimeMode::Wall
        } else {
            obs::scrub_timing(&mut obs_rec);
            TimeMode::Logical
        };
        match std::fs::write(trace_path, obs::chrome_trace_json(&obs_rec, mode)) {
            Ok(()) => println!("\ntrace: {}", trace_path.display()),
            Err(e) => eprintln!("\ntrace write failed: {e}"),
        }
    }
    let default_out = Path::new("BENCH_batch_throughput.json");
    let out = args.out_path().unwrap_or(default_out);
    match report.write(Some(out)) {
        Ok(path) => println!("\nreport: {}", path.display()),
        Err(e) => eprintln!("\nreport write failed: {e}"),
    }

    // Gates: decisions always; the >=2x materialization advantage always
    // (deterministic); the wall sanity floor only in timing mode at full
    // scale.
    let reuse_ok = reuse_k16 >= 2.0;
    let legacy_speedup = gate_row.map(Row::speedup_legacy);
    let speedup_ok = !timing || max_n < 13 || legacy_speedup.map(|s| s >= 1.2).unwrap_or(false);
    if mismatches == 0 && reuse_ok && speedup_ok {
        match legacy_speedup {
            Some(s) if timing => println!(
                "\nRESULT: all three executors bit-identical, {reuse_k16:.0}x arena reuse \
                 at K=16, {s:.2}x vs legacy fold at N=13 m=2 K=16"
            ),
            _ => println!(
                "\nRESULT: all three executors bit-identical, {reuse_k16:.0}x arena reuse \
                 at K=16 (timing suppressed)"
            ),
        }
    } else {
        println!(
            "\nRESULT: FAIL (mismatches={mismatches}, reuse_k16={reuse_k16:.1}, \
             speedup_legacy={legacy_speedup:?})"
        );
        std::process::exit(1);
    }
}
