//! **Experiment E5** — Theorem 3: network connectivity `m+u+1` is
//! necessary and sufficient for `m/u`-degradable agreement.
//!
//! * **Sufficiency**: BYZ composed with disjoint-path degradable relays on
//!   topologies of connectivity exactly `m+u+1` (Harary graphs and the
//!   sender-cut construction) satisfies D.1–D.4 under the adversary
//!   battery.
//! * **Necessity**: at connectivity `m+u`, the proof's cut adversary
//!   (faults `F_2 ⊂ F`, `|F_2| = u`, corrupting crossing copies) makes a
//!   fault-free receiver accept a wrong value — D.3 violated.

use agreement_bench::print_table;
use degradable::adversary::Strategy;
use degradable::sparse::{run_sparse, sender_cut_topology, RelayCorruption};
use degradable::{check_degradable, ByzInstance, Params, Val};
use simnet::{vertex_connectivity, NodeId, Topology};
use std::collections::BTreeMap;

fn main() {
    println!("E5: connectivity bound (Theorem 3)");
    let mut rows = Vec::new();
    let mut all_ok = true;

    for (m, u, n) in [(1usize, 1usize, 8usize), (1, 2, 8), (1, 3, 10), (2, 2, 10)] {
        let params = Params::new(m, u).expect("u >= m");
        let kappa_req = params.min_connectivity();
        let inst = ByzInstance::new(n, params, NodeId::new(0)).expect("enough nodes");

        // --- Sufficiency on Harary graphs at exactly m+u+1 ---
        let topo = Topology::harary(kappa_req, n);
        let kappa = vertex_connectivity(topo.graph());
        let mut suff_ok = true;
        for fcase in 1..=u {
            let strategies: BTreeMap<NodeId, Strategy<u64>> = (1..=fcase)
                .map(|i| (NodeId::new(n - i), Strategy::ConstantLie(Val::Value(9))))
                .collect();
            let faulty = strategies.keys().copied().collect();
            let run = run_sparse(
                &inst,
                &topo,
                &Val::Value(7),
                &strategies,
                &RelayCorruption::ReplaceWith(Val::Value(9)),
                false,
            )
            .expect("connectivity satisfied");
            let verdict = check_degradable(&run.record(&inst, Val::Value(7), faulty));
            if !verdict.is_satisfied() {
                suff_ok = false;
            }
        }
        rows.push(vec![
            format!("{m}/{u}"),
            topo.name().to_string(),
            format!("{kappa} (= m+u+1 = {kappa_req})"),
            "battery f=1..u".into(),
            if suff_ok {
                "all conditions hold".into()
            } else {
                "VIOLATION".to_string()
            },
        ]);
        all_ok &= suff_ok;

        // --- Necessity on the sender-cut topology at m+u ---
        let below = sender_cut_topology(n, kappa_req - 1);
        let kappa_below = vertex_connectivity(below.graph());
        let f2: BTreeMap<NodeId, Strategy<u64>> = (1..=u)
            .map(|i| (NodeId::new(i), Strategy::ConstantLie(Val::Value(9))))
            .collect();
        let faulty = f2.keys().copied().collect();
        let run = run_sparse(
            &inst,
            &below,
            &Val::Value(7),
            &f2,
            &RelayCorruption::ReplaceWith(Val::Value(9)),
            true,
        )
        .expect("below-bound run allowed");
        let verdict = check_degradable(&run.record(&inst, Val::Value(7), faulty));
        let necessity_shown = verdict.is_violated();
        rows.push(vec![
            format!("{m}/{u}"),
            below.name().to_string(),
            format!("{kappa_below} (= m+u = {})", kappa_req - 1),
            format!("cut adversary F_2 (|F_2| = {u})"),
            if necessity_shown {
                "VIOLATED (as the theorem requires)".into()
            } else {
                "UNEXPECTEDLY satisfied".to_string()
            },
        ]);
        all_ok &= necessity_shown;
    }

    print_table(
        "degradable agreement over sparse topologies",
        &["params", "topology", "connectivity", "adversary", "outcome"],
        &rows,
    );

    if all_ok {
        println!("\nRESULT: matches Theorem 3 — agreement holds at connectivity m+u+1 and a cut adversary breaks it at m+u");
    } else {
        println!("\nRESULT: MISMATCH");
        std::process::exit(1);
    }
}
