//! **Experiment E21** — persistent service throughput: sustained
//! agreement decisions through a pooled [`degradable::ServiceState`].
//!
//! Workload: per shape `N ∈ {5..13}` (BYZ(1,1) up to N = 8, BYZ(2,2)
//! above), one long-lived service instance ingests a seeded stream in
//! waves sized to the in-flight target — up to 10 000 instances in
//! flight at N = 5, scaling down as the per-instance message volume
//! grows — with senders round-robin over the cluster and values cycling
//! a small domain. The first wave is a warmup drained under disabled
//! observability (it builds the per-sender arenas and the store pool);
//! the measured waves then drain with recording on, so the `svc.pool.*`
//! counters in the report cover exactly the steady state the pooling
//! contract is about. One measured wave per cell is replayed through
//! the one-shot [`degradable::run_batch`] oracle on identical inputs as
//! a live decision-equivalence sample.
//!
//! The report lands in **`BENCH_service_throughput.json`** at the repo
//! root (override with `--out`). Flags beyond the shared
//! [`RunArgs`]: `--max-n N` caps the sweep (CI smoke), `--no-timing`
//! drops the wall columns so the report is bit-identical across
//! `--workers 1/2/8` (the worker count is the service's resolve shard
//! count; decisions and counters are worker-count-independent by
//! construction).
//!
//! Acceptance (declarative [`SloSpec`], recorded in the report):
//! arena reuse ≥ 95 % of pool requests after warmup (measured window —
//! it is 100 % by construction, the gate guards the pooling contract),
//! store reuse ≥ 95 %, zero sheds (waves never exceed the queue), zero
//! decision mismatches against the oracle, and per-instance work tails
//! `svc.instance.messages` p99 ≤ 2048 / `svc.instance.logical`
//! p99 ≤ 1024 across every shape.

use degradable::{run_batch, BatchInstance, Params, ServiceConfig, ServiceState, Strategy, Val};
use harness::report::Table;
use harness::{Report, RunArgs, SloSpec, SweepRunner};
use obs::{Obs, TimeMode};
use simnet::NodeId;
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

/// One sweep cell: a BYZ(m,m) shape and its in-flight target.
#[derive(Debug, Clone, Copy)]
struct Cell {
    m: usize,
    n: usize,
    in_flight: usize,
}

/// How many instances a shape keeps in flight per wave: 10 000 at
/// N = 5, shrinking as per-instance message volume grows so every cell
/// finishes in comparable wall time.
fn in_flight_for(n: usize) -> usize {
    10_000 / (n - 4)
}

const MEASURED_WAVES: usize = 3;

/// Per-cell aggregate.
struct Row {
    m: usize,
    n: usize,
    in_flight: usize,
    decided: u64,
    arena_builds: u64,
    arena_reuses: u64,
    store_reuses: u64,
    shed: u64,
    p50_logical: u64,
    p99_logical: u64,
    p50_messages: u64,
    p99_messages: u64,
    wall_nanos: u64,
    mismatches: usize,
}

impl Row {
    /// Sustained decisions per second over the measured waves.
    fn rate(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.decided as f64 * 1e9 / self.wall_nanos as f64
    }

    fn cells(&self, timing: bool) -> Vec<String> {
        let mut out = vec![
            self.m.to_string(),
            self.n.to_string(),
            self.in_flight.to_string(),
            self.decided.to_string(),
            self.arena_builds.to_string(),
            self.arena_reuses.to_string(),
            self.store_reuses.to_string(),
            self.shed.to_string(),
            self.p50_logical.to_string(),
            self.p99_logical.to_string(),
            self.p50_messages.to_string(),
            self.p99_messages.to_string(),
        ];
        if timing {
            out.push(self.wall_nanos.to_string());
            out.push(format!("{:.0}", self.rate()));
        } else {
            out.extend(std::iter::repeat_n("-".to_string(), 2));
        }
        out
    }
}

fn run_cell(cell: &Cell, workers: usize, seed: u64, timing: bool, obs: &mut Obs) -> Row {
    let Cell { m, n, in_flight } = *cell;
    let params = Params::new(m, m).expect("u = m is valid");
    let config = ServiceConfig {
        queue_capacity: in_flight,
        workers,
    };
    let mut svc: ServiceState<u64> =
        ServiceState::new(params, n, config).expect("shapes are in 5..=13");
    let strategies: BTreeMap<NodeId, Strategy<u64>> = BTreeMap::new();

    let mut next_id = 0u64;
    let mut offer_wave = |svc: &mut ServiceState<u64>| -> Vec<BatchInstance<u64>> {
        let mut wave = Vec::with_capacity(in_flight);
        for _ in 0..in_flight {
            let inst = BatchInstance {
                sender: NodeId::new((next_id as usize) % n),
                value: Val::Value(next_id % 5),
            };
            svc.ingest(next_id, inst.clone())
                .expect("wave size equals queue capacity");
            wave.push(inst);
            next_id += 1;
        }
        wave
    };

    // Warmup: builds every per-sender arena and the store pool, outside
    // the recording window, so the measured `svc.pool.*` counters speak
    // only about the steady state.
    offer_wave(&mut svc);
    svc.drain_observed(&strategies, seed, &mut Obs::disabled());
    let warmed = svc.stats();

    // Measured waves, one local recorder per cell so the table can show
    // per-shape quantiles before everything merges into the report.
    let mut local = Obs::enabled();
    let mut mismatches = 0usize;
    let t0 = Instant::now();
    for wave_idx in 0..MEASURED_WAVES {
        let wave = offer_wave(&mut svc);
        let drain_seed = seed ^ (wave_idx as u64 + 1);
        let batch = svc.drain_observed(&strategies, drain_seed, &mut local);
        if wave_idx == 0 {
            let oracle = run_batch(params, n, &wave, &strategies, drain_seed);
            if oracle.decisions != batch.run.decisions {
                mismatches += 1;
            }
        }
    }
    let wall_nanos = if timing {
        t0.elapsed().as_nanos() as u64
    } else {
        0
    };

    let stats = svc.stats();
    let quantiles = |name: &str| {
        let h = local
            .registry()
            .histogram(name)
            .expect("recorded histogram");
        (
            h.quantile(0.5).map_or(0, |v| v as u64),
            h.quantile(0.99).map_or(0, |v| v as u64),
        )
    };
    let (p50_logical, p99_logical) = quantiles("svc.instance.logical");
    let (p50_messages, p99_messages) = quantiles("svc.instance.messages");
    local.add("e21.decision_mismatches", mismatches as u64);
    obs.merge(&local);

    Row {
        m,
        n,
        in_flight,
        decided: stats.decided - warmed.decided,
        arena_builds: stats.arena_builds - warmed.arena_builds,
        arena_reuses: stats.arena_reuses - warmed.arena_reuses,
        store_reuses: stats.store_reuses - warmed.store_reuses,
        shed: stats.shed,
        p50_logical,
        p99_logical,
        p50_messages,
        p99_messages,
        wall_nanos,
        mismatches,
    }
}

fn main() {
    println!("E21: persistent service throughput — pooled ServiceState under sustained load");
    let args = RunArgs::parse();
    let mut max_n = 13usize;
    let mut timing = true;
    let mut raw = std::env::args().skip(1);
    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--no-timing" => timing = false,
            "--max-n" => {
                if let Some(v) = raw.next().and_then(|v| v.parse().ok()) {
                    max_n = v;
                }
            }
            _ => {
                if let Some(v) = arg.strip_prefix("--max-n=").and_then(|v| v.parse().ok()) {
                    max_n = v;
                }
            }
        }
    }

    let master_seed = args.seed_or(0xE21);
    let workers = args.workers_or(1);
    let runner = SweepRunner::new(workers);

    let cells: Vec<Cell> = (5..=13)
        .filter(|&n| n <= max_n)
        .map(|n| Cell {
            m: if n <= 8 { 1 } else { 2 },
            n,
            in_flight: in_flight_for(n),
        })
        .collect();

    let mut obs_rec = Obs::enabled();
    let rows = runner.map_observed(
        master_seed,
        &cells,
        &mut obs_rec,
        |_, cell, mut rng, obs| run_cell(cell, workers, rng.below(u64::MAX), timing, obs),
    );

    let mismatches: usize = rows.iter().map(|r| r.mismatches).sum();
    let decided: u64 = rows.iter().map(|r| r.decided).sum();
    let arena_reuse_x100 = {
        let reg = obs_rec.registry();
        let builds = reg.counter("svc.pool.arena_builds");
        let requests = reg.counter("svc.pool.arena_requests");
        ((requests - builds) * 100)
            .checked_div(requests)
            .unwrap_or(0)
    };
    if !timing {
        obs::scrub_timing(&mut obs_rec);
    }

    // The declarative contract: pooling holds in the steady state, the
    // queue never sheds (waves are sized to capacity), the oracle never
    // disagrees, and per-instance work tails stay bounded across shapes.
    let spec = SloSpec::new("e21-service-steady-state")
        .ratio_at_least("svc.pool.arena_reuses", "svc.pool.arena_requests", 95)
        .ratio_at_least("svc.pool.store_reuses", "svc.pool.store_requests", 95)
        .zero("svc.queue.shed")
        .zero("e21.decision_mismatches")
        .zero("batch.spoofs_rejected")
        .p99_at_most("svc.instance.messages", 2048)
        .p99_at_most("svc.instance.logical", 1024)
        .counter_at_least("svc.pool.store_reuses", 1);
    let slo = spec.evaluate(obs_rec.registry());
    let slo_passed = slo.passed();
    let slo_failures: Vec<String> = slo.failures().iter().map(|s| s.to_string()).collect();

    let mut report = Report::new("service_throughput");
    report
        .set_meta("master_seed", master_seed)
        .set_meta("max_n", max_n)
        .set_meta("measured_waves", MEASURED_WAVES)
        .set_meta("timing", timing)
        .set_metric("decision_mismatches", mismatches)
        .set_metric("instances_decided", decided)
        .set_metric("arena_reuse_measured_x100", arena_reuse_x100);
    if timing {
        let peak = rows.iter().map(Row::rate).fold(0.0f64, f64::max);
        report.set_metric("peak_instances_per_sec", peak.round() as u64);
    }
    report.set_obs_registry(obs_rec.registry());
    report.set_slo(slo);
    report.add_table(Table::with_rows(
        "persistent service, measured waves after one warmup wave \
         (timing columns '-' under --no-timing)",
        &[
            "m",
            "n",
            "in_flight",
            "decided",
            "arena_builds",
            "arena_reuses",
            "store_reuses",
            "shed",
            "p50_logical",
            "p99_logical",
            "p50_msgs",
            "p99_msgs",
            "wall_ns",
            "inst_per_sec",
        ],
        rows.iter().map(|r| r.cells(timing)).collect(),
    ));
    report.print_tables();
    if let Some(trace_path) = args.trace_out_path() {
        let mode = if timing {
            TimeMode::Wall
        } else {
            TimeMode::Logical
        };
        match std::fs::write(trace_path, obs::chrome_trace_json(&obs_rec, mode)) {
            Ok(()) => println!("\ntrace: {}", trace_path.display()),
            Err(e) => eprintln!("\ntrace write failed: {e}"),
        }
    }
    let default_out = Path::new("BENCH_service_throughput.json");
    let out = args.out_path().unwrap_or(default_out);
    match report.write(Some(out)) {
        Ok(path) => println!("\nreport: {}", path.display()),
        Err(e) => eprintln!("\nreport write failed: {e}"),
    }

    if mismatches == 0 && slo_passed {
        println!(
            "\nRESULT: {decided} instances decided, oracle-identical, \
             {arena_reuse_x100}% arena reuse in the measured window"
        );
    } else {
        println!("\nRESULT: FAIL (mismatches={mismatches}, slo failures: {slo_failures:?})");
        std::process::exit(1);
    }
}
