//! **Experiment E14** — committed performance baseline for the
//! arena-backed EIG engine.
//!
//! Sweeps BYZ(m,m) instances over `m ∈ {1, 2}` and `N` from the
//! feasibility floor `3m + 1` up to `--max-n` (default 16). Every trial
//! draws a random fault set and random battery strategies, runs **both**
//! executors on identical inputs — [`degradable::reference_eval`] (the
//! per-receiver recursive oracle) and the shared `EigEngine` arena —
//! asserts their decisions are bit-identical, and accumulates the
//! engine's deterministic [`EigPerf`] counters.
//!
//! The report is written to **`BENCH_perf_baseline.json` at the repo
//! root** (override with `--out`) so future PRs have a perf trajectory
//! to regress against. Two extra flags beyond the shared [`RunArgs`]:
//!
//! * `--max-n N` — cap the sweep (CI smoke uses `--max-n 10`);
//! * `--no-timing` — suppress wall-clock columns and the speedup
//!   metric/acceptance gate, leaving only deterministic counters so the
//!   report is bit-identical across `--workers 1/2/8`.
//!
//! The run is observed end to end (`bench.cell` spans plus the sweep and
//! engine registries; the registry snapshot lands in the report's v6
//! `obs` section). With the shared `--trace-out PATH` flag a Chrome
//! `trace_event` file is written too — wall-clock based normally,
//! logical-clock based (and fully deterministic) under `--no-timing`.
//! Summarize it with `dagree obs PATH`.
//!
//! The engine runs with a single resolve worker here: the measured
//! speedup is the memoization + arena win alone, not thread-level
//! parallelism. Acceptance (timing mode, `--max-n >= 13`): the engine
//! must be at least **1.5× faster** than the reference at `N = 13,
//! m = 2`, and memo-hit counters must be nonzero overall.
//!
//! **Experiment E19** rides along: a head-to-head of the plain arena
//! engine against the same engine with protocol-level early stopping
//! (`with_early_stop`) and the bitpacked VOTE evaluator
//! (`with_packed_vote`), at the largest swept BYZ(2,2) cell (capped at
//! N = 13). Decisions must stay bit-identical, fault-free trials must
//! report `messages_saved > 0`, and — with timing on at N = 13 — the
//! optimized engine must be at least **2× faster** on the fault-free
//! class (the case early stopping targets; with an honest sender at
//! m = 2 no internal path can contain the whole fault set, so faulty
//! trials cannot prune) with no regression on the faulty class.

use degradable::adversary::Strategy;
use degradable::{reference_eval, ByzInstance, Params, Val};
use harness::report::Table;
use harness::{Report, RunArgs, SweepRunner};
use obs::{Obs, TimeMode};
use simnet::{EigPerf, NodeId, SimRng};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::time::Instant;

/// One sweep cell: a BYZ(m,m) instance shape (u = m, sender 0).
#[derive(Debug, Clone, Copy)]
struct Cell {
    m: usize,
    n: usize,
}

/// Per-cell aggregate: counters, wall times, and the equivalence tally.
struct Row {
    m: usize,
    n: usize,
    trials: usize,
    perf: EigPerf,
    ref_nanos: u64,
    eng_nanos: u64,
    mismatches: usize,
}

impl Row {
    fn speedup(&self) -> f64 {
        if self.eng_nanos == 0 {
            return 0.0;
        }
        self.ref_nanos as f64 / self.eng_nanos as f64
    }

    fn cells(&self, timing: bool) -> Vec<String> {
        let mut out = vec![
            self.m.to_string(),
            self.n.to_string(),
            self.trials.to_string(),
            self.perf.arena_nodes.to_string(),
            self.perf.votes_evaluated.to_string(),
            self.perf.votes_memo_hit.to_string(),
            self.perf.messages_materialized.to_string(),
        ];
        if timing {
            out.push(self.ref_nanos.to_string());
            out.push(self.eng_nanos.to_string());
            out.push(format!("{:.2}", self.speedup()));
        } else {
            out.extend(["-".to_string(), "-".to_string(), "-".to_string()]);
        }
        out
    }
}

/// **E19** aggregate: the scalar arena engine vs the same engine with
/// protocol-level early stopping and the bitpacked VOTE evaluator,
/// split by fault class (early stopping is an expected-case win — it
/// prunes most aggressively when the certified fault set is small).
#[derive(Default)]
struct E19Class {
    trials: usize,
    perf: EigPerf,
    base_nanos: u64,
    opt_nanos: u64,
    mismatches: usize,
}

impl E19Class {
    fn speedup(&self) -> f64 {
        if self.opt_nanos == 0 {
            return 0.0;
        }
        self.base_nanos as f64 / self.opt_nanos as f64
    }

    fn cells(&self, class: &str, timing: bool) -> Vec<String> {
        let mut out = vec![
            class.to_string(),
            self.trials.to_string(),
            self.perf.subtrees_pruned.to_string(),
            self.perf.messages_saved.to_string(),
            self.perf.votes_evaluated.to_string(),
            self.perf.votes_memo_hit.to_string(),
        ];
        if timing {
            out.push(self.base_nanos.to_string());
            out.push(self.opt_nanos.to_string());
            out.push(format!("{:.2}", self.speedup()));
        } else {
            out.extend(["-".to_string(), "-".to_string(), "-".to_string()]);
        }
        out
    }

    fn absorb(&mut self, other: &E19Class) {
        self.trials += other.trials;
        self.perf.absorb(&other.perf);
        self.base_nanos += other.base_nanos;
        self.opt_nanos += other.opt_nanos;
        self.mismatches += other.mismatches;
    }
}

/// Runs the E19 head-to-head at BYZ(2,2), cluster size `n`: every trial
/// drives the plain arena engine and the early-stop + packed-VOTE
/// engine on identical inputs and asserts bit-identical decisions. The
/// optimized engine is rebuilt per trial (the early-stop mask is
/// per-run state) **outside** the timed region.
fn run_e19(n: usize, trials: usize, timing: bool, mut rng: SimRng, obs: &mut Obs) -> [E19Class; 2] {
    let span = obs.span("bench.e19", vec![("n", n as u64)]);
    let m = 2usize;
    let params = Params::new(m, m).expect("u = m is valid");
    let inst = ByzInstance::new(n, params, NodeId::new(0)).expect("n >= 3m + 1");
    let baseline = inst.engine();
    let packed = baseline.clone().with_packed_vote();

    // [0] = fault-free trials, [1] = trials with faults.
    let mut classes = [E19Class::default(), E19Class::default()];
    for _ in 0..trials {
        let fault_count = rng.below(2 * m as u64 + 1) as usize;
        let battery = Strategy::battery(3, 9, rng.below(u64::MAX));
        let strategies: BTreeMap<NodeId, Strategy<u64>> = rng
            .choose_indices(n - 1, fault_count)
            .into_iter()
            .map(|i| {
                let strategy = rng.pick(&battery).expect("battery non-empty").1.clone();
                (NodeId::new(i + 1), strategy)
            })
            .collect();
        let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
        let sender_value = Val::Value(7);
        let mut fabricate = |path: &degradable::Path, receiver: NodeId, truthful: &Val| {
            strategies
                .get(&path.last())
                .expect("fabricate only called for faulty relayers")
                .claim(path, receiver, truthful)
        };

        let optimized = packed.clone().with_early_stop(&faulty);
        let t0 = Instant::now();
        let base_run = inst.run_engine(&baseline, &sender_value, &faulty, &mut fabricate);
        let t1 = Instant::now();
        let opt_run = inst.run_engine(&optimized, &sender_value, &faulty, &mut fabricate);
        let t2 = Instant::now();

        let class = &mut classes[usize::from(!faulty.is_empty())];
        class.trials += 1;
        if timing {
            class.base_nanos += (t1 - t0).as_nanos() as u64;
            class.opt_nanos += (t2 - t1).as_nanos() as u64;
        }
        if opt_run.decisions != base_run.decisions {
            class.mismatches += 1;
        }
        class.perf.absorb(&opt_run.perf);
    }

    let settled: u64 = classes
        .iter()
        .map(|c| c.perf.votes_evaluated + c.perf.votes_memo_hit)
        .sum();
    obs.finish(span, settled);
    if let Some(registry) = obs.registry_mut() {
        for class in &classes {
            class.perf.fold_into(registry);
        }
    }
    classes
}

fn run_cell(cell: &Cell, trials: usize, timing: bool, mut rng: SimRng, obs: &mut Obs) -> Row {
    let span = obs.span(
        "bench.cell",
        vec![("m", cell.m as u64), ("n", cell.n as u64)],
    );
    let Cell { m, n } = *cell;
    let params = Params::new(m, m).expect("u = m is valid");
    let inst = ByzInstance::new(n, params, NodeId::new(0)).expect("n >= 3m + 1");
    // One arena per shape, shared by every trial — the whole point.
    let engine = inst.engine();

    let mut perf = EigPerf::default();
    let mut ref_nanos = 0u64;
    let mut eng_nanos = 0u64;
    let mut mismatches = 0usize;

    for _ in 0..trials {
        // Up to m + u faulty relayers among the non-sender nodes, each
        // with an independently drawn battery strategy.
        let fault_count = rng.below(2 * m as u64 + 1) as usize;
        let battery = Strategy::battery(3, 9, rng.below(u64::MAX));
        let strategies: BTreeMap<NodeId, Strategy<u64>> = rng
            .choose_indices(n - 1, fault_count)
            .into_iter()
            .map(|i| {
                let strategy = rng.pick(&battery).expect("battery non-empty").1.clone();
                (NodeId::new(i + 1), strategy)
            })
            .collect();
        let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
        let sender_value = Val::Value(7);

        let mut fabricate = |path: &degradable::Path, receiver: NodeId, truthful: &Val| {
            strategies
                .get(&path.last())
                .expect("fabricate only called for faulty relayers")
                .claim(path, receiver, truthful)
        };

        let t0 = Instant::now();
        let reference = reference_eval(
            n,
            inst.sender(),
            inst.depth(),
            inst.rule(),
            &sender_value,
            &faulty,
            &mut fabricate,
        );
        let t1 = Instant::now();
        let run = inst.run_engine(&engine, &sender_value, &faulty, &mut fabricate);
        let t2 = Instant::now();

        if timing {
            ref_nanos += (t1 - t0).as_nanos() as u64;
            eng_nanos += (t2 - t1).as_nanos() as u64;
        }
        if run.decisions != reference.decisions {
            mismatches += 1;
        }
        perf.absorb(&run.perf);
    }

    // Per-cell span cost = votes settled (worker-count independent), and
    // the cell's deterministic counters fold into the trial registry.
    obs.finish(span, perf.votes_evaluated + perf.votes_memo_hit);
    if let Some(registry) = obs.registry_mut() {
        perf.fold_into(registry);
    }

    Row {
        m,
        n,
        trials,
        perf,
        ref_nanos,
        eng_nanos,
        mismatches,
    }
}

fn main() {
    println!("E14: arena-backed EIG engine perf baseline vs reference_eval");
    let args = RunArgs::parse();
    // Binary-specific flags (RunArgs skips what it does not recognize).
    let mut max_n = 16usize;
    let mut timing = true;
    let mut raw = std::env::args().skip(1);
    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--no-timing" => timing = false,
            "--max-n" => {
                if let Some(v) = raw.next().and_then(|v| v.parse().ok()) {
                    max_n = v;
                }
            }
            _ => {
                if let Some(v) = arg.strip_prefix("--max-n=").and_then(|v| v.parse().ok()) {
                    max_n = v;
                }
            }
        }
    }

    let master_seed = args.seed_or(0xE14);
    let trials = args.trials_or(24);
    let runner = SweepRunner::new(args.workers_or(1));

    let mut cells = Vec::new();
    for m in [1usize, 2] {
        for n in (3 * m + 1)..=max_n {
            cells.push(Cell { m, n });
        }
    }
    let mut obs_rec = Obs::enabled();
    let rows = runner.map_observed(master_seed, &cells, &mut obs_rec, |_, cell, rng, obs| {
        run_cell(cell, trials, timing, rng, obs)
    });

    // E19: early-stop + packed-VOTE head-to-head at the largest swept
    // BYZ(2,2) cell, capped at the N = 13 reference point. Single cell,
    // run after the sweep on a derived stream — deterministic for any
    // `--workers` value.
    let e19_n = max_n.min(13);
    let e19 = (e19_n >= 7).then(|| {
        run_e19(
            e19_n,
            trials,
            timing,
            SimRng::derive(master_seed, 0xE19),
            &mut obs_rec,
        )
    });

    let mut total = EigPerf::default();
    let mut mismatches = 0usize;
    for row in &rows {
        total.absorb(&row.perf);
        mismatches += row.mismatches;
    }
    // Wall times stay out of the report: only deterministic counters are
    // bit-compared across worker counts.
    obs::scrub_timing(&mut total);
    let speedup_n13_m2 = rows
        .iter()
        .find(|r| r.n == 13 && r.m == 2)
        .map(Row::speedup);

    let headers = [
        "m",
        "n",
        "trials",
        "arena_nodes",
        "votes_evaluated",
        "votes_memo_hit",
        "messages",
        "ref_ns",
        "engine_ns",
        "speedup",
    ];
    let mut report = Report::new("perf_baseline");
    report
        .set_meta("master_seed", master_seed)
        .set_meta("trials_per_cell", trials)
        .set_meta("max_n", max_n)
        .set_meta("timing", timing)
        .set_metric("decision_mismatches", mismatches)
        .set_eig_perf(&total);
    if timing {
        if let Some(s) = speedup_n13_m2 {
            report.set_metric("speedup_n13_m2_x100", (s * 100.0).round() as u64);
        }
    }
    let mut e19_all = E19Class::default();
    if let Some(classes) = &e19 {
        for class in classes {
            e19_all.absorb(class);
        }
        let faultfree = &classes[0];
        report
            .set_meta("e19_n", e19_n)
            .set_metric("e19_trials", e19_all.trials)
            .set_metric("e19_decision_mismatches", e19_all.mismatches)
            .set_metric("e19_subtrees_pruned", e19_all.perf.subtrees_pruned)
            .set_metric("e19_messages_saved", e19_all.perf.messages_saved)
            .set_metric("e19_faultfree_trials", faultfree.trials)
            .set_metric(
                "e19_faultfree_messages_saved",
                faultfree.perf.messages_saved,
            );
        if timing {
            report.set_metric(
                "e19_speedup_x100",
                (e19_all.speedup() * 100.0).round() as u64,
            );
            report.set_metric(
                "e19_faultfree_speedup_x100",
                (faultfree.speedup() * 100.0).round() as u64,
            );
        }
    }
    report.set_obs_registry(obs_rec.registry());
    report.add_table(Table::with_rows(
        "reference_eval vs arena engine (per-cell totals; timing columns '-' under --no-timing)",
        &headers,
        rows.iter().map(|r| r.cells(timing)).collect(),
    ));
    if let Some(classes) = &e19 {
        report.add_table(Table::with_rows(
            "E19: arena engine vs early-stop + packed VOTE at BYZ(2,2)",
            &[
                "class",
                "trials",
                "subtrees_pruned",
                "messages_saved",
                "votes_evaluated",
                "votes_memo_hit",
                "base_ns",
                "opt_ns",
                "speedup",
            ],
            vec![
                classes[0].cells("fault-free", timing),
                classes[1].cells("faulty", timing),
                e19_all.cells("all", timing),
            ],
        ));
    }
    report.print_tables();
    if let Some(trace_path) = args.trace_out_path() {
        // Under --no-timing the exported trace is fully deterministic:
        // wall times are scrubbed, timestamps derive from logical cost,
        // and the per-worker fan-out spans (the only worker-count-
        // dependent content) are stripped, so trace files cmp equal
        // across --workers 1/2/8.
        let mode = if timing {
            TimeMode::Wall
        } else {
            obs_rec = obs_rec.without_spans(&["sweep.worker"]);
            obs::scrub_timing(&mut obs_rec);
            TimeMode::Logical
        };
        match std::fs::write(trace_path, obs::chrome_trace_json(&obs_rec, mode)) {
            Ok(()) => println!("\ntrace: {}", trace_path.display()),
            Err(e) => eprintln!("\ntrace write failed: {e}"),
        }
    }
    let default_out = Path::new("BENCH_perf_baseline.json");
    let out = args.out_path().unwrap_or(default_out);
    match report.write(Some(out)) {
        Ok(path) => println!("\nreport: {}", path.display()),
        Err(e) => eprintln!("\nreport write failed: {e}"),
    }

    let memo_ok = total.votes_memo_hit > 0;
    let speedup_ok = !timing || max_n < 13 || speedup_n13_m2.map(|s| s >= 1.5).unwrap_or(false);
    // E19 gates (when the cell ran): decisions bit-identical to the
    // scalar arena engine, fault-free runs actually saved messages, and
    // — at the N = 13 reference point with timing on — at least 2x
    // faster on the fault-free class (the expected case early stopping
    // targets: with an honest sender at m = 2 no internal path can
    // contain the whole fault set, so faulty trials cannot prune) with
    // no regression on the faulty class.
    let e19_ok = match &e19 {
        None => true,
        Some(classes) => {
            e19_all.mismatches == 0
                && classes[0].perf.messages_saved > 0
                && (!timing
                    || e19_n < 13
                    || (classes[0].speedup() >= 2.0 && classes[1].speedup() >= 1.0))
        }
    };
    if mismatches == 0 && memo_ok && speedup_ok && e19_ok {
        match speedup_n13_m2 {
            Some(s) if timing => println!(
                "\nRESULT: engine bit-identical to reference on every trial, \
                 {memo} memo hits, {s:.2}x at N=13 m=2; E19 early-stop+packed \
                 {ff:.2}x fault-free / {fy:.2}x faulty over the arena engine \
                 ({saved} messages saved, 0 mismatches)",
                memo = total.votes_memo_hit,
                ff = e19.as_ref().map(|c| c[0].speedup()).unwrap_or(0.0),
                fy = e19.as_ref().map(|c| c[1].speedup()).unwrap_or(0.0),
                saved = e19_all.perf.messages_saved
            ),
            _ => println!(
                "\nRESULT: engine bit-identical to reference on every trial, \
                 {memo} memo hits (timing suppressed)",
                memo = total.votes_memo_hit
            ),
        }
    } else {
        println!(
            "\nRESULT: FAIL (mismatches={mismatches}, memo_hits={}, \
             speedup_n13_m2={speedup_n13_m2:?}, e19_mismatches={}, \
             e19_speedup={:.2}, e19_faultfree_saved={})",
            total.votes_memo_hit,
            e19_all.mismatches,
            e19_all.speedup(),
            e19.as_ref().map(|c| c[0].perf.messages_saved).unwrap_or(0)
        );
        std::process::exit(1);
    }
}
