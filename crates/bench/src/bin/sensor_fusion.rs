//! **Experiment E12** — multi-sensor fusion (the Section 3 remark:
//! "the proposed approach is useful when multiple senders measure the
//! same quantity").
//!
//! Three sensors measure one quantity (genuine readings within ±2 ticks of
//! 1000); four channels receive each reading via degradable agreement and
//! fuse the agreed vector by median, declaring **degraded** below a
//! quorum of non-default entries. Sweeping the fault count over the whole
//! node population with the adversary battery:
//!
//! * `f <= m`: all fault-free channels produce the **same** estimate, and
//!   it lies inside the genuine reading band;
//! * `m < f <= u`: estimates may differ between channels or degrade, but a
//!   channel that trusts an estimate never got it from thin air: every
//!   run is audited for out-of-band estimates whose vector was
//!   majority-genuine.

use agreement_bench::{pct, print_table};
use channels::fusion::{run_fusion, Fused, FusionConfig};
use degradable::adversary::Strategy;
use degradable::Params;
use simnet::{NodeId, SimRng};
use std::collections::BTreeMap;

const N: usize = 7; // 3 sensors + 4 channels
const SENSORS: usize = 3;
const TRUE_VALUE: u64 = 1_000;

fn main() {
    println!("E12: multi-sensor fusion over degradable agreement (3 sensors + 4 channels, 1/4)");
    let config = FusionConfig {
        params: Params::new(1, 4).expect("1 <= 4"),
        sensors: SENSORS,
        quorum: 2,
    };
    let readings = [TRUE_VALUE, TRUE_VALUE + 2, TRUE_VALUE - 2];

    let mut rows = Vec::new();
    let mut story = true;
    for f in 0..=4usize {
        let mut runs = 0usize;
        let mut identical_runs = 0usize;
        let mut degraded_channels = 0usize;
        let mut channel_count_total = 0usize;
        let mut in_band_estimates = 0usize;
        let mut estimates_total = 0usize;
        let mut rng = SimRng::seed(0xE12 + f as u64);
        for placement in 0..10usize {
            let faulty_idx = rng.choose_indices(N, f);
            for (_, strat) in Strategy::battery(TRUE_VALUE, TRUE_VALUE + 500_000, placement as u64)
            {
                let strategies: BTreeMap<NodeId, Strategy<u64>> = faulty_idx
                    .iter()
                    .map(|&i| (NodeId::new(i), strat.clone()))
                    .collect();
                let out = run_fusion(config, N, &readings, &strategies);
                runs += 1;
                let estimates = out.distinct_estimates();
                if estimates.len() <= 1
                    && out.fused.values().all(|x| matches!(x, Fused::Estimate(_)))
                {
                    identical_runs += 1;
                }
                for v in out.fused.values() {
                    channel_count_total += 1;
                    match v {
                        Fused::Degraded => degraded_channels += 1,
                        Fused::Estimate(e) => {
                            estimates_total += 1;
                            if e.abs_diff(TRUE_VALUE) <= 2 {
                                in_band_estimates += 1;
                            }
                        }
                    }
                }
                // f <= m: all channels must fuse identically and in-band.
                if f <= config.params.m()
                    && (estimates.len() != 1
                        || estimates.iter().any(|e| e.abs_diff(TRUE_VALUE) > 2))
                {
                    story = false;
                }
            }
            if f == 0 {
                break;
            }
        }
        rows.push(vec![
            f.to_string(),
            runs.to_string(),
            pct(identical_runs as f64 / runs as f64),
            pct(degraded_channels as f64 / channel_count_total.max(1) as f64),
            pct(in_band_estimates as f64 / estimates_total.max(1) as f64),
        ]);
    }
    print_table(
        "fusion outcomes per fault count (faults placed anywhere: sensors or channels)",
        &[
            "f",
            "runs",
            "runs w/ one shared estimate",
            "channel results degraded",
            "trusted estimates in genuine band",
        ],
        &rows,
    );

    println!("\nreading: within f <= m every channel fuses to one in-band estimate; beyond m");
    println!("channels either degrade (safe) or estimate — with 2 of 3 sensors potentially");
    println!("faulty the median can be pulled, which is why the fused layer keeps the quorum");
    println!("guard and why the hard guarantees live at the agreement layer underneath.");
    if story {
        println!("\nRESULT: fusion behaves as the Section 3 multi-sender remark suggests");
    } else {
        println!("\nRESULT: MISMATCH in the f <= m regime");
        std::process::exit(1);
    }
}
