//! **Experiment E17** — the transport differential gate as a standing
//! experiment: one sans-io node state machine, three networks, zero
//! divergence.
//!
//! Two campaigns, one report (`results/transport_diff.json`, schema v4):
//!
//! 1. **Backend sweep** — every shape N ∈ {4..9} at maximal-ish `(m, u)`
//!    under healthy links and four link-fault plans (cut, drop,
//!    duplicate-all, reorder). Each cell runs the identical
//!    [`degradable::NodeStateMachine`] protocol over the event-driven
//!    simulator, the in-process channel mesh, and a real loopback-TCP
//!    mesh, with the message-keyed [`transport::LinkChaos`] layer
//!    injecting the *same* fault pattern everywhere. The gate:
//!    decisions, per-node EIG views, and the chaos signature must be
//!    bit-identical across backends; deterministic plans must also match
//!    the pre-refactor synchronous `run_protocol_with` oracle; and every
//!    decision must re-derive through the reference `EigView::resolve`
//!    fold from the run's own views.
//! 2. **Relaxed-detection sweep (§6)** — `f > m` runs with probabilistic
//!    arrival skew ([`transport::RelaxedTiming`]): fault-free nodes
//!    falsely time each other out, and the paper's claim is that the
//!    degraded conditions D.1–D.4 survive every such run.
//!
//! Flags beyond the shared [`RunArgs`]:
//!
//! * `--max-n N` — cap the backend sweep's node count (CI smoke trims);
//! * `--no-timing` — logical-clock trace under `--trace-out`, wall times
//!   scrubbed from the obs registry.
//!
//! The report contains no worker-count field and only deterministic
//! counters (decisions, keyed-chaos signatures, simulator false-timeout
//! counts) — it is bit-identical for any `--workers` value. Mesh-level
//! wall-clock observables (TCP retries, thread interleavings) never
//! enter it.

use degradable::adversary::Strategy;
use degradable::{
    check_degradable, run_protocol_with, ByzInstance, Params, RunRecord, Val, VoteRule,
};
use harness::report::Table;
use harness::{Report, RunArgs, SweepRunner};
use obs::{Obs, TimeMode};
use simnet::{LinkFaultKind, LinkFaultPlan, NodeId};
use std::collections::BTreeMap;
use transport::{
    run_channel, run_sim, run_tcp, LinkChaos, MeshConfig, RelaxedTiming, TransportRun,
};

/// `(n, m, u)` per node count: each is a valid BYZ shape
/// (`n >= 2m + u + 1`), matching the paper's small-system analysis.
const SHAPES: [(usize, usize, usize); 6] = [
    (4, 1, 1),
    (5, 1, 2),
    (6, 1, 3),
    (7, 2, 2),
    (8, 2, 3),
    (9, 2, 4),
];

/// The link-fault plans swept per shape. Deterministic plans (healthy,
/// cut, `p = 1.0` duplication) key the chaos layer identically to the
/// pre-refactor engine's stream layer, so those cells also compare
/// against the synchronous oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanKind {
    Healthy,
    Cut,
    DupAll,
    Drop,
    Reorder,
}

impl PlanKind {
    const ALL: [PlanKind; 5] = [
        PlanKind::Healthy,
        PlanKind::Cut,
        PlanKind::DupAll,
        PlanKind::Drop,
        PlanKind::Reorder,
    ];

    fn label(self) -> &'static str {
        match self {
            PlanKind::Healthy => "healthy",
            PlanKind::Cut => "cut",
            PlanKind::DupAll => "dup-all",
            PlanKind::Drop => "drop",
            PlanKind::Reorder => "reorder",
        }
    }

    fn deterministic(self) -> bool {
        matches!(self, PlanKind::Healthy | PlanKind::Cut | PlanKind::DupAll)
    }

    fn plan(self, n: usize) -> LinkFaultPlan {
        match self {
            PlanKind::Healthy => LinkFaultPlan::healthy(),
            // The edge 1 <-> 2 dies from round 1 on: relays between two
            // fault-free nodes go absent.
            PlanKind::Cut => LinkFaultPlan::healthy().with_symmetric(
                NodeId::new(1),
                NodeId::new(2),
                LinkFaultKind::Cut { from_round: 1 },
            ),
            PlanKind::DupAll => {
                LinkFaultPlan::uniform_complete(n, &[LinkFaultKind::Duplicate { p: 1.0 }])
            }
            PlanKind::Drop => {
                LinkFaultPlan::uniform_complete(n, &[LinkFaultKind::Drop { p: 0.35 }])
            }
            PlanKind::Reorder => {
                LinkFaultPlan::uniform_complete(n, &[LinkFaultKind::Reorder { window: 2 }])
            }
        }
    }
}

/// One backend-sweep cell: a shape and a plan.
#[derive(Debug, Clone, Copy)]
struct DiffCell {
    n: usize,
    m: usize,
    u: usize,
    plan: PlanKind,
}

struct DiffRow {
    cells: Vec<String>,
    backend_mismatches: usize,
    oracle_mismatches: usize,
    rederive_mismatches: usize,
}

/// `f = m` Byzantine receivers at the top node ids: one liar, then one
/// silent node for `m >= 2`.
fn strategies_for(n: usize, m: usize) -> BTreeMap<NodeId, Strategy<u64>> {
    let mut s = BTreeMap::new();
    s.insert(NodeId::new(n - 1), Strategy::ConstantLie(Val::Value(9)));
    if m >= 2 {
        s.insert(NodeId::new(n - 2), Strategy::Silent);
    }
    s
}

/// Counts decisions that fail to re-derive from the run's own views
/// through the paper's VOTE fold.
fn rederive_failures(run: &TransportRun, inst: &ByzInstance) -> usize {
    let rule = VoteRule::Degradable {
        m: inst.params().m(),
    };
    run.decisions
        .iter()
        .filter(|(node, decision)| run.views[node].resolve(inst.sender(), rule) != **decision)
        .count()
}

fn diff_cell(cell: &DiffCell, mut rng: simnet::SimRng, obs: &mut Obs) -> DiffRow {
    let span = obs.span(
        "transport.diff_cell",
        vec![("n", cell.n as u64), ("plan", cell.plan as u64)],
    );
    let DiffCell { n, m, u, plan } = *cell;
    let inst = ByzInstance::new(n, Params::new(m, u).expect("u >= m"), NodeId::new(0))
        .expect("n within bounds");
    let strategies = strategies_for(n, m);
    let seed = rng.below(u64::MAX);
    let chaos = LinkChaos::new(plan.plan(n), seed);

    let sim = run_sim(&inst, Val::Value(42), &strategies, chaos.clone(), None);
    let chan = run_channel(
        &inst,
        Val::Value(42),
        &strategies,
        chaos.clone(),
        MeshConfig::default(),
    );
    let tcp = run_tcp(
        &inst,
        Val::Value(42),
        &strategies,
        chaos,
        MeshConfig::default(),
    )
    .expect("loopback mesh");

    let mut backend_mismatches = 0usize;
    for other in [&chan, &tcp] {
        if other.decisions != sim.decisions
            || other.views != sim.views
            || other.stats.chaos_signature() != sim.stats.chaos_signature()
        {
            backend_mismatches += 1;
        }
    }

    // Deterministic plans reproduce the engine's stream-keyed fault
    // pattern exactly, so the synchronous oracle must agree too.
    let mut oracle_mismatches = 0usize;
    let oracle_checked = plan.deterministic();
    if oracle_checked {
        let oracle = run_protocol_with(&inst, &Val::Value(42), &strategies, seed, |e| {
            e.with_link_faults(plan.plan(n))
        });
        if oracle.decisions != sim.decisions {
            oracle_mismatches += 1;
        }
    }
    let rederive_mismatches = rederive_failures(&sim, &inst);

    let (sent, dropped_cut, dropped_loss, _, duplicated, delayed) = sim.stats.chaos_signature();
    obs.finish(span, sent);
    obs.add("transport.diff_sent", sent);
    obs.add(
        "transport.diff_mismatches",
        (backend_mismatches + oracle_mismatches + rederive_mismatches) as u64,
    );

    DiffRow {
        cells: vec![
            n.to_string(),
            format!("{m}/{u}"),
            plan.label().to_string(),
            sent.to_string(),
            dropped_cut.to_string(),
            dropped_loss.to_string(),
            duplicated.to_string(),
            delayed.to_string(),
            if backend_mismatches == 0 { "yes" } else { "NO" }.to_string(),
            if !oracle_checked {
                "n/a"
            } else if oracle_mismatches == 0 {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
            rederive_mismatches.to_string(),
        ],
        backend_mismatches,
        oracle_mismatches,
        rederive_mismatches,
    }
}

/// One relaxed-detection trial seed (§6, `f > m`).
#[derive(Debug, Clone, Copy)]
struct RelaxedCell {
    seed_index: usize,
}

struct RelaxedRow {
    false_timeouts: u64,
    violations: usize,
}

fn relaxed_cell(cell: &RelaxedCell, mut rng: simnet::SimRng, obs: &mut Obs) -> RelaxedRow {
    let span = obs.span(
        "transport.relaxed_cell",
        vec![("trial", cell.seed_index as u64)],
    );
    // BYZ(1,2) at n = 5 with f = 2 > m: the regime where §6 permits
    // fault-free pairs to falsely time each other out.
    let inst = ByzInstance::new(5, Params::new(1, 2).expect("u >= m"), NodeId::new(0))
        .expect("n within bounds");
    let strategies: BTreeMap<NodeId, Strategy<u64>> = [
        (NodeId::new(3), Strategy::ConstantLie(Val::Value(9))),
        (NodeId::new(4), Strategy::Silent),
    ]
    .into_iter()
    .collect();
    let relaxed = RelaxedTiming::when_degraded(strategies.len(), 1, 0.6, 2, rng.below(u64::MAX))
        .expect("f = 2 > m = 1");
    let run = run_sim(
        &inst,
        Val::Value(42),
        &strategies,
        LinkChaos::healthy(),
        Some(relaxed),
    );
    let record = RunRecord {
        params: inst.params(),
        n: inst.n(),
        sender: inst.sender(),
        sender_value: Val::Value(42),
        faulty: strategies.keys().copied().collect(),
        decisions: run.decisions.clone(),
    };
    let violations = usize::from(!check_degradable(&record).is_satisfied());
    obs.finish(span, run.stats.false_timeouts);
    obs.add("transport.relaxed_false_timeouts", run.stats.false_timeouts);
    RelaxedRow {
        false_timeouts: run.stats.false_timeouts,
        violations,
    }
}

fn main() {
    println!("E17: transport differential gate (sim / channel / loopback TCP)");
    let args = RunArgs::parse();
    let master_seed = args.seed_or(0x7D1FF);
    let trials = args.trials_or(8);
    let runner = SweepRunner::new(args.workers_or(4));

    // Binary-specific flags (RunArgs skips what it does not recognize).
    let mut max_n = 9usize;
    let mut timing = true;
    let mut raw = std::env::args().skip(1);
    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--no-timing" => timing = false,
            "--max-n" => {
                if let Some(v) = raw.next().and_then(|v| v.parse().ok()) {
                    max_n = v;
                }
            }
            _ => {
                if let Some(v) = arg.strip_prefix("--max-n=").and_then(|v| v.parse().ok()) {
                    max_n = v;
                }
            }
        }
    }

    // Campaign 1: backend sweep over every shape and plan.
    let diff_cells: Vec<DiffCell> = SHAPES
        .iter()
        .filter(|(n, _, _)| *n <= max_n)
        .flat_map(|&(n, m, u)| PlanKind::ALL.map(|plan| DiffCell { n, m, u, plan }))
        .collect();
    let mut obs_rec = Obs::enabled();
    let diff_rows = runner.map_observed(
        master_seed,
        &diff_cells,
        &mut obs_rec,
        |_, cell, rng, obs| diff_cell(cell, rng, obs),
    );

    // Campaign 2: §6 relaxed detection beyond m faults.
    let relaxed_cells: Vec<RelaxedCell> = (0..trials)
        .map(|seed_index| RelaxedCell { seed_index })
        .collect();
    let relaxed_rows = runner.map_observed(
        master_seed ^ 0x5EC6,
        &relaxed_cells,
        &mut obs_rec,
        |_, cell, rng, obs| relaxed_cell(cell, rng, obs),
    );

    let backend_mismatches: usize = diff_rows.iter().map(|r| r.backend_mismatches).sum();
    let oracle_mismatches: usize = diff_rows.iter().map(|r| r.oracle_mismatches).sum();
    let rederive_mismatches: usize = diff_rows.iter().map(|r| r.rederive_mismatches).sum();
    let decision_mismatches = backend_mismatches + oracle_mismatches + rederive_mismatches;
    let relaxed_violations: usize = relaxed_rows.iter().map(|r| r.violations).sum();
    let relaxed_false_timeouts: u64 = relaxed_rows.iter().map(|r| r.false_timeouts).sum();

    let diff_headers = [
        "n",
        "m/u",
        "plan",
        "sent",
        "cut",
        "loss",
        "dup",
        "delay",
        "backends_agree",
        "oracle_match",
        "rederive_fails",
    ];
    let mut report = Report::new("transport_diff");
    report
        .set_meta("master_seed", master_seed)
        .set_meta("relaxed_trials", trials)
        .set_meta("max_n", max_n)
        .set_metric("cells", diff_rows.len())
        .set_metric("backend_mismatches", backend_mismatches)
        .set_metric("oracle_mismatches", oracle_mismatches)
        .set_metric("rederive_mismatches", rederive_mismatches)
        .set_metric("decision_mismatches", decision_mismatches)
        .set_metric("relaxed_violations", relaxed_violations)
        .set_metric("relaxed_false_timeouts", relaxed_false_timeouts)
        .add_table(Table::with_rows(
            "backend sweep: sim vs channel vs loopback TCP (keyed chaos, shared seed)",
            &diff_headers,
            diff_rows.iter().map(|r| r.cells.clone()).collect(),
        ));
    if !timing {
        obs::scrub_timing(&mut obs_rec);
    }
    report.set_obs_registry(obs_rec.registry());
    report.print_tables();
    if let Some(trace_path) = args.trace_out_path() {
        let mode = if timing {
            TimeMode::Wall
        } else {
            TimeMode::Logical
        };
        match std::fs::write(trace_path, obs::chrome_trace_json(&obs_rec, mode)) {
            Ok(()) => println!("\ntrace: {}", trace_path.display()),
            Err(e) => eprintln!("\ntrace write failed: {e}"),
        }
    }
    match report.write(args.out_path()) {
        Ok(path) => println!("\nreport: {}", path.display()),
        Err(e) => eprintln!("\nreport write failed: {e}"),
    }

    let relaxed_active = relaxed_false_timeouts > 0;
    if decision_mismatches == 0 && relaxed_violations == 0 && relaxed_active {
        println!(
            "\nRESULT: all {} cells bit-identical across backends; §6 degraded \
             agreement held through {relaxed_false_timeouts} false timeouts",
            diff_rows.len()
        );
    } else {
        println!(
            "\nRESULT: MISMATCH (backend={backend_mismatches}, oracle={oracle_mismatches}, \
             rederive={rederive_mismatches}, relaxed_violations={relaxed_violations}, \
             relaxed_false_timeouts={relaxed_false_timeouts})"
        );
        std::process::exit(1);
    }
}
