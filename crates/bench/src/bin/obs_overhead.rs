//! **Experiment E20** — recorder overhead and SLO gates for the
//! observability layer.
//!
//! The causal-tracing + histogram instrumentation added to
//! `degradable::service` is only acceptable if it is effectively free
//! when armed and exactly free when disabled. This bin drives the E19
//! fault-free reference cell — BYZ(2,2) batches with early stopping
//! armed — through [`degradable::run_batch_observed_early_stop`] twice
//! per repetition on identical inputs: once with a disabled recorder,
//! once with an enabled one. Repetitions interleave the two modes so
//! machine drift hits both sides equally.
//!
//! Gates:
//!
//! * decisions from traced and untraced runs are bit-identical on every
//!   repetition (observation must never perturb the protocol);
//! * the declarative [`SloSpec`] over the merged traced registry passes:
//!   per-instance latency quantile bounds, the full-regime instance
//!   count, a minimum early-stop pruning ratio, and zero decision
//!   mismatches — emitted as the schema-v6 `slo` report section;
//! * with timing on, the median traced wall time is at most **1.10×**
//!   the median untraced wall time (`overhead_ratio_x100 <= 110`).
//!
//! The report is written to **`BENCH_obs_overhead.json` at the repo
//! root** (override with `--out`). Under `--no-timing` the wall gate is
//! skipped and the registry is scrubbed of wall-named series, so the
//! report is bit-identical across `--workers 1/2/8` and across reruns.

use degradable::{run_batch_observed_early_stop, BatchInstance, Params, Val};
use harness::report::Table;
use harness::{Report, RunArgs, SloSpec, SweepRunner};
use obs::{Obs, TimeMode};
use simnet::NodeId;
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

/// One interleaved repetition: wall nanos per mode plus the equivalence
/// verdict between the two runs' decision vectors.
struct Rep {
    untraced_nanos: u64,
    traced_nanos: u64,
    mismatch: bool,
}

fn median(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

fn main() {
    println!("E20: observability recorder overhead + SLO gates (fault-free BYZ(2,2))");
    let args = RunArgs::parse();
    let mut timing = true;
    let mut reps = 15usize;
    let mut n = 13usize;
    let mut raw = std::env::args().skip(1);
    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--no-timing" => timing = false,
            "--reps" => {
                if let Some(v) = raw.next().and_then(|v| v.parse().ok()) {
                    reps = v;
                }
            }
            "--n" => {
                if let Some(v) = raw.next().and_then(|v| v.parse().ok()) {
                    n = v;
                }
            }
            _ => {}
        }
    }
    let master_seed = args.seed_or(0xE20);
    let k = args.trials_or(16);
    let workers = args.workers_or(1);
    // The worker count parallelizes per-instance resolution inside the
    // service (SweepRunner is not used: both modes of a repetition must
    // run back to back on one thread for the wall comparison to mean
    // anything). It must not change any deterministic output.
    let _ = SweepRunner::new(workers);

    let params = Params::new(2, 2).expect("BYZ(2,2) is valid");
    assert!(params.admits(n), "--n must satisfy n >= 2m + u + 1 = 7");
    let instances: Vec<BatchInstance<u64>> = (0..k)
        .map(|slot| BatchInstance {
            sender: NodeId::new(0),
            value: Val::Value(7 + slot as u64),
        })
        .collect();
    let no_faults: BTreeMap<NodeId, degradable::Strategy<u64>> = BTreeMap::new();

    let mut obs_rec = Obs::enabled();
    let mut rows: Vec<Rep> = Vec::with_capacity(reps);
    for rep in 0..reps {
        let seed = master_seed
            .wrapping_add(rep as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);

        let t0 = Instant::now();
        let (plain, ..) = run_batch_observed_early_stop(
            params,
            n,
            &instances,
            &no_faults,
            seed,
            workers,
            |e| e,
            &mut Obs::disabled(),
        );
        let t1 = Instant::now();
        let (traced, ..) = run_batch_observed_early_stop(
            params,
            n,
            &instances,
            &no_faults,
            seed,
            workers,
            |e| e,
            &mut obs_rec,
        );
        let t2 = Instant::now();

        rows.push(Rep {
            untraced_nanos: if timing {
                (t1 - t0).as_nanos() as u64
            } else {
                0
            },
            traced_nanos: if timing {
                (t2 - t1).as_nanos() as u64
            } else {
                0
            },
            mismatch: traced.decisions != plain.decisions,
        });
    }

    let mismatches = rows.iter().filter(|r| r.mismatch).count();
    obs_rec.add("e20.decision_mismatches", mismatches as u64);

    let untraced_median = median(rows.iter().map(|r| r.untraced_nanos).collect());
    let traced_median = median(rows.iter().map(|r| r.traced_nanos).collect());
    // Zero medians only under --no-timing, where the ratio is unused.
    let ratio_x100 = (traced_median * 100)
        .checked_div(untraced_median)
        .unwrap_or(0);

    if !timing {
        // Wall-named registry series (svc.instance.wall_ns) and span wall
        // times are the only nondeterministic content; scrubbing them
        // makes the report bit-identical across workers and reruns.
        obs::scrub_timing(&mut obs_rec);
    }

    // The SLO contract this cell promises — evaluated over the merged
    // traced registry (reps × k fault-free instances, early stop armed).
    // Quantile and ratio bounds are calibrated against the deterministic
    // engine counters at N = 13, k = 16, with headroom for other shapes.
    let spec = SloSpec::new("e20-faultfree-byz22")
        .p50_at_most("svc.instance.messages", 64)
        .p99_at_most("svc.instance.messages", 128)
        .p99_at_most("svc.instance.logical", 256)
        .counter_at_least("svc.regime.full.instances", (reps * k) as u64)
        .counter_at_most("svc.regime.degraded.instances", 0)
        .ratio_at_least("svc.early_stop.messages_saved", "svc.batch.sent", 50)
        .zero("e20.decision_mismatches")
        .zero("batch.spoofs_rejected");
    let slo = spec.evaluate(obs_rec.registry());
    let slo_passed = slo.passed();
    let slo_failures: Vec<String> = slo.failures().iter().map(|s| s.to_string()).collect();

    let mut report = Report::new("obs_overhead");
    report
        .set_meta("master_seed", master_seed)
        .set_meta("n", n)
        .set_meta("instances_per_batch", k)
        .set_meta("reps", reps)
        .set_meta("timing", timing)
        .set_metric("decision_mismatches", mismatches);
    if timing {
        report
            .set_metric("untraced_median_ns", untraced_median)
            .set_metric("traced_median_ns", traced_median)
            .set_metric("overhead_ratio_x100", ratio_x100);
    }
    report.set_obs_registry(obs_rec.registry());
    report.set_slo(slo);
    let rep_cells = |r: &Rep, i: usize| {
        vec![
            i.to_string(),
            if timing {
                r.untraced_nanos.to_string()
            } else {
                "-".into()
            },
            if timing {
                r.traced_nanos.to_string()
            } else {
                "-".into()
            },
            if r.mismatch {
                "MISMATCH".into()
            } else {
                "ok".into()
            },
        ]
    };
    report.add_table(Table::with_rows(
        "traced vs untraced service runs (identical inputs per rep)",
        &["rep", "untraced_ns", "traced_ns", "decisions"],
        rows.iter()
            .enumerate()
            .map(|(i, r)| rep_cells(r, i))
            .collect(),
    ));
    report.print_tables();

    if let Some(trace_path) = args.trace_out_path() {
        let mode = if timing {
            TimeMode::Wall
        } else {
            TimeMode::Logical
        };
        match std::fs::write(trace_path, obs::chrome_trace_json(&obs_rec, mode)) {
            Ok(()) => println!("\ntrace: {}", trace_path.display()),
            Err(e) => eprintln!("\ntrace write failed: {e}"),
        }
    }
    let default_out = Path::new("BENCH_obs_overhead.json");
    let out = args.out_path().unwrap_or(default_out);
    match report.write(Some(out)) {
        Ok(path) => println!("\nreport: {}", path.display()),
        Err(e) => eprintln!("\nreport write failed: {e}"),
    }

    let overhead_ok = !timing || ratio_x100 <= 110;
    if mismatches == 0 && slo_passed && overhead_ok {
        if timing {
            println!(
                "\nRESULT: recorder overhead {}.{:02}x (traced {traced_median} ns vs \
                 untraced {untraced_median} ns median), all SLOs met, 0 mismatches",
                ratio_x100 / 100,
                ratio_x100 % 100,
            );
        } else {
            println!("\nRESULT: all SLOs met, 0 mismatches (timing suppressed)");
        }
    } else {
        println!(
            "\nRESULT: FAIL (mismatches={mismatches}, overhead_ratio_x100={ratio_x100}, \
             slo_failures={slo_failures:?})"
        );
        std::process::exit(1);
    }
}
