//! **Experiment P1 (analysis half)** — message and storage complexity of
//! algorithm BYZ versus the baselines, analytically and as measured on the
//! message-passing executor (the counts must coincide exactly).
//!
//! The paper presents BYZ "with no attempt … to present an efficient
//! algorithm"; this table documents what the recursion costs and how the
//! degradable trade-off changes it: for fixed `N`, choosing a smaller `m`
//! (and larger `u`) shrinks the recursion depth and the message count
//! exponentially — the price of full agreement is paid in messages.

use agreement_bench::{print_csv, print_table};
use degradable::analysis::{message_complexity, storage_complexity, tradeoffs};
use degradable::{run_protocol, ByzInstance, Val};
use simnet::NodeId;
use std::collections::BTreeMap;

fn main() {
    println!("P1: message/storage complexity of BYZ(m,m) and the N-node trade-off");

    // Per-(N, m) costs, validated against the protocol executor.
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut all_match = true;
    for n in [4usize, 5, 7, 9, 11, 13] {
        for params in tradeoffs(n) {
            let inst = ByzInstance::new(n, params, NodeId::new(0)).expect("maximal u fits");
            let depth = inst.depth();
            let analytic = message_complexity(n, depth);
            let measured = run_protocol(&inst, &Val::Value(1), &BTreeMap::new(), 1)
                .net
                .sent as u128;
            let matches = analytic == measured;
            all_match &= matches;
            rows.push(vec![
                n.to_string(),
                params.to_string(),
                depth.to_string(),
                analytic.to_string(),
                measured.to_string(),
                storage_complexity(n, depth).to_string(),
                if matches { "=" } else { "MISMATCH" }.to_string(),
            ]);
            csv.push(vec![
                n.to_string(),
                params.m().to_string(),
                params.u().to_string(),
                analytic.to_string(),
            ]);
        }
    }
    print_table(
        "BYZ cost per (N, m/u): rounds, messages (analytic vs measured), stored paths",
        &["N", "params", "rounds", "messages (analytic)", "messages (measured)", "paths", "check"],
        &rows,
    );
    print_csv("complexity", &["n", "m", "u", "messages"], &csv);

    // Protocol family comparison at fixed tolerance.
    use degradable::analysis::{crusader_message_complexity, sm_honest_message_complexity};
    let mut rows = Vec::new();
    for m in 1..=3usize {
        let n_om = 3 * m + 1;
        let n_sm = m + 2;
        rows.push(vec![
            m.to_string(),
            format!("OM({m}) @ N={n_om}: {}", message_complexity(n_om, m + 1)),
            format!("Crusader @ N={n_om}: {}", crusader_message_complexity(n_om)),
            format!("SM({m}) @ N={n_sm}: {} (honest)", sm_honest_message_complexity(n_sm)),
            format!(
                "BYZ({m},{m}) @ N={}: {}",
                3 * m + 1,
                message_complexity(3 * m + 1, m + 1)
            ),
        ]);
    }
    print_table(
        "protocol family cost at tolerance m (minimum nodes each)",
        &["m", "oral (OM)", "crusader", "signed (SM)", "degradable m/m"],
        &rows,
    );

    println!("\nreading: at fixed N, trading m down (u up) cuts rounds and messages —");
    println!("e.g. at N = 13: 4/4 vs 1/10 vs 0/12 differ by orders of magnitude.");
    if all_match {
        println!("\nRESULT: protocol executor matches the closed-form counts exactly");
    } else {
        println!("\nRESULT: MISMATCH");
        std::process::exit(1);
    }
}
