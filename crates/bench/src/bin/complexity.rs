//! **Experiment P1 (analysis half)** — message and storage complexity of
//! algorithm BYZ versus the baselines, analytically and as measured on the
//! message-passing executor (the counts must coincide exactly).
//!
//! The paper presents BYZ "with no attempt … to present an efficient
//! algorithm"; this table documents what the recursion costs and how the
//! degradable trade-off changes it: for fixed `N`, choosing a smaller `m`
//! (and larger `u`) shrinks the recursion depth and the message count
//! exponentially — the price of full agreement is paid in messages.
//!
//! The per-`(N, m/u)` measurements fan out over [`harness::SweepRunner`]
//! workers (the larger grid points dominate); the tables are written as a
//! JSON report under `results/`.

use agreement_bench::print_csv;
use degradable::analysis::{message_complexity, storage_complexity, tradeoffs};
use degradable::{run_protocol, ByzInstance, Val};
use harness::report::Table;
use harness::{Report, RunArgs, SweepRunner};
use simnet::NodeId;
use std::collections::BTreeMap;

fn main() {
    println!("P1: message/storage complexity of BYZ(m,m) and the N-node trade-off");
    let args = RunArgs::parse();

    // Per-(N, m) costs, validated against the protocol executor. Each grid
    // point is an independent protocol run, fanned out over workers.
    let grid: Vec<(usize, degradable::Params)> = [4usize, 5, 7, 9, 11, 13]
        .into_iter()
        .flat_map(|n| tradeoffs(n).into_iter().map(move |p| (n, p)))
        .collect();
    let runner = SweepRunner::new(args.workers_or(4));
    let points = runner.map(args.seed_or(1), &grid, |_, &(n, params), _rng| {
        let inst = ByzInstance::new(n, params, NodeId::new(0)).expect("maximal u fits");
        let depth = inst.depth();
        let analytic = message_complexity(n, depth);
        let measured = run_protocol(&inst, &Val::Value(1), &BTreeMap::new(), 1)
            .net
            .sent as u128;
        (n, params, depth, analytic, measured)
    });
    let all_match = points
        .iter()
        .all(|&(_, _, _, analytic, measured)| analytic == measured);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &(n, params, depth, analytic, measured) in &points {
        rows.push(vec![
            n.to_string(),
            params.to_string(),
            depth.to_string(),
            analytic.to_string(),
            measured.to_string(),
            storage_complexity(n, depth).to_string(),
            if analytic == measured {
                "="
            } else {
                "MISMATCH"
            }
            .to_string(),
        ]);
        csv.push(vec![
            n.to_string(),
            params.m().to_string(),
            params.u().to_string(),
            analytic.to_string(),
        ]);
    }

    // Protocol family comparison at fixed tolerance.
    use degradable::analysis::{crusader_message_complexity, sm_honest_message_complexity};
    let mut family_rows = Vec::new();
    for m in 1..=3usize {
        let n_om = 3 * m + 1;
        let n_sm = m + 2;
        family_rows.push(vec![
            m.to_string(),
            format!("OM({m}) @ N={n_om}: {}", message_complexity(n_om, m + 1)),
            format!("Crusader @ N={n_om}: {}", crusader_message_complexity(n_om)),
            format!(
                "SM({m}) @ N={n_sm}: {} (honest)",
                sm_honest_message_complexity(n_sm)
            ),
            format!(
                "BYZ({m},{m}) @ N={}: {}",
                3 * m + 1,
                message_complexity(3 * m + 1, m + 1)
            ),
        ]);
    }

    let mut report = Report::new("complexity");
    report
        .set_meta("workers", runner.workers())
        .set_metric("analytic_matches_measured", all_match)
        .add_table(Table::with_rows(
            "BYZ cost per (N, m/u): rounds, messages (analytic vs measured), stored paths",
            &[
                "N",
                "params",
                "rounds",
                "messages (analytic)",
                "messages (measured)",
                "paths",
                "check",
            ],
            rows,
        ))
        .add_table(Table::with_rows(
            "protocol family cost at tolerance m (minimum nodes each)",
            &[
                "m",
                "oral (OM)",
                "crusader",
                "signed (SM)",
                "degradable m/m",
            ],
            family_rows,
        ));
    report.print_tables();
    print_csv("complexity", &["n", "m", "u", "messages"], &csv);
    match report.write(args.out_path()) {
        Ok(path) => println!("\nreport: {}", path.display()),
        Err(e) => eprintln!("\nreport write failed: {e}"),
    }

    println!("\nreading: at fixed N, trading m down (u up) cuts rounds and messages —");
    println!("e.g. at N = 13: 4/4 vs 1/10 vs 0/12 differ by orders of magnitude.");
    if all_match {
        println!("\nRESULT: protocol executor matches the closed-form counts exactly");
    } else {
        println!("\nRESULT: MISMATCH");
        std::process::exit(1);
    }
}
