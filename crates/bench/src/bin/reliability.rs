//! **Experiment E8** — the Section 3 motivation quantified: Monte Carlo
//! reliability of the Figure 1 architectures as the per-channel fault
//! probability grows.
//!
//! The series to compare (the "figure" this regenerates): the probability
//! of an **incorrect** external output. The Byzantine 3-channel system's
//! unsafe probability grows with the fault rate; the degradable 4-channel
//! system converts those cases into safe defaults whenever `f <= u`
//! (its residual unsafe probability comes only from trials with `f > u`).
//!
//! Every sweep point runs through [`harness::SweepRunner`] (inside
//! [`run_monte_carlo`]); `--trials N` shrinks the sweep for CI smoke runs
//! and the JSON report lands under `results/`.

use agreement_bench::{pct, print_csv};
use channels::prelude::*;
use degradable::Params;
use harness::report::Table;
use harness::{Report, RunArgs};

fn main() {
    println!("E8: Monte Carlo reliability sweep (Section 3 motivation)");
    let args = RunArgs::parse();
    let archs = [
        Architecture::Naive { channels: 3 },
        Architecture::Byzantine { m: 1 },
        Architecture::Degradable {
            params: Params::new(1, 2).expect("1 <= 2"),
        },
    ];
    let ps = [0.02f64, 0.05, 0.1, 0.2, 0.3];
    let trials = args.trials_or(4_000);
    let seed = args.seed_or(0xE8);
    let workers = args.workers_or(8);

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut deg_safe_within_design = true;
    for arch in archs {
        for &p in &ps {
            let result = run_monte_carlo(
                arch,
                MonteCarloConfig {
                    channel_fault_p: p,
                    trials,
                    seed,
                    workers,
                },
            );
            let o = result.overall;
            if matches!(arch, Architecture::Degradable { .. }) && result.within_design.incorrect > 0
            {
                deg_safe_within_design = false;
            }
            rows.push(vec![
                arch.label(),
                format!("{p:.2}"),
                pct(o.p_correct()),
                pct(o.p_default()),
                pct(o.p_incorrect()),
                pct(result.within_design.p_incorrect()),
                result.beyond_design.total().to_string(),
            ]);
            csv.push(vec![
                arch.label(),
                format!("{p}"),
                format!("{}", o.p_correct()),
                format!("{}", o.p_default()),
                format!("{}", o.p_incorrect()),
            ]);
        }
    }

    let mut report = Report::new("reliability");
    report
        .set_meta("trials_per_point", trials)
        .set_meta("seed", seed)
        .set_meta("workers", workers)
        .set_metric("deg_safe_within_design", deg_safe_within_design)
        .add_table(Table::with_rows(
            format!(
                "external outcome probabilities ({trials} trials per point, fault-free sender)"
            ),
            &[
                "architecture",
                "p(channel fault)",
                "P(correct)",
                "P(default)",
                "P(incorrect)",
                "P(incorrect | f<=design)",
                "trials beyond design",
            ],
            rows,
        ));
    report.print_tables();
    print_csv(
        "reliability_sweep",
        &["architecture", "p", "p_correct", "p_default", "p_incorrect"],
        &csv,
    );
    match report.write(args.out_path()) {
        Ok(path) => println!("\nreport: {}", path.display()),
        Err(e) => eprintln!("\nreport write failed: {e}"),
    }

    println!("\nreading: the degradable system's P(incorrect | f <= u) column must be 0 —");
    println!("all unsafe mass is converted into safe defaults within the design envelope.");
    if deg_safe_within_design {
        println!("\nRESULT: matches the paper's safety claim (C.2)");
    } else {
        println!("\nRESULT: MISMATCH");
        std::process::exit(1);
    }
}
