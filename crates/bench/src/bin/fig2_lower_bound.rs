//! **Experiment F2** — Figure 2: the three fault scenarios of the
//! Theorem 2 lower-bound proof, executed against algorithm BYZ on the
//! 4-node system (one below the 1/2-degradable bound of 5), with the two
//! indistinguishability checks and the resulting D.3 contradiction.

use agreement_bench::print_table;
use degradable::lower_bound::{demonstrate_figure2, ALPHA, BETA};
use degradable::Verdict;
use simnet::NodeId;

fn main() {
    println!("F2: Figure 2 lower-bound scenarios (1/2-degradable, N = 4 < 2m+u+1 = 5)");
    println!("nodes: S = n0 (sender), A = n1, B = n2, C = n3; alpha = {ALPHA}, beta = {BETA}");

    let demo = demonstrate_figure2();

    let mut rows = Vec::new();
    for run in &demo.runs {
        let decisions: Vec<String> = [1usize, 2, 3]
            .iter()
            .map(|&i| {
                format!(
                    "{}={}",
                    ["A", "B", "C"][i - 1],
                    run.outcome.decisions[&NodeId::new(i)]
                )
            })
            .collect();
        let verdict = match &run.verdict {
            Verdict::Satisfied(s) => format!("satisfies {}", s.condition),
            Verdict::Violated(v) => format!("VIOLATES: {v}"),
            Verdict::BeyondU { f } => format!("beyond u (f={f})"),
        };
        rows.push(vec![
            run.label.to_string(),
            run.description.clone(),
            decisions.join(" "),
            verdict,
        ]);
    }
    print_table(
        "scenario executions",
        &["scenario", "faults", "decisions", "verdict"],
        &rows,
    );

    print_table(
        "indistinguishability (views compared byte-for-byte)",
        &["claim", "holds"],
        &[
            vec![
                "B's view in (a) == B's view in (b)".into(),
                demo.b_cannot_distinguish_a_b.to_string(),
            ],
            vec![
                "A's view in (b) == A's view in (c)".into(),
                demo.a_cannot_distinguish_b_c.to_string(),
            ],
        ],
    );

    println!(
        "\ncontradiction: in (c) the sender is fault-free with value {ALPHA}, yet A decides {} \
         (D.3 allows only {ALPHA} or V_d) -> violation observed: {}",
        demo.a_decision_in_c, demo.c_violates_d3
    );

    let ok = demo.b_cannot_distinguish_a_b && demo.a_cannot_distinguish_b_c && demo.c_violates_d3;
    if ok {
        println!("\nRESULT: matches the paper's Figure 2 argument");
    } else {
        println!("\nRESULT: MISMATCH");
        std::process::exit(1);
    }
}
