//! **Experiment E18** — conformance fuzzing as a standing experiment:
//! randomized BYZ(m, u) executions checked step-by-step against the
//! abstract spec machine, plus a seeded-mutant gate proving the checker
//! has teeth.
//!
//! Three campaigns, one report (`results/fuzz_conformance.json`,
//! schema v5):
//!
//! 1. **Conformance sweep** — `--trials` (default 200) randomized
//!    [`FuzzPlan`]s with N ∈ {4..`--max-n`}: random valid `(m, u)`
//!    shapes, mixed static / adaptive / crash faults, a coin-flipped
//!    early-stopping flag, optional message-keyed link chaos and a
//!    hot-edge-cutting online adversary. Every delivered message, every
//!    per-round relay set, and every final decision is validated by
//!    [`degradable::spec::SpecChecker`]; model-clean plans additionally
//!    pass `check_degradable`. Every fourth trial is replayed through
//!    two real backends — the batched agreement service
//!    (`run_batch_traced`) and the TCP mesh — and those executions are
//!    checked against the same spec machine. The gate: zero violations,
//!    main run and backend replays alike. Any failure is shrunk to a
//!    minimal `(seed, plan)` repro and written to `results/repros/`.
//! 2. **Mutant battery** — `--mutant-budget` (default 24) executions
//!    per mutation for *each* of the four seeded bugs (relay
//!    suppression, wrong-value relay, early decision, vote off-by-one).
//!    The gate inverts: the checker **must** catch every mutant, and
//!    each mutation's first catch is minimized and written to
//!    `results/repros/` as evidence.
//! 3. **Churn sweep** — `--trials`-independent seeds of a fixed
//!    crash/rejoin schedule over the batched service
//!    ([`degradable::run_churn_with`]): a Byzantine node with corrupt
//!    outgoing links spoofing a rejoined sender's reclaimed slot id.
//!    The gate: every epoch's D.1–D.4 verdicts stay within the model
//!    and the path-root pin rejects at least one spoof.
//!
//! Flags beyond the shared [`RunArgs`]:
//!
//! * `--max-n N` — cluster-size ceiling for generated plans (CI trims);
//! * `--mutant-budget B` — executions in the mutant gate;
//! * `--no-timing` — logical-clock trace under `--trace-out`, wall
//!   times scrubbed from the obs registry.
//!
//! The report contains no worker-count field and only deterministic
//! counters (plan coverage, violation counts, spoof counts) — it is
//! bit-identical for any `--workers` value: trial `t` always draws from
//! `SimRng::derive(master_seed, t)` and the spec checker consumes no
//! randomness at all.

use degradable::adversary::Strategy;
use degradable::{BatchInstance, BatchMsg, EpochPlan, Params, Val};
use harness::fuzz::{
    run_plan, run_plan_batch, run_plan_transport, shrink, FuzzFailure, FuzzPlan, FuzzViolation,
    Mutation, ALL_MUTATIONS,
};
use harness::report::Table;
use harness::{Report, RunArgs, SweepRunner, TransportKind};
use obs::{Obs, TimeMode};
use simnet::{LinkFaultKind, LinkFaultPlan, NodeId, SimRng};
use std::collections::BTreeMap;

/// One conformance-sweep trial outcome: coverage plus any (shrunk)
/// failure. Mirrors [`harness::fuzz_trial`] but keeps the generated
/// plan's shape for the coverage table.
struct FuzzRow {
    n: usize,
    faults: usize,
    adaptive: bool,
    crash: bool,
    chaotic: bool,
    early_stop: bool,
    steps: usize,
    failure: Option<FuzzFailure>,
    backend_execs: usize,
    backend_failure: Option<FuzzViolation>,
}

/// Runs one conformance (or mutant) trial. Identical draw order to
/// `harness::fuzz_trial`, so a failure here reproduces under
/// `dagree fuzz` with the same master seed and trial index. With
/// `backends`, every fourth trial is additionally replayed through the
/// batched service and the TCP mesh under the same spec checker.
fn fuzz_cell(
    trial: usize,
    mut rng: SimRng,
    max_n: usize,
    mutation: Option<Mutation>,
    backends: bool,
    obs: &mut Obs,
) -> FuzzRow {
    let span = obs.span("fuzz.trial", vec![("trial", trial as u64)]);
    let plan = FuzzPlan::generate(&mut rng, max_n);
    let report = run_plan(&plan, mutation);
    let adaptive = plan
        .faults
        .values()
        .any(|f| matches!(f, harness::FaultSpec::Adaptive(_)));
    let crash = plan
        .faults
        .values()
        .any(|f| matches!(f, harness::FaultSpec::Crash { .. }));
    let failure = report.violation.as_ref().map(|_| {
        let (shrunk, shrink_iters) = shrink(&plan, mutation);
        let violation: FuzzViolation = run_plan(&shrunk, mutation)
            .violation
            .expect("the shrinker only returns failing plans");
        FuzzFailure {
            trial,
            plan: plan.clone(),
            shrunk,
            violation,
            shrink_iters,
        }
    });
    let mut backend_execs = 0;
    let mut backend_failure = None;
    if backends && mutation.is_none() && trial.is_multiple_of(4) {
        for rep in [
            run_plan_batch(&plan),
            run_plan_transport(&plan, TransportKind::Tcp),
        ] {
            backend_execs += 1;
            if backend_failure.is_none() {
                backend_failure = rep.violation;
            }
        }
    }
    obs.finish(span, report.steps as u64);
    obs.add("fuzz.execs", 1);
    obs.add("fuzz.backend_execs", backend_execs as u64);
    obs.add("fuzz.steps", report.steps as u64);
    obs.add("fuzz.adaptive_plans", u64::from(adaptive));
    obs.add("fuzz.crash_plans", u64::from(crash));
    obs.add("fuzz.chaos_plans", u64::from(!plan.is_model_clean()));
    obs.add("fuzz.early_stop_plans", u64::from(plan.early_stop));
    FuzzRow {
        n: plan.n,
        faults: plan.faults.len(),
        adaptive,
        crash,
        chaotic: !plan.is_model_clean(),
        early_stop: plan.early_stop,
        steps: report.steps,
        failure,
        backend_execs,
        backend_failure,
    }
}

/// One churn-sweep trial outcome (deterministic counters only).
struct ChurnRow {
    crashes: usize,
    rejoins: usize,
    spoofs_rejected: u64,
    violations: usize,
    sent: usize,
}

/// The fixed churn schedule: BYZ(1, 2) at n = 5, node 3 declared
/// Byzantine, node 4 crashing for one epoch and rejoining, and — in the
/// final epoch — node 3's corrupt outgoing links re-tagging instance-0
/// envelopes with the rejoined sender's reclaimed slot id (spoofing).
fn churn_cell(trial: usize, mut rng: SimRng, obs: &mut Obs) -> ChurnRow {
    let span = obs.span("fuzz.churn_trial", vec![("trial", trial as u64)]);
    let n = |i: usize| NodeId::new(i);
    let slot = |sender: usize, value: u64| BatchInstance {
        sender: n(sender),
        value: Val::Value(value),
    };
    let epochs = vec![
        EpochPlan {
            alive: vec![true; 5],
            instances: vec![slot(0, 10), slot(1, 20)],
        },
        // Node 4 crashes: effective f = |{3, 4}| = 2 = u, still in model.
        EpochPlan {
            alive: vec![true, true, true, true, false],
            instances: vec![slot(0, 11)],
        },
        // Node 4 rejoins; node 1's sender slot is reused and node 3
        // spoofs it (corrupt links re-tag instance 0 as instance 1).
        EpochPlan {
            alive: vec![true; 5],
            instances: vec![slot(0, 12), slot(1, 22)],
        },
    ];
    let strategies: BTreeMap<NodeId, Strategy<u64>> =
        [(n(3), Strategy::ConstantLie(Val::Value(9)))].into();
    let plan = LinkFaultPlan::healthy()
        .with(n(3), n(0), LinkFaultKind::Corrupt { p: 1.0 })
        .with(n(3), n(1), LinkFaultKind::Corrupt { p: 1.0 })
        .with(n(3), n(2), LinkFaultKind::Corrupt { p: 1.0 })
        .with(n(3), n(4), LinkFaultKind::Corrupt { p: 1.0 });
    let run = degradable::run_churn_with(
        Params::new(1, 2).expect("u >= m"),
        5,
        &epochs,
        &strategies,
        rng.below(u64::MAX),
        obs,
        |epoch, eng| {
            if epoch == 2 {
                eng.with_link_faults(plan.clone())
                    .with_corruptor(|msg: &BatchMsg<u64>, _| {
                        Some(BatchMsg {
                            instance: if msg.instance == 0 { 1 } else { msg.instance },
                            path: msg.path.clone(),
                            value: msg.value,
                        })
                    })
            } else {
                eng
            }
        },
    );
    let sent: usize = run.epochs.iter().map(|e| e.sent).sum();
    obs.finish(span, sent as u64);
    ChurnRow {
        crashes: run.crashes,
        rejoins: run.rejoins,
        spoofs_rejected: run.spoofs_rejected(),
        violations: run.violations(),
        sent,
    }
}

fn main() {
    println!("E18: conformance fuzz gate (spec machine / mutant / churn)");
    let args = RunArgs::parse();
    let master_seed = args.seed_or(0xF055_F0CC);
    let budget = args.trials_or(200);
    let runner = SweepRunner::new(args.workers_or(4));

    // Binary-specific flags (RunArgs skips what it does not recognize).
    let mut max_n = 9usize;
    let mut mutant_budget = 24usize;
    let mut timing = true;
    let mut raw = std::env::args().skip(1);
    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--no-timing" => timing = false,
            "--max-n" => {
                if let Some(v) = raw.next().and_then(|v| v.parse().ok()) {
                    max_n = v;
                }
            }
            "--mutant-budget" => {
                if let Some(v) = raw.next().and_then(|v| v.parse().ok()) {
                    mutant_budget = v;
                }
            }
            _ => {
                if let Some(v) = arg.strip_prefix("--max-n=").and_then(|v| v.parse().ok()) {
                    max_n = v;
                } else if let Some(v) = arg
                    .strip_prefix("--mutant-budget=")
                    .and_then(|v| v.parse().ok())
                {
                    mutant_budget = v;
                }
            }
        }
    }

    let mut obs_rec = Obs::enabled();

    // Campaign 1: conformance sweep — no injected bug, zero violations
    // expected. Same derive as `dagree fuzz`, so failures cross-repro.
    // Every fourth trial replays through the batched service and the
    // TCP mesh.
    let fuzz_rows = runner.run_observed(master_seed, budget, &mut obs_rec, |trial, rng, obs| {
        fuzz_cell(trial, rng, max_n, None, true, obs)
    });

    // Campaign 2: mutant battery — each seeded bug injected everywhere
    // over its own seed stream; the checker must catch all of them.
    let mutant_rows: Vec<(Mutation, Vec<FuzzRow>)> = ALL_MUTATIONS
        .iter()
        .enumerate()
        .map(|(i, &mutation)| {
            let seed = master_seed ^ 0xBADD ^ ((i as u64) << 16);
            let rows = runner.run_observed(seed, mutant_budget, &mut obs_rec, |trial, rng, obs| {
                fuzz_cell(trial, rng, max_n, Some(mutation), false, obs)
            });
            (mutation, rows)
        })
        .collect();

    // Campaign 3: churn sweep — crash/rejoin epochs with slot spoofing.
    let churn_trials = 8usize;
    let churn_rows =
        runner.run_observed(master_seed ^ 0xC4B2, churn_trials, &mut obs_rec, churn_cell);

    // Coverage table: one row per cluster size.
    #[derive(Default)]
    struct Cov {
        plans: usize,
        faults: usize,
        adaptive: usize,
        crash: usize,
        chaotic: usize,
        early_stop: usize,
        backend: usize,
        steps: usize,
    }
    let mut by_n: BTreeMap<usize, Cov> = BTreeMap::new();
    for row in &fuzz_rows {
        let e = by_n.entry(row.n).or_default();
        e.plans += 1;
        e.faults += row.faults;
        e.adaptive += usize::from(row.adaptive);
        e.crash += usize::from(row.crash);
        e.chaotic += usize::from(row.chaotic);
        e.early_stop += usize::from(row.early_stop);
        e.backend += row.backend_execs;
        e.steps += row.steps;
    }
    let coverage_rows: Vec<Vec<String>> = by_n
        .iter()
        .map(|(n, c)| {
            vec![
                n.to_string(),
                c.plans.to_string(),
                c.faults.to_string(),
                c.adaptive.to_string(),
                c.crash.to_string(),
                c.chaotic.to_string(),
                c.early_stop.to_string(),
                c.backend.to_string(),
                c.steps.to_string(),
            ]
        })
        .collect();
    let churn_table_rows: Vec<Vec<String>> = churn_rows
        .iter()
        .enumerate()
        .map(|(t, r)| {
            vec![
                t.to_string(),
                r.crashes.to_string(),
                r.rejoins.to_string(),
                r.spoofs_rejected.to_string(),
                r.violations.to_string(),
                r.sent.to_string(),
            ]
        })
        .collect();

    let fuzz_violations = fuzz_rows.iter().filter(|r| r.failure.is_some()).count();
    let backend_executions: usize = fuzz_rows.iter().map(|r| r.backend_execs).sum();
    let backend_violations = fuzz_rows
        .iter()
        .filter(|r| r.backend_failure.is_some())
        .count();
    let early_stop_plans = fuzz_rows.iter().filter(|r| r.early_stop).count();
    let battery: Vec<(Mutation, usize, usize)> = mutant_rows
        .iter()
        .map(|(mutation, rows)| {
            (
                *mutation,
                rows.len(),
                rows.iter().filter(|r| r.failure.is_some()).count(),
            )
        })
        .collect();
    let mutant_trials: usize = battery.iter().map(|(_, trials, _)| trials).sum();
    let mutants_caught: usize = battery.iter().map(|(_, _, caught)| caught).sum();
    let mutants_missed: Vec<&str> = battery
        .iter()
        .filter(|(_, _, caught)| *caught == 0)
        .map(|(m, _, _)| m.name())
        .collect();
    let total_steps: usize = fuzz_rows.iter().map(|r| r.steps).sum();
    let churn_violations: usize = churn_rows.iter().map(|r| r.violations).sum();
    let spoofs_rejected: u64 = churn_rows.iter().map(|r| r.spoofs_rejected).sum();
    let crashes: usize = churn_rows.iter().map(|r| r.crashes).sum();
    let rejoins: usize = churn_rows.iter().map(|r| r.rejoins).sum();

    // Repro files: every conformance failure (should be none), plus
    // each mutation's first catch as evidence the checker bites.
    for row in &fuzz_rows {
        if let Some(failure) = &row.failure {
            write_repro_line(failure, master_seed, None);
        }
    }
    for (i, (mutation, rows)) in mutant_rows.iter().enumerate() {
        if let Some(failure) = rows.iter().find_map(|r| r.failure.as_ref()) {
            let seed = master_seed ^ 0xBADD ^ ((i as u64) << 16);
            write_repro_line(failure, seed, Some(*mutation));
        }
    }

    let mut report = Report::new("fuzz_conformance");
    report
        .set_meta("master_seed", master_seed)
        .set_meta("budget", budget)
        .set_meta("mutant_budget", mutant_budget)
        .set_meta("churn_trials", churn_trials)
        .set_meta("max_n", max_n)
        .set_metric("executions", fuzz_rows.len())
        .set_metric("fuzz_violations", fuzz_violations)
        .set_metric("backend_executions", backend_executions)
        .set_metric("backend_violations", backend_violations)
        .set_metric("early_stop_plans", early_stop_plans)
        .set_metric("total_steps", total_steps)
        .set_metric("mutant_trials", mutant_trials)
        .set_metric("mutants_caught", mutants_caught)
        .set_metric("mutations_in_battery", battery.len())
        .set_metric("mutations_caught", battery.len() - mutants_missed.len())
        .set_metric("churn_violations", churn_violations)
        .set_metric("spoofs_rejected", spoofs_rejected)
        .set_metric("crashes", crashes)
        .set_metric("rejoins", rejoins)
        .add_table(Table::with_rows(
            "conformance sweep: plan coverage per cluster size",
            &[
                "n",
                "plans",
                "faults",
                "adaptive",
                "crash",
                "chaotic",
                "early_stop",
                "backend",
                "steps",
            ],
            coverage_rows,
        ))
        .add_table(Table::with_rows(
            "mutant battery: seeded bugs caught by the spec checker",
            &["mutation", "trials", "caught"],
            battery
                .iter()
                .map(|(m, trials, caught)| {
                    vec![m.name().to_string(), trials.to_string(), caught.to_string()]
                })
                .collect(),
        ))
        .add_table(Table::with_rows(
            "churn sweep: crash/rejoin epochs with slot spoofing",
            &[
                "trial",
                "crashes",
                "rejoins",
                "spoofs_rejected",
                "violations",
                "sent",
            ],
            churn_table_rows,
        ));
    if !timing {
        obs::scrub_timing(&mut obs_rec);
    }
    report.set_obs_registry(obs_rec.registry());
    report.print_tables();
    if let Some(trace_path) = args.trace_out_path() {
        let mode = if timing {
            TimeMode::Wall
        } else {
            TimeMode::Logical
        };
        match std::fs::write(trace_path, obs::chrome_trace_json(&obs_rec, mode)) {
            Ok(()) => println!("\ntrace: {}", trace_path.display()),
            Err(e) => eprintln!("\ntrace write failed: {e}"),
        }
    }
    match report.write(args.out_path()) {
        Ok(path) => println!("\nreport: {}", path.display()),
        Err(e) => eprintln!("\nreport write failed: {e}"),
    }

    let ok = fuzz_violations == 0
        && backend_violations == 0
        && mutants_missed.is_empty()
        && churn_violations == 0
        && spoofs_rejected > 0;
    if ok {
        println!(
            "\nRESULT: {} executions ({backend_executions} backend replays) conformant to \
             the abstract BYZ(m, u) machine; all {} mutations caught \
             ({mutants_caught}/{mutant_trials} trials); churn held through {crashes} crashes, \
             {rejoins} rejoins, {spoofs_rejected} spoofs rejected",
            fuzz_rows.len(),
            battery.len()
        );
    } else {
        println!(
            "\nRESULT: GATE FAILED (fuzz_violations={fuzz_violations}, \
             backend_violations={backend_violations}, mutations_missed={mutants_missed:?}, \
             churn_violations={churn_violations}, spoofs_rejected={spoofs_rejected})"
        );
        std::process::exit(1);
    }
}

/// Writes one failure's repro file and prints where it went.
fn write_repro_line(failure: &FuzzFailure, seed: u64, mutation: Option<Mutation>) {
    match harness::write_repro(
        std::path::Path::new("results/repros"),
        failure,
        seed,
        mutation,
    ) {
        Ok(path) => println!("repro: {} ({})", path.display(), failure.violation),
        Err(e) => eprintln!("repro write failed: {e}"),
    }
}
