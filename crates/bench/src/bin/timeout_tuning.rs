//! **Experiment E11** — deadline tuning under relaxed absence detection
//! (Section 6.1 companion).
//!
//! With more than `m` faults, clock synchronization may be degraded and a
//! fault-free node may falsely time out another fault-free node's message.
//! BYZ stays *safe* under this relaxation (D.3/D.4 hold — see the
//! `relaxed_absence` integration tests) but not *free*: every false
//! timeout pushes receivers toward `V_d`. This experiment quantifies the
//! trade: sweeping the round deadline against a heavy-tailed latency
//! distribution, how much of the fault-free receivers' mass degrades from
//! the sender's value to the default — while the safety conditions hold at
//! every point.

use agreement_bench::{pct, print_csv, print_table};
use degradable::adversary::Strategy;
use degradable::{check_degradable, run_protocol_with, ByzInstance, Params, Val};
use simnet::{LatencyModel, NodeId};
use std::collections::{BTreeMap, BTreeSet};

fn main() {
    println!("E11: round-deadline tuning under heavy-tailed latency (Section 6.1 regime)");
    let inst = ByzInstance::new(6, Params::new(1, 3).expect("1 <= 3"), NodeId::new(0))
        .expect("6 = 2m+u+1");
    // m < f <= u puts the system in the relaxation regime (false timeouts
    // between fault-free nodes are permitted). The two faulty nodes behave
    // *truthfully* — a Byzantine node may — so that every degradation in
    // the sweep is attributable to the timeout process alone.
    let strategies: BTreeMap<NodeId, Strategy<u64>> = [
        (NodeId::new(4), Strategy::Truthful),
        (NodeId::new(5), Strategy::Truthful),
    ]
    .into_iter()
    .collect();
    let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
    let latency = LatencyModel::Uniform { lo: 1, hi: 150 };
    let trials = 400usize;

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut always_safe = true;
    for deadline in [20u64, 60, 100, 140, 200] {
        let mut sender_value_decisions = 0usize;
        let mut default_decisions = 0usize;
        let mut late_total = 0usize;
        let mut satisfied = 0usize;
        for seed in 0..trials as u64 {
            let run = run_protocol_with(&inst, &Val::Value(7), &strategies, seed, |e| {
                e.with_latency(latency).with_deadline(deadline)
            });
            late_total += run.net.late;
            let record = run.record(&inst, Val::Value(7), faulty.clone());
            if check_degradable(&record).is_satisfied() {
                satisfied += 1;
            } else {
                always_safe = false;
            }
            for (_, v) in record.fault_free_decisions() {
                if v == Val::Value(7) {
                    sender_value_decisions += 1;
                } else if v.is_default() {
                    default_decisions += 1;
                }
            }
        }
        let total = sender_value_decisions + default_decisions;
        rows.push(vec![
            deadline.to_string(),
            format!("{:.1}", late_total as f64 / trials as f64),
            pct(sender_value_decisions as f64 / total.max(1) as f64),
            pct(default_decisions as f64 / total.max(1) as f64),
            format!("{satisfied}/{trials}"),
        ]);
        csv.push(vec![
            deadline.to_string(),
            format!("{}", sender_value_decisions as f64 / total.max(1) as f64),
            format!("{}", default_decisions as f64 / total.max(1) as f64),
        ]);
    }
    print_table(
        "1/3-degradable, N=6, f=2 (truthful), uniform latency 1..150, 400 seeded runs per row",
        &[
            "deadline",
            "avg late msgs/run",
            "fault-free decisions = sender value",
            "= V_d",
            "conditions held",
        ],
        &rows,
    );
    print_csv("timeout_tuning", &["deadline", "p_sender_value", "p_default"], &csv);

    println!("\nreading: tighter deadlines convert liveness (deciding the sender's value)");
    println!("into degradation (deciding V_d), but never into unsafety — the conditions");
    println!("column must stay full at every deadline, exactly the Section 6.1 claim.");
    if always_safe {
        println!("\nRESULT: matches Section 6.1 — timeouts degrade, never corrupt");
    } else {
        println!("\nRESULT: MISMATCH");
        std::process::exit(1);
    }
}
