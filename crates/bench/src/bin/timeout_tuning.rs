//! **Experiment E11** — deadline tuning under relaxed absence detection
//! (Section 6.1 companion).
//!
//! With more than `m` faults, clock synchronization may be degraded and a
//! fault-free node may falsely time out another fault-free node's message.
//! BYZ stays *safe* under this relaxation (D.3/D.4 hold — see the
//! `relaxed_absence` integration tests) but not *free*: every false
//! timeout pushes receivers toward `V_d`. This experiment quantifies the
//! trade: sweeping the round deadline against a heavy-tailed latency
//! distribution, how much of the fault-free receivers' mass degrades from
//! the sender's value to the default — while the safety conditions hold at
//! every point.
//!
//! Per deadline, the seeded runs fan out over [`harness::SweepRunner`]
//! workers (each trial's protocol seed derived from the master seed and
//! trial index); `--trials` shrinks the sweep and the JSON report lands
//! under `results/`.

use agreement_bench::{pct, print_csv};
use degradable::adversary::Strategy;
use degradable::{check_degradable, run_protocol_with, ByzInstance, Params, Val};
use harness::report::Table;
use harness::{Report, RunArgs, SweepRunner};
use simnet::{LatencyModel, NodeId};
use std::collections::{BTreeMap, BTreeSet};

#[derive(Default)]
struct DeadlineStats {
    sender_value_decisions: usize,
    default_decisions: usize,
    late_total: usize,
    satisfied: usize,
}

fn main() {
    println!("E11: round-deadline tuning under heavy-tailed latency (Section 6.1 regime)");
    let args = RunArgs::parse();
    let inst = ByzInstance::new(6, Params::new(1, 3).expect("1 <= 3"), NodeId::new(0))
        .expect("6 = 2m+u+1");
    // m < f <= u puts the system in the relaxation regime (false timeouts
    // between fault-free nodes are permitted). The two faulty nodes behave
    // *truthfully* — a Byzantine node may — so that every degradation in
    // the sweep is attributable to the timeout process alone.
    let strategies: BTreeMap<NodeId, Strategy<u64>> = [
        (NodeId::new(4), Strategy::Truthful),
        (NodeId::new(5), Strategy::Truthful),
    ]
    .into_iter()
    .collect();
    let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
    let latency = LatencyModel::Uniform { lo: 1, hi: 150 };
    let trials = args.trials_or(400);
    let master_seed = args.seed_or(0xE11);
    let runner = SweepRunner::new(args.workers_or(4));

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut always_safe = true;
    for deadline in [20u64, 60, 100, 140, 200] {
        let stats = runner.fold(
            master_seed.wrapping_add(deadline),
            trials,
            |_, mut rng| {
                let run = run_protocol_with(
                    &inst,
                    &Val::Value(7),
                    &strategies,
                    rng.below(u64::MAX),
                    |e| e.with_latency(latency).with_deadline(deadline),
                );
                let late = run.net.late;
                let record = run.record(&inst, Val::Value(7), faulty.clone());
                let safe = check_degradable(&record).is_satisfied();
                let mut sender_value = 0usize;
                let mut default = 0usize;
                for (_, v) in record.fault_free_decisions() {
                    if v == Val::Value(7) {
                        sender_value += 1;
                    } else if v.is_default() {
                        default += 1;
                    }
                }
                (late, safe, sender_value, default)
            },
            DeadlineStats::default(),
            |mut acc, (late, safe, sender_value, default)| {
                acc.late_total += late;
                acc.satisfied += usize::from(safe);
                acc.sender_value_decisions += sender_value;
                acc.default_decisions += default;
                acc
            },
        );
        always_safe &= stats.satisfied == trials;
        let total = stats.sender_value_decisions + stats.default_decisions;
        rows.push(vec![
            deadline.to_string(),
            format!("{:.1}", stats.late_total as f64 / trials.max(1) as f64),
            pct(stats.sender_value_decisions as f64 / total.max(1) as f64),
            pct(stats.default_decisions as f64 / total.max(1) as f64),
            format!("{}/{trials}", stats.satisfied),
        ]);
        csv.push(vec![
            deadline.to_string(),
            format!(
                "{}",
                stats.sender_value_decisions as f64 / total.max(1) as f64
            ),
            format!("{}", stats.default_decisions as f64 / total.max(1) as f64),
        ]);
    }

    let mut report = Report::new("timeout_tuning");
    report
        .set_meta("trials_per_deadline", trials)
        .set_meta("seed", master_seed)
        .set_meta("workers", runner.workers())
        .set_metric("always_safe", always_safe)
        .add_table(Table::with_rows(
            format!(
                "1/3-degradable, N=6, f=2 (truthful), uniform latency 1..150, {trials} seeded runs per row"
            ),
            &[
                "deadline",
                "avg late msgs/run",
                "fault-free decisions = sender value",
                "= V_d",
                "conditions held",
            ],
            rows,
        ));
    report.print_tables();
    print_csv(
        "timeout_tuning",
        &["deadline", "p_sender_value", "p_default"],
        &csv,
    );
    match report.write(args.out_path()) {
        Ok(path) => println!("\nreport: {}", path.display()),
        Err(e) => eprintln!("\nreport write failed: {e}"),
    }

    println!("\nreading: tighter deadlines convert liveness (deciding the sender's value)");
    println!("into degradation (deciding V_d), but never into unsafety — the conditions");
    println!("column must stay full at every deadline, exactly the Section 6.1 claim.");
    if always_safe {
        println!("\nRESULT: matches Section 6.1 — timeouts degrade, never corrupt");
    } else {
        println!("\nRESULT: MISMATCH");
        std::process::exit(1);
    }
}
