//! **Experiment T1** — the Section 2 table: minimum number of nodes
//! necessary for `m/u`-degradable agreement, plus empirical certification
//! of the threshold:
//!
//! * at `N = 2m+u` a concrete adversary breaks BYZ (Theorem 2);
//! * at `N = 2m+u+1` the same adversary — and every adversary the search
//!   covers — is harmless (Theorem 1).
//!
//! Certification method per cell: exhaustive enumeration of all
//! deterministic adversaries over the domain `{V_d, α, β}` where feasible,
//! seeded randomized search otherwise (the method column says which).
//! Cells certify independently, so they fan out over
//! [`harness::SweepRunner`] workers; `--trials` bounds the randomized
//! search and the JSON report lands under `results/`.

use agreement_bench::print_csv;
use degradable::analysis::{min_nodes_table, MinNodesCell};
use degradable::lower_bound::{same_adversary_at_bound, violation_below_bound};
use degradable::{ByzInstance, ExhaustiveSearch, Params, RandomizedSearch, Val};
use harness::report::Table;
use harness::{Report, RunArgs, SweepRunner};
use simnet::NodeId;
use std::collections::BTreeSet;

const MAX_M: usize = 3;
const MAX_U: usize = 6;

fn certify(m: usize, u: usize, rand_trials: usize, search_seed: u64) -> Vec<String> {
    let params = Params::new(m, u).expect("u >= m");
    let n_min = params.min_nodes();

    let below = violation_below_bound(m, u);
    let at = same_adversary_at_bound(m, u);

    // Search at the bound: exhaustive when the space is small enough,
    // randomized otherwise. Fault set: the u highest-numbered receivers
    // (the structurally worst placement for D.3).
    let sender = NodeId::new(0);
    let inst = ByzInstance::new(n_min, params, sender).expect("at bound");
    let faulty: BTreeSet<NodeId> = (n_min - u..n_min).map(NodeId::new).collect();
    let domain = vec![Val::Default, Val::Value(1), Val::Value(2)];
    let search = ExhaustiveSearch::new(inst, Val::Value(1), faulty, domain.clone());
    let (method, clean) = if search.combination_count() <= 2_000_000 {
        let witness = search.find_violation().expect("budget checked");
        (
            format!("exhaustive ({} combos)", search.combination_count()),
            witness.is_none(),
        )
    } else {
        let rs = RandomizedSearch::new(inst, Val::Value(1), domain)
            .with_trials(rand_trials)
            .with_seed(search_seed);
        let mut clean = true;
        for f in 1..=u {
            if rs.find_violation(f).0.is_some() {
                clean = false;
            }
        }
        (
            format!("randomized ({rand_trials} trials x f=1..{u})"),
            clean,
        )
    };

    vec![
        format!("{m}/{u}"),
        n_min.to_string(),
        if below.is_violated() {
            "violated (as required)"
        } else {
            "UNEXPECTED"
        }
        .to_string(),
        if at.is_satisfied() {
            "clean"
        } else {
            "UNEXPECTED"
        }
        .to_string(),
        if clean {
            "no violation found"
        } else {
            "VIOLATION FOUND"
        }
        .to_string(),
        method,
    ]
}

fn main() {
    println!("T1: minimum nodes for m/u-degradable agreement (paper, Section 2)");
    let args = RunArgs::parse();
    let rand_trials = args.trials_or(2_000);
    let seed = args.seed_or(0xA11CE);

    // The paper's table.
    let table = min_nodes_table(MAX_M, MAX_U);
    let headers: Vec<String> = std::iter::once("m \\ u".to_string())
        .chain((1..=MAX_U).map(|u| u.to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = table
        .iter()
        .enumerate()
        .map(|(mi, row)| {
            std::iter::once(format!("{}", mi + 1))
                .chain(row.iter().map(|c| match c {
                    MinNodesCell::Invalid => "-".to_string(),
                    MinNodesCell::Nodes(n) => n.to_string(),
                }))
                .collect()
        })
        .collect();

    // Empirical certification: one independent unit of work per (m, u)
    // cell, fanned out over workers in cell order.
    let cells: Vec<(usize, usize)> = (1..=MAX_M)
        .flat_map(|m| (m..=MAX_U).map(move |u| (m, u)))
        .collect();
    let runner = SweepRunner::new(args.workers_or(4));
    let cert_rows = runner.map(seed, &cells, |_, &(m, u), _rng| {
        certify(m, u, rand_trials, seed)
    });

    let mut report = Report::new("table1");
    report
        .set_meta("rand_trials", rand_trials)
        .set_meta("search_seed", seed)
        .set_meta("workers", runner.workers())
        .add_table(Table::with_rows(
            "minimum nodes 2m+u+1 (\"-\" = invalid u < m)",
            &header_refs,
            rows.clone(),
        ))
        .add_table(Table::with_rows(
            "threshold certification",
            &[
                "m/u",
                "N_min",
                "BYZ at N_min-1",
                "structured adversary at N_min",
                "search at N_min",
                "method",
            ],
            cert_rows.clone(),
        ));
    report.print_tables();
    print_csv("table1_min_nodes", &header_refs, &rows);

    let bad = cert_rows.iter().any(|r| {
        r.iter()
            .any(|c| c.contains("UNEXPECTED") || c.contains("VIOLATION FOUND"))
    });
    report.set_metric("threshold_certified", !bad);
    match report.write(args.out_path()) {
        Ok(path) => println!("\nreport: {}", path.display()),
        Err(e) => eprintln!("\nreport write failed: {e}"),
    }
    if bad {
        println!("\nRESULT: MISMATCH with the paper's bound");
        std::process::exit(1);
    }
    println!("\nRESULT: matches the paper (violations exactly below 2m+u+1, none at it)");
}
