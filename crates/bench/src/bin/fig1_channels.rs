//! **Experiment F1** — Figure 1: the 3-channel 2-of-3 Byzantine system
//! (a) versus the 4-channel 3-of-4 degradable system (b), under every
//! fault placement and a diverse strategy battery, for `f = 0, 1, 2`
//! faulty channels (fault-free sender, per conditions B.1 / C.1 / C.2).
//!
//! Reported per (architecture, f): the distribution of external-entity
//! outcomes and whether the applicable paper condition held in every run.

use agreement_bench::{pct, print_csv, print_table};
use channels::prelude::*;
use degradable::adversary::Strategy;
use degradable::Params;
use simnet::NodeId;
use std::collections::BTreeMap;

fn placements(channels: usize, f: usize) -> Vec<Vec<usize>> {
    // all f-subsets of 1..=channels
    fn rec(
        start: usize,
        channels: usize,
        f: usize,
        acc: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if acc.len() == f {
            out.push(acc.clone());
            return;
        }
        for c in start..=channels {
            acc.push(c);
            rec(c + 1, channels, f, acc, out);
            acc.pop();
        }
    }
    let mut out = Vec::new();
    rec(1, channels, f, &mut Vec::new(), &mut out);
    out
}

fn main() {
    println!("F1: Figure 1 multiple-channel systems (Section 3)");
    let archs = [
        Architecture::Byzantine { m: 1 },
        Architecture::Crusader { t: 1 },
        Architecture::Degradable {
            params: Params::new(1, 2).expect("1 <= 2"),
        },
    ];

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut safety_broken = false;
    for arch in archs {
        let system = ChannelSystem::new(arch);
        let channels = arch.channel_count();
        for f in 0..=2usize {
            let mut counts = [0usize; 3]; // correct, default, incorrect
            let mut class_bound_ok = true;
            let mut runs = 0usize;
            for placement in placements(channels, f) {
                for (_, strat) in Strategy::battery(42, 13, 5) {
                    for sensor in [7u64, 42, 1_000_003] {
                        let strategies: BTreeMap<NodeId, Strategy<u64>> = placement
                            .iter()
                            .map(|&c| (NodeId::new(c), strat.clone()))
                            .collect();
                        let r = system.run_cycle(sensor, &strategies);
                        runs += 1;
                        match r.outcome {
                            ExternalOutcome::Correct => counts[0] += 1,
                            ExternalOutcome::Default => counts[1] += 1,
                            ExternalOutcome::Incorrect => counts[2] += 1,
                        }
                        // B.2 / C.3 class bounds for the degradable system:
                        let bound = if f <= 1 { 1 } else { 2 };
                        if matches!(arch, Architecture::Degradable { .. })
                            && r.fault_free_input_classes > bound
                        {
                            class_bound_ok = false;
                        }
                    }
                }
                if f == 0 {
                    break;
                }
            }
            // Condition check: B.1/C.1 at f <= m demand all-correct; C.2 at
            // f <= u demands no incorrect.
            let cond = match (arch, f) {
                (Architecture::Byzantine { m }, f) if f <= m => {
                    if counts[0] == runs {
                        "B.1 holds"
                    } else {
                        "B.1 VIOLATED"
                    }
                }
                (Architecture::Byzantine { .. }, _) => {
                    if counts[2] > 0 {
                        "fails unsafely (expected)"
                    } else {
                        "no promise"
                    }
                }
                (Architecture::Degradable { params }, f) if f <= params.m() => {
                    if counts[0] == runs {
                        "C.1 holds"
                    } else {
                        "C.1 VIOLATED"
                    }
                }
                (Architecture::Degradable { .. }, _) => {
                    if counts[2] == 0 && class_bound_ok {
                        "C.2 & C.3 hold"
                    } else {
                        "C.2/C.3 VIOLATED"
                    }
                }
                (Architecture::Crusader { t }, f) if f <= t => {
                    if counts[0] == runs {
                        "correct (within t)"
                    } else {
                        "VIOLATED"
                    }
                }
                (Architecture::Crusader { .. }, _) => {
                    if counts[2] > 0 {
                        "fails unsafely (expected)"
                    } else {
                        "no promise"
                    }
                }
                (Architecture::Naive { .. }, _) => "n/a",
            };
            if cond.contains("VIOLATED") {
                safety_broken = true;
            }
            rows.push(vec![
                arch.label(),
                f.to_string(),
                runs.to_string(),
                pct(counts[0] as f64 / runs as f64),
                pct(counts[1] as f64 / runs as f64),
                pct(counts[2] as f64 / runs as f64),
                cond.to_string(),
            ]);
            csv_rows.push(vec![
                arch.label(),
                f.to_string(),
                counts[0].to_string(),
                counts[1].to_string(),
                counts[2].to_string(),
            ]);
        }
    }
    print_table(
        "external-entity outcomes by architecture and fault count (fault-free sender)",
        &[
            "architecture",
            "f",
            "runs",
            "correct",
            "default",
            "incorrect",
            "condition",
        ],
        &rows,
    );
    print_csv(
        "fig1_channels",
        &["architecture", "f", "correct", "default", "incorrect"],
        &csv_rows,
    );

    println!("\nreading: at f = 2 the Byzantine 3-channel system produces incorrect outputs,");
    println!("while the degradable 4-channel system degrades to the default (safe) value only.");
    if safety_broken {
        println!("\nRESULT: MISMATCH (a paper condition was violated)");
        std::process::exit(1);
    }
    println!("\nRESULT: matches the paper's conditions B.1/B.2 and C.1/C.2/C.3");
}
