//! **Experiment E9** — the Bhandari boundary (Section 2 discussion).
//!
//! Bhandari proved that algorithms achieving interactive consistency up to
//! `⌊(N-1)/3⌋` faults cannot degrade gracefully beyond `N/3` faults. The
//! paper stresses this does **not** apply to `m/u`-degradable agreement
//! with `m < ⌊(N-1)/3⌋`. This experiment exhibits both sides on `N = 7`:
//!
//! * classic max-strength IC (OM-based, `m = 2 = ⌊6/3⌋`): at `f = 3 > N/3`
//!   the fault-free vectors disagree arbitrarily — no graceful
//!   degradation, matching Bhandari;
//! * degradable IC with `m = 1 < 2`, `u = 4`: at `f = 3` (and `f = 4`)
//!   the per-slot degraded guarantees still hold — the graceful
//!   degradation Bhandari forbids for max-strength IC is available once
//!   strength is traded down.

use agreement_bench::print_table;
use degradable::adversary::Strategy;
use degradable::baselines::run_interactive_consistency;
use degradable::ic::{check_degradable_ic, run_degradable_ic};
use degradable::{Params, Val};
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet};

const N: usize = 7;

fn values() -> Vec<Val> {
    (0..N).map(|i| Val::Value(100 + i as u64)).collect()
}

fn classic_ic_consistent(f: usize) -> bool {
    // OM-based IC at maximal strength m = 2. Faulty nodes lie with a
    // receiver-dependent value (the standard splitter).
    let faulty: BTreeSet<NodeId> = (N - f..N).map(NodeId::new).collect();
    let mut fab = |_s: NodeId, p: &degradable::Path, r: NodeId, _t: &Val| {
        Val::Value((p.len() * 31 + r.index() * 7) as u64 % 5)
    };
    let vecs = run_interactive_consistency(N, 2, &values(), &faulty, &mut fab);
    // IC requires: all fault-free nodes agree on every slot (for the
    // non-self slots) and fault-free slots carry true values.
    let holders: Vec<NodeId> = NodeId::all(N).filter(|r| !faulty.contains(r)).collect();
    #[allow(clippy::needless_range_loop)]
    for slot in 0..N {
        let mut seen = BTreeSet::new();
        for &h in &holders {
            if h.index() != slot {
                seen.insert(vecs[&h][slot]);
            }
        }
        if seen.len() > 1 {
            return false;
        }
        let sender = NodeId::new(slot);
        if !faulty.contains(&sender) {
            for &h in &holders {
                if vecs[&h][slot] != values()[slot] {
                    return false;
                }
            }
        }
    }
    true
}

fn degradable_ic_holds(f: usize) -> bool {
    let params = Params::new(1, 4).expect("1 <= 4");
    let strategies: BTreeMap<NodeId, Strategy<u64>> = (N - f..N)
        .map(|i| {
            (
                NodeId::new(i),
                Strategy::TwoFaced {
                    even: Val::Value(1),
                    odd: Val::Value(2),
                },
            )
        })
        .collect();
    let out = run_degradable_ic(params, &values(), &strategies);
    check_degradable_ic(&out).is_none()
}

fn main() {
    println!("E9: the Bhandari boundary — classic IC vs degradable IC on N = {N}");
    let mut rows = Vec::new();
    let mut story_holds = true;
    for f in 0..=4usize {
        let classic = classic_ic_consistent(f);
        let degr = degradable_ic_holds(f);
        // expectations
        let classic_expected = f <= 2;
        if classic != classic_expected && f != 3 && f != 4 {
            story_holds = false;
        }
        if !degr {
            story_holds = false; // degradable guarantee must hold through u = 4
        }
        rows.push(vec![
            f.to_string(),
            format!(
                "{}{}",
                if classic {
                    "consistent"
                } else {
                    "INCONSISTENT"
                },
                if f > 2 { " (no promise)" } else { "" }
            ),
            if degr {
                "degraded guarantee holds"
            } else {
                "VIOLATED"
            }
            .to_string(),
        ]);
    }
    print_table(
        "per fault count: classic IC (m=2, OM) vs degradable IC (m=1, u=4)",
        &["f", "classic IC (max strength)", "degradable IC (1/4)"],
        &rows,
    );
    println!("\nreading: beyond f = 2 the max-strength IC algorithm may produce inconsistent");
    println!("vectors (Bhandari: no graceful degradation at full strength), while 1/4-degradable");
    println!("IC keeps its two-class-with-default guarantee through f = 4 > N/3 — the trade the");
    println!("paper's Section 2 identifies as the escape from Bhandari's impossibility.");
    if story_holds {
        println!("\nRESULT: matches the paper's Bhandari discussion");
    } else {
        println!("\nRESULT: MISMATCH");
        std::process::exit(1);
    }
}
