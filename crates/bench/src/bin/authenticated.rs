//! **Experiment A2** — what authentication buys, and what degradable
//! agreement buys without it.
//!
//! Lamport–Shostak–Pease (the paper's reference \[7\]) give two
//! algorithms: OM for oral messages (`n > 3m`) and SM for signed messages
//! (`n >= m + 2`, any `m`). Degradable agreement sits between: it needs no
//! cryptography but still offers guarantees beyond `N/3` faults — degraded
//! ones. This experiment lines the three up on small systems:
//!
//! * `N = 3`: OM(1) cannot exist (3 <= 3m+1-1); SM(1) reaches agreement
//!   under a two-faced sender; 0/2-degradable BYZ reaches *degraded*
//!   agreement (all fault-free decide `V_d` — identical, detected);
//! * `N = 4`: OM(1) handles f = 1 and collapses at f = 2; SM(2) still
//!   agrees at f = 2; 1/1-degradable equals OM; 0/3-degradable converts
//!   the f = 2 collapse into a degraded (safe) outcome.

use agreement_bench::print_table;
use degradable::adversary::Strategy;
use degradable::baselines::run_om;
use degradable::sm::{run_sm, SmAdversary};
use degradable::{check_degradable, AdversaryRun, ByzInstance, Params, RunRecord, Val};
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// Outcome summary of one protocol run against the two-faced-sender
/// attack with `extra` colluding lying receivers.
fn summarize(decisions: &BTreeMap<NodeId, Val>, faulty: &BTreeSet<NodeId>) -> String {
    let vals: Vec<String> = decisions
        .iter()
        .filter(|(r, _)| !faulty.contains(r))
        .map(|(r, v)| format!("{r}={v}"))
        .collect();
    vals.join(" ")
}

fn consistent(decisions: &BTreeMap<NodeId, Val>, faulty: &BTreeSet<NodeId>) -> bool {
    let distinct: BTreeSet<_> = decisions
        .iter()
        .filter(|(r, _)| !faulty.contains(r))
        .map(|(_, v)| *v)
        .collect();
    distinct.len() <= 1
}

fn om_row(n: usize, m: usize, faulty_receivers: usize) -> (String, bool) {
    let mut faulty: BTreeSet<NodeId> = [NodeId::new(0)].into_iter().collect();
    for i in 0..faulty_receivers {
        faulty.insert(NodeId::new(n - 1 - i));
    }
    let strategies: BTreeMap<NodeId, Strategy<u64>> = faulty
        .iter()
        .map(|&f| {
            (
                f,
                Strategy::TwoFaced {
                    even: Val::Value(1),
                    odd: Val::Value(2),
                },
            )
        })
        .collect();
    let strategies2 = strategies.clone();
    let mut fab = move |p: &degradable::Path, r: NodeId, t: &Val| {
        strategies2.get(&p.last()).expect("faulty").claim(p, r, t)
    };
    let d = run_om(n, m, NodeId::new(0), &Val::Value(0), &faulty, &mut fab);
    let ok = consistent(&d, &faulty);
    (
        format!(
            "{} [{}]",
            if ok { "agree" } else { "SPLIT" },
            summarize(&d, &faulty)
        ),
        ok,
    )
}

fn sm_row(n: usize, m: usize, faulty_receivers: usize) -> (String, bool) {
    let mut faulty: BTreeSet<NodeId> = [NodeId::new(0)].into_iter().collect();
    for i in 0..faulty_receivers {
        faulty.insert(NodeId::new(n - 1 - i));
    }
    let mut sender_claims =
        |r: NodeId| Some(Val::Value(if r.index().is_multiple_of(2) { 1 } else { 2 }));
    let mut relay_action = |relayer: NodeId, _c: &[NodeId], r: NodeId| {
        // faulty receivers withhold toward odd receivers
        if relayer != NodeId::new(0) && r.index() % 2 == 1 {
            degradable::sm::SmRelayAction::Withhold
        } else {
            degradable::sm::SmRelayAction::Forward
        }
    };
    let d = run_sm(
        n,
        m,
        NodeId::new(0),
        &Val::Value(0),
        &faulty,
        &mut SmAdversary {
            sender_claims: &mut sender_claims,
            relay_action: &mut relay_action,
        },
    );
    let ok = consistent(&d, &faulty);
    (
        format!(
            "{} [{}]",
            if ok { "agree" } else { "SPLIT" },
            summarize(&d, &faulty)
        ),
        ok,
    )
}

fn byz_row(n: usize, m: usize, u: usize, faulty_receivers: usize) -> (String, bool) {
    let params = Params::new(m, u).expect("u >= m");
    let inst = ByzInstance::new(n, params, NodeId::new(0)).expect("bound");
    let mut strategies: BTreeMap<NodeId, Strategy<u64>> = [(
        NodeId::new(0),
        Strategy::TwoFaced {
            even: Val::Value(1),
            odd: Val::Value(2),
        },
    )]
    .into_iter()
    .collect();
    for i in 0..faulty_receivers {
        strategies.insert(
            NodeId::new(n - 1 - i),
            Strategy::TwoFaced {
                even: Val::Value(1),
                odd: Val::Value(2),
            },
        );
    }
    let record: RunRecord<u64> = AdversaryRun {
        instance: inst,
        sender_value: Val::Value(0),
        strategies: strategies.clone(),
    }
    .run();
    let ok = check_degradable(&record).is_satisfied();
    let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
    (
        format!(
            "{} [{}]",
            if ok { "conditions hold" } else { "VIOLATED" },
            summarize(&record.decisions, &faulty)
        ),
        ok,
    )
}

fn main() {
    println!("A2: oral vs signed vs degradable — the two-faced-sender attack");
    println!("(sender faulty in every row; 'extra' = additional lying receivers)");

    let mut rows = Vec::new();
    let mut story = true;

    // N = 3, f = 1 (just the sender).
    let (sm, sm_ok) = sm_row(3, 1, 0);
    let (byz, byz_ok) = byz_row(3, 0, 2, 0);
    rows.push(vec![
        "3".into(),
        "1 (sender)".into(),
        "impossible (needs n > 3m)".into(),
        format!("SM(1): {sm}"),
        format!("BYZ 0/2: {byz}"),
    ]);
    story &= sm_ok && byz_ok;

    // N = 4, f = 1.
    let (om, om_ok) = om_row(4, 1, 0);
    let (sm, sm_ok) = sm_row(4, 1, 0);
    let (byz, byz_ok) = byz_row(4, 1, 1, 0);
    rows.push(vec![
        "4".into(),
        "1 (sender)".into(),
        format!("OM(1): {om}"),
        format!("SM(1): {sm}"),
        format!("BYZ 1/1: {byz}"),
    ]);
    story &= om_ok && sm_ok && byz_ok;

    // N = 4, f = 2 (sender + 1 receiver).
    let (om, om_ok) = om_row(4, 1, 1);
    let (sm, sm_ok) = sm_row(4, 2, 1);
    let (byz, byz_ok) = byz_row(4, 0, 3, 1);
    rows.push(vec![
        "4".into(),
        "2 (sender + 1)".into(),
        format!("OM(1): {om} (beyond m: no promise)"),
        format!("SM(2): {sm}"),
        format!("BYZ 0/3: {byz}"),
    ]);
    // OM may or may not split here — it's beyond its promise; SM and
    // degradable must hold.
    let _ = om_ok;
    story &= sm_ok && byz_ok;

    print_table(
        "fault-free receiver decisions per protocol",
        &[
            "N",
            "faults",
            "oral (OM)",
            "signed (SM)",
            "degradable (BYZ)",
        ],
        &rows,
    );

    println!("\nreading: signatures buy full agreement at any fault count (n >= m+2);");
    println!("degradable agreement buys *detected, consistent* degradation without any");
    println!("cryptography — the niche the paper stakes out between OM and SM.");
    if story {
        println!("\nRESULT: the three-way comparison behaves as the theory predicts");
    } else {
        println!("\nRESULT: MISMATCH");
        std::process::exit(1);
    }
}
