//! Shared helpers for the experiment binaries.
//!
//! Table/CSV printing and percentage formatting moved into
//! [`harness::report`] (where the JSON report writer lives); this crate
//! re-exports them so the experiment binaries keep one import path.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper; see `DESIGN.md` (per-experiment index) and `EXPERIMENTS.md`
//! (paper-vs-measured record). Binaries route their sweeps through
//! [`harness::SweepRunner`] and write versioned JSON reports under
//! `results/` (override with `--out`; see [`harness::RunArgs`]).

pub use harness::report::{pct, print_csv, print_table};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(0.0), "0.0%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn tables_do_not_panic() {
        print_table(
            "t",
            &["a", "bee"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        print_csv("t", &["a"], &[vec!["x".into()]]);
    }

    #[test]
    fn wide_rows_get_real_widths() {
        // Regression: rows wider than the header list used to print at a
        // hard-coded width of 8.
        print_table(
            "t",
            &["a"],
            &[vec!["1".into(), "a-wide-trailing-cell".into()]],
        );
    }
}
