//! Shared helpers for the experiment binaries: fixed-width table printing
//! and tiny CSV emission (hand-rolled to avoid extra dependencies).
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper; see `DESIGN.md` (per-experiment index) and `EXPERIMENTS.md`
//! (paper-vs-measured record).

/// Prints a fixed-width ASCII table with a header row and separator.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!("{:<w$}  ", cell, w = widths.get(i).copied().unwrap_or(8)));
        }
        println!("{}", line.trim_end());
    };
    fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        fmt_row(row);
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Emits a CSV block to stdout (for machine-readable capture by `tee`).
pub fn print_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n#csv {name}");
    println!("{}", headers.join(","));
    for row in rows {
        println!("{}", row.join(","));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(0.0), "0.0%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn tables_do_not_panic() {
        print_table(
            "t",
            &["a", "bee"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        print_csv("t", &["a"], &[vec!["x".into()]]);
    }
}
