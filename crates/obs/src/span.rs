//! Spans with logical/wall duality, and the [`Obs`] recorder that
//! collects them alongside a metric [`Registry`].
//!
//! A span measures one named unit of work twice:
//!
//! * **logical cost** — a deterministic count of the work done
//!   (events delivered, votes evaluated, messages materialized).
//!   This is the dimension reports compare and golden tests pin.
//! * **wall nanos** — what the clock said. Carried for humans and
//!   for the Chrome-trace exporter's wall mode, but excluded from
//!   equality, generalizing the `EigPerf` convention.
//!
//! The cheap path matters: a disabled [`Obs`] never calls
//! `Instant::now()` and never allocates, so instrumented hot loops
//! cost a branch when observability is off.

use crate::json::JsonValue;
use crate::registry::Registry;
use std::time::Instant;

/// One finished span: a named, attributed unit of work with its
/// logical cost and wall time.
///
/// Equality and hashing consider everything *except* `wall_nanos`
/// (see the manual [`PartialEq`] impl, which destructures
/// exhaustively so a new field is a compile error until the impl
/// decides its fate).
#[derive(Debug, Clone, Default)]
pub struct SpanRecord {
    /// Span name, e.g. `"resolve_level"`.
    pub name: String,
    /// Key/value attributes, e.g. `[("level", 2)]`, in recording order.
    pub args: Vec<(String, u64)>,
    /// Deterministic logical cost of the work (events/votes/messages).
    pub logical: u64,
    /// Elapsed wall-clock nanoseconds. Excluded from equality; zeroed
    /// by [`crate::scrub_timing`].
    pub wall_nanos: u64,
}

impl PartialEq for SpanRecord {
    fn eq(&self, other: &Self) -> bool {
        // Exhaustive destructuring: adding a field to SpanRecord
        // without deciding whether it participates in equality fails
        // to compile here.
        let SpanRecord {
            name,
            args,
            logical,
            wall_nanos: _,
        } = self;
        let SpanRecord {
            name: other_name,
            args: other_args,
            logical: other_logical,
            wall_nanos: _,
        } = other;
        name == other_name && args == other_args && logical == other_logical
    }
}

impl Eq for SpanRecord {}

impl SpanRecord {
    /// The span as a flat JSON object (the JSONL exporter's line
    /// shape):
    ///
    /// ```json
    /// {"span":"resolve_level","args":{"level":2},"logical":96,"wall_nanos":1234}
    /// ```
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![("span".to_string(), JsonValue::Str(self.name.clone()))];
        if !self.args.is_empty() {
            fields.push((
                "args".to_string(),
                JsonValue::Object(
                    self.args
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::UInt(*v)))
                        .collect(),
                ),
            ));
        }
        fields.push(("logical".to_string(), JsonValue::UInt(self.logical)));
        fields.push(("wall_nanos".to_string(), JsonValue::UInt(self.wall_nanos)));
        JsonValue::Object(fields)
    }

    /// The inverse of [`SpanRecord::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(value: &JsonValue) -> Result<SpanRecord, String> {
        let name = value
            .get("span")
            .and_then(JsonValue::as_str)
            .ok_or("span record missing string `span`")?
            .to_string();
        let mut args = Vec::new();
        if let Some(raw) = value.get("args") {
            for (k, v) in raw.as_object().ok_or("`args` must be an object")? {
                args.push((k.clone(), v.as_u64().ok_or(format!("arg `{k}` not a u64"))?));
            }
        }
        let logical = value
            .get("logical")
            .and_then(JsonValue::as_u64)
            .ok_or("span record missing u64 `logical`")?;
        let wall_nanos = value
            .get("wall_nanos")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        Ok(SpanRecord {
            name,
            args,
            logical,
            wall_nanos,
        })
    }
}

/// An in-flight span handle returned by [`Obs::span`]; hand it back to
/// [`Obs::finish`] with the logical cost once the work is done.
///
/// Deliberately not `Drop`-finished: the logical cost is only known at
/// the end, and an explicit finish keeps recording order deterministic.
#[must_use = "finish the span with Obs::finish to record it"]
#[derive(Debug)]
pub struct SpanTimer {
    name: &'static str,
    args: Vec<(&'static str, u64)>,
    start: Option<Instant>,
}

/// The observability recorder: a metric [`Registry`] plus an ordered
/// list of finished spans.
///
/// A disabled recorder (the [`Obs::disabled`] default) makes every
/// call a no-op — no clock reads, no allocation — so call sites can be
/// instrumented unconditionally.
///
/// The unbounded default retains every span. [`Obs::enabled_bounded`]
/// caps retention: once full, recording a span evicts the oldest
/// retained span, and every eviction is tallied in
/// [`Obs::dropped_spans`] *and* mirrored into the registry as the
/// `obs.dropped_spans` counter — so a truncated trace is detectable
/// from the exported file itself, never silently short.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    enabled: bool,
    registry: Registry,
    spans: Vec<SpanRecord>,
    /// Maximum spans retained (`None` = unbounded).
    span_capacity: Option<usize>,
    /// Spans evicted by the bounded mode.
    dropped_spans: u64,
}

impl PartialEq for Obs {
    fn eq(&self, other: &Self) -> bool {
        // Exhaustive destructuring: a new field must be classified
        // here. The configured capacity is a representation detail;
        // what was recorded (and how much was lost) is the content.
        let Obs {
            enabled,
            registry,
            spans,
            span_capacity: _,
            dropped_spans,
        } = self;
        *enabled == other.enabled
            && *registry == other.registry
            && *spans == other.spans
            && *dropped_spans == other.dropped_spans
    }
}

impl Eq for Obs {}

impl Obs {
    /// An enabled recorder with unbounded span retention.
    pub fn enabled() -> Self {
        Obs {
            enabled: true,
            registry: Registry::new(),
            spans: Vec::new(),
            span_capacity: None,
            dropped_spans: 0,
        }
    }

    /// An enabled recorder retaining at most `capacity` spans (oldest
    /// evicted first). Evictions count into [`Obs::dropped_spans`] and
    /// the `obs.dropped_spans` registry counter.
    pub fn enabled_bounded(capacity: usize) -> Self {
        Obs {
            span_capacity: Some(capacity),
            ..Obs::enabled()
        }
    }

    /// A disabled recorder; every method is a no-op.
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// Spans evicted by the bounded ring (zero when unbounded).
    pub fn dropped_spans(&self) -> u64 {
        self.dropped_spans
    }

    /// Appends a span, honoring the retention cap: when full, the
    /// oldest retained span is evicted (kept in logical order so
    /// [`Obs::spans`] stays a plain slice) and the eviction is counted
    /// both on the struct and as the `obs.dropped_spans` counter.
    fn push_span(&mut self, span: SpanRecord) {
        match self.span_capacity {
            Some(0) => {
                self.dropped_spans += 1;
                self.registry.add("obs.dropped_spans", 1);
            }
            Some(cap) if self.spans.len() >= cap => {
                self.spans.rotate_left(1);
                *self.spans.last_mut().expect("cap > 0") = span;
                self.dropped_spans += 1;
                self.registry.add("obs.dropped_spans", 1);
            }
            _ => self.spans.push(span),
        }
    }

    /// Whether this recorder records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a span. Prefer the [`span!`](crate::span!) macro, which
    /// stringifies attribute names for you.
    pub fn span(&self, name: &'static str, args: Vec<(&'static str, u64)>) -> SpanTimer {
        SpanTimer {
            name,
            args,
            start: if self.enabled {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Finishes a span with its deterministic logical cost, recording
    /// it. No-op when disabled.
    pub fn finish(&mut self, timer: SpanTimer, logical: u64) {
        if !self.enabled {
            return;
        }
        let wall_nanos = timer
            .start
            .map(|s| s.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        self.push_span(SpanRecord {
            name: timer.name.to_string(),
            args: timer
                .args
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            logical,
            wall_nanos,
        });
    }

    /// Records an already-measured span (used when wall time was
    /// captured elsewhere, e.g. inside a worker thread). No-op when
    /// disabled.
    pub fn record_span(&mut self, span: SpanRecord) {
        if self.enabled {
            self.push_span(span);
        }
    }

    /// The finished spans, in recording order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// The metric registry (immutable).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable registry access when enabled (`None` when disabled), for
    /// callers that fold externally accumulated counters in bulk (e.g.
    /// `EigPerf::fold_into`).
    pub fn registry_mut(&mut self) -> Option<&mut Registry> {
        if self.enabled {
            Some(&mut self.registry)
        } else {
            None
        }
    }

    /// Adds `delta` to a registry counter. No-op when disabled.
    pub fn add(&mut self, name: &str, delta: u64) {
        if self.enabled {
            self.registry.add(name, delta);
        }
    }

    /// Sets a registry counter. No-op when disabled.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        if self.enabled {
            self.registry.set_counter(name, value);
        }
    }

    /// Raises a registry gauge to `value` if higher. No-op when
    /// disabled.
    pub fn gauge_max(&mut self, name: &str, value: i64) {
        if self.enabled {
            self.registry.gauge_max(name, value);
        }
    }

    /// Observes into a registry histogram. No-op when disabled.
    pub fn observe(&mut self, name: &str, bounds: &[u64], value: u64) {
        if self.enabled {
            self.registry.observe(name, bounds, value);
        }
    }

    /// Folds another recorder in: spans append in order, registries
    /// merge. Merging recorders in deterministic (trial/chunk) order
    /// is what keeps multi-worker output bit-identical.
    pub fn merge(&mut self, other: &Obs) {
        if !self.enabled {
            return;
        }
        // Registry first (it carries `other`'s own eviction counter);
        // spans route through the cap, so merging can evict further —
        // each such eviction counts on top.
        self.registry.merge(&other.registry);
        self.dropped_spans += other.dropped_spans;
        for span in &other.spans {
            self.push_span(span.clone());
        }
    }

    /// A copy of this recorder with every span whose name is in `names`
    /// removed; the registry and drop tally carry over unchanged.
    ///
    /// Exporters use this to strip scheduling-dependent bookkeeping
    /// spans (e.g. a sweep's per-worker fan-out records, which describe
    /// the thread layout rather than the computation) from logical-mode
    /// artifacts that must be byte-identical across worker counts.
    pub fn without_spans(&self, names: &[&str]) -> Obs {
        let mut out = self.clone();
        out.spans.retain(|s| !names.contains(&s.name.as_str()));
        out
    }
}

impl crate::ScrubTiming for SpanRecord {
    fn scrub_timing(&mut self) {
        // Exhaustive destructuring: a new field must be classified as
        // logical (kept) or timing (scrubbed) here to compile.
        let SpanRecord {
            name: _,
            args: _,
            logical: _,
            wall_nanos,
        } = self;
        *wall_nanos = 0;
    }
}

impl crate::ScrubTiming for Obs {
    fn scrub_timing(&mut self) {
        for span in &mut self.spans {
            crate::ScrubTiming::scrub_timing(span);
        }
        crate::ScrubTiming::scrub_timing(&mut self.registry);
    }
}

/// Starts a span on an [`Obs`] recorder, stringifying attribute names:
///
/// ```
/// # let obs = obs::Obs::enabled();
/// # let mut obs = obs;
/// let level = 2u64;
/// let timer = obs::span!(obs, "resolve_level", level);
/// // ... do the work ...
/// obs.finish(timer, 96);
/// ```
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr $(, $arg:expr)* $(,)?) => {
        $obs.span($name, vec![$((stringify!($arg), ($arg) as u64)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub_timing;

    #[test]
    fn equality_ignores_wall_nanos() {
        let a = SpanRecord {
            name: "fill".into(),
            args: vec![("n".into(), 7)],
            logical: 42,
            wall_nanos: 1_000,
        };
        let mut b = a.clone();
        b.wall_nanos = 999_999;
        assert_eq!(a, b);
        b.logical = 43;
        assert_ne!(a, b);
    }

    #[test]
    fn span_json_round_trips() {
        let span = SpanRecord {
            name: "resolve_level".into(),
            args: vec![("level".into(), 2), ("width".into(), 12)],
            logical: 96,
            wall_nanos: 12_345,
        };
        let json = span.to_json();
        let back = SpanRecord::from_json(&json).unwrap();
        assert_eq!(back, span);
        assert_eq!(back.wall_nanos, span.wall_nanos);
        assert_eq!(back.to_json().to_json_string(), json.to_json_string());
    }

    #[test]
    fn span_json_wall_nanos_is_optional() {
        let v = JsonValue::parse("{\"span\":\"x\",\"logical\":3}").unwrap();
        let span = SpanRecord::from_json(&v).unwrap();
        assert_eq!(span.logical, 3);
        assert_eq!(span.wall_nanos, 0);
        assert!(SpanRecord::from_json(&JsonValue::parse("{\"logical\":3}").unwrap()).is_err());
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut obs = Obs::disabled();
        let timer = span!(obs, "work", 1u64);
        assert!(timer.start.is_none());
        obs.finish(timer, 10);
        obs.add("c", 5);
        obs.gauge_max("g", 5);
        obs.observe("h", &[10], 5);
        assert!(obs.spans().is_empty());
        assert!(obs.registry().is_empty());
    }

    #[test]
    fn enabled_recorder_measures_wall_and_keeps_logical() {
        let mut obs = Obs::enabled();
        let level = 3u64;
        let timer = span!(obs, "resolve_level", level);
        obs.finish(timer, 96);
        assert_eq!(obs.spans().len(), 1);
        let span = &obs.spans()[0];
        assert_eq!(span.name, "resolve_level");
        assert_eq!(span.args, vec![("level".to_string(), 3)]);
        assert_eq!(span.logical, 96);
    }

    #[test]
    fn merge_appends_spans_and_folds_registry() {
        let mut a = Obs::enabled();
        let t = a.span("first", vec![]);
        a.finish(t, 1);
        a.add("c", 1);
        let mut b = Obs::enabled();
        let t = b.span("second", vec![]);
        b.finish(t, 2);
        b.add("c", 2);
        a.merge(&b);
        assert_eq!(a.spans().len(), 2);
        assert_eq!(a.spans()[1].name, "second");
        assert_eq!(a.registry().counter("c"), 3);
    }

    fn named(name: &str) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            args: vec![],
            logical: 1,
            wall_nanos: 0,
        }
    }

    #[test]
    fn bounded_recorder_evicts_oldest_and_counts_drops() {
        let mut obs = Obs::enabled_bounded(2);
        for name in ["a", "b", "c", "d"] {
            obs.record_span(named(name));
        }
        assert_eq!(obs.dropped_spans(), 2);
        assert_eq!(obs.registry().counter("obs.dropped_spans"), 2);
        let names: Vec<&str> = obs.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["c", "d"], "oldest evicted, order preserved");
    }

    #[test]
    fn zero_capacity_recorder_drops_everything() {
        let mut obs = Obs::enabled_bounded(0);
        obs.record_span(named("a"));
        assert!(obs.spans().is_empty());
        assert_eq!(obs.dropped_spans(), 1);
        assert_eq!(obs.registry().counter("obs.dropped_spans"), 1);
    }

    #[test]
    fn unbounded_recorder_never_drops() {
        let mut obs = Obs::enabled();
        for _ in 0..100 {
            obs.record_span(named("x"));
        }
        assert_eq!(obs.spans().len(), 100);
        assert_eq!(obs.dropped_spans(), 0);
        assert_eq!(obs.registry().counter("obs.dropped_spans"), 0);
    }

    #[test]
    fn merge_into_bounded_recorder_keeps_accounting() {
        let mut sink = Obs::enabled_bounded(2);
        sink.record_span(named("old"));
        let mut src = Obs::enabled_bounded(4);
        for name in ["a", "b", "c"] {
            src.record_span(named(name));
        }
        sink.merge(&src);
        // "old" and "a" evicted on the way in; src dropped nothing.
        assert_eq!(sink.dropped_spans(), 2);
        assert_eq!(sink.registry().counter("obs.dropped_spans"), 2);
        let names: Vec<&str> = sink.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["b", "c"]);
    }

    #[test]
    fn equality_ignores_capacity_but_not_drops() {
        let mut bounded = Obs::enabled_bounded(10);
        bounded.record_span(named("a"));
        let mut plain = Obs::enabled();
        plain.record_span(named("a"));
        assert_eq!(bounded, plain, "capacity is a representation detail");
        let mut wrapped = Obs::enabled_bounded(1);
        wrapped.record_span(named("x"));
        wrapped.record_span(named("a"));
        assert_ne!(wrapped, plain, "an eviction is observable state");
    }

    #[test]
    fn scrub_timing_zeroes_wall_only() {
        let mut obs = Obs::enabled();
        obs.record_span(SpanRecord {
            name: "w".into(),
            args: vec![],
            logical: 5,
            wall_nanos: 77,
        });
        scrub_timing(&mut obs);
        assert_eq!(obs.spans()[0].wall_nanos, 0);
        assert_eq!(obs.spans()[0].logical, 5);
    }
}
