//! Causal trace context for protocol messages.
//!
//! A [`TraceCtx`] identifies one protocol envelope causally: which
//! agreement *instance* it belongs to, the EIG relay *path* it claims,
//! and how many *hops* it has traversed. The sender stamps it at send
//! time; transports propagate it (the TCP mesh puts it on the wire, see
//! `transport::frame`), and receivers record it alongside their
//! `trace.deliver` spans — so a trace file contains enough to rebuild
//! the full send → deliver → fill → resolve → decide chain of any
//! message after the fact.
//!
//! Everything here is plain deterministic data: under
//! [`TimeMode::Logical`](crate::TimeMode) a traced run serializes
//! bit-identically across reruns and worker counts. Span attributes are
//! `u64`-valued, so the context flattens to the args
//! `instance`, `hop`, `path_len`, `p0`.. `p{len-1}` and parses back via
//! [`TraceCtx::from_span_args`].

use crate::json::JsonValue;
use std::fmt;

/// Causal identity of one protocol envelope.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct TraceCtx {
    /// Agreement instance the envelope belongs to (0 for single-instance
    /// runs; the slot index in batched streams).
    pub instance: u64,
    /// The claimed EIG relay path, root (sender) first.
    pub path: Vec<u64>,
    /// Hops traversed when the envelope was sent (= the sending round;
    /// equals `path.len()` for well-formed envelopes, carried separately
    /// so re-sends and malformed claims stay distinguishable).
    pub hop: u32,
}

impl TraceCtx {
    /// A context for an envelope of `instance` carrying `path`, stamped
    /// at hop `path.len()`.
    pub fn new(instance: u64, path: Vec<u64>) -> Self {
        let hop = path.len() as u32;
        TraceCtx {
            instance,
            path,
            hop,
        }
    }

    /// The context flattened to span attributes:
    /// `[("instance", i), ("hop", h), ("path_len", L), ("p0", n0), ...]`.
    pub fn span_args(&self) -> Vec<(String, u64)> {
        let mut args = vec![
            ("instance".to_string(), self.instance),
            ("hop".to_string(), u64::from(self.hop)),
            ("path_len".to_string(), self.path.len() as u64),
        ];
        for (i, node) in self.path.iter().enumerate() {
            args.push((format!("p{i}"), *node));
        }
        args
    }

    /// Rebuilds a context from span attributes written by
    /// [`TraceCtx::span_args`]. Returns `None` when the args carry no
    /// trace context (not an error: most spans are not trace events).
    pub fn from_span_args(args: &[(String, u64)]) -> Option<TraceCtx> {
        let get = |key: &str| args.iter().find(|(k, _)| k == key).map(|(_, v)| *v);
        let instance = get("instance")?;
        let hop = get("hop")? as u32;
        let path_len = get("path_len")? as usize;
        let mut path = Vec::with_capacity(path_len);
        for i in 0..path_len {
            path.push(get(&format!("p{i}"))?);
        }
        Some(TraceCtx {
            instance,
            path,
            hop,
        })
    }

    /// The context as a flat JSON object:
    /// `{"instance":0,"path":[0,2,5],"hop":2}`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("instance".into(), self.instance.into()),
            ("path".into(), self.path.clone().into()),
            ("hop".into(), u64::from(self.hop).into()),
        ])
    }

    /// The inverse of [`TraceCtx::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(value: &JsonValue) -> Result<TraceCtx, String> {
        let instance = value
            .get("instance")
            .and_then(JsonValue::as_u64)
            .ok_or("trace ctx missing u64 `instance`")?;
        let hop = value
            .get("hop")
            .and_then(JsonValue::as_u64)
            .ok_or("trace ctx missing u64 `hop`")? as u32;
        let path = value
            .get("path")
            .and_then(JsonValue::as_array)
            .ok_or("trace ctx missing array `path`")?
            .iter()
            .map(|v| v.as_u64().ok_or("trace ctx path element not a u64"))
            .collect::<Result<Vec<u64>, _>>()?;
        Ok(TraceCtx {
            instance,
            path,
            hop,
        })
    }

    /// Whether `other`'s path extends this context's path by exactly one
    /// hop within the same instance — the causal-chain successor test
    /// the critical-path reconstruction uses.
    pub fn is_parent_of(&self, other: &TraceCtx) -> bool {
        self.instance == other.instance
            && other.path.len() == self.path.len() + 1
            && other.path.starts_with(&self.path)
    }
}

impl fmt::Display for TraceCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inst {} path ", self.instance)?;
        if self.path.is_empty() {
            write!(f, "(empty)")?;
        } else {
            for (i, node) in self.path.iter().enumerate() {
                if i > 0 {
                    write!(f, "->")?;
                }
                write!(f, "{node}")?;
            }
        }
        write!(f, " hop {}", self.hop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_args_round_trip() {
        let ctx = TraceCtx::new(3, vec![0, 2, 5]);
        assert_eq!(ctx.hop, 3);
        let args = ctx.span_args();
        assert_eq!(args[0], ("instance".to_string(), 3));
        assert_eq!(args[2], ("path_len".to_string(), 3));
        assert_eq!(TraceCtx::from_span_args(&args), Some(ctx));
    }

    #[test]
    fn span_args_absent_on_plain_spans() {
        assert_eq!(TraceCtx::from_span_args(&[("level".to_string(), 2)]), None);
        // A truncated path (missing p1) is no context at all.
        let args = vec![
            ("instance".to_string(), 0),
            ("hop".to_string(), 2),
            ("path_len".to_string(), 2),
            ("p0".to_string(), 0),
        ];
        assert_eq!(TraceCtx::from_span_args(&args), None);
    }

    #[test]
    fn json_round_trip() {
        let ctx = TraceCtx::new(7, vec![0, 4]);
        let text = ctx.to_json().to_json_string();
        assert_eq!(text, "{\"instance\":7,\"path\":[0,4],\"hop\":2}");
        let back = TraceCtx::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back, ctx);
    }

    #[test]
    fn from_json_rejects_malformed() {
        for bad in [
            "{\"path\":[0],\"hop\":1}",
            "{\"instance\":0,\"hop\":1}",
            "{\"instance\":0,\"path\":[\"x\"],\"hop\":1}",
        ] {
            let v = JsonValue::parse(bad).unwrap();
            assert!(TraceCtx::from_json(&v).is_err(), "{bad}");
        }
    }

    #[test]
    fn parenthood_is_one_hop_extension_same_instance() {
        let root = TraceCtx::new(0, vec![0]);
        let child = TraceCtx::new(0, vec![0, 2]);
        let grandchild = TraceCtx::new(0, vec![0, 2, 4]);
        let foreign = TraceCtx::new(1, vec![0, 2]);
        assert!(root.is_parent_of(&child));
        assert!(child.is_parent_of(&grandchild));
        assert!(!root.is_parent_of(&grandchild));
        assert!(!root.is_parent_of(&foreign));
        assert!(!child.is_parent_of(&root));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(
            TraceCtx::new(2, vec![0, 3, 1]).to_string(),
            "inst 2 path 0->3->1 hop 3"
        );
        assert_eq!(
            TraceCtx::new(0, vec![]).to_string(),
            "inst 0 path (empty) hop 0"
        );
    }
}
