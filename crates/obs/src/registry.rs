//! The metric registry: named counters, gauges and fixed-bucket
//! histograms with deterministic snapshots.
//!
//! Everything in a [`Registry`] is *logical* — event counts, vote
//! counts, queue depths — never wall time, so a snapshot of a
//! deterministic run is bit-identical across machines and worker
//! counts. Wall time lives on spans ([`crate::SpanRecord`]), carried
//! but excluded from equality.
//!
//! Names are free-form dotted strings (`"eig.votes_evaluated"`,
//! `"sim.dropped.crash"`). Storage is `BTreeMap`-backed, so iteration,
//! snapshots and JSON emission are in sorted-name order regardless of
//! recording order.

use crate::json::JsonValue;
use std::collections::BTreeMap;

/// A fixed-bucket histogram: cumulative-style upper bounds plus an
/// implicit overflow bucket, a total count and a sum.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    /// Inclusive upper bounds of the finite buckets, ascending.
    bounds: Vec<u64>,
    /// `buckets[i]` counts observations `<= bounds[i]` (and above the
    /// previous bound); the last entry is the overflow bucket.
    buckets: Vec<u64>,
    /// Observations recorded.
    count: u64,
    /// Sum of all observed values.
    sum: u64,
}

impl Histogram {
    /// A histogram with the given ascending upper bounds.
    ///
    /// # Panics
    ///
    /// If `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; one longer than [`Histogram::bounds`] (the
    /// last entry is the overflow bucket).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// A deterministic quantile estimate by linear interpolation within
    /// the bucket holding the `q`-th observation (`0.0 < q <= 1.0`).
    /// Observations in the overflow bucket are estimated at the last
    /// finite bound (a stated underestimate — pick bounds that cover the
    /// expected range). `None` when nothing was observed.
    ///
    /// The estimate is pure integer-count arithmetic over the bucket
    /// table, so for a deterministic run it is bit-identical across
    /// machines and worker counts — which is what lets SLO gates and
    /// snapshots rely on it.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) || q == 0.0 {
            return None;
        }
        // 1-based rank of the target observation.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let before = seen;
            seen += c;
            if rank <= seen {
                if i == self.bounds.len() {
                    // Overflow bucket: no upper bound to interpolate to.
                    return Some(self.bounds[self.bounds.len() - 1] as f64);
                }
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] } as f64;
                let upper = self.bounds[i] as f64;
                let frac = (rank - before) as f64 / c as f64;
                return Some(lower + (upper - lower) * frac);
            }
        }
        None
    }

    /// [`Histogram::quantile`] in the workspace's fixed-point `_x100`
    /// convention (rounded to the nearest hundredth), the form snapshots
    /// embed so registry JSON stays integer-only.
    pub fn quantile_x100(&self, q: f64) -> Option<u64> {
        self.quantile(q).map(|v| (v * 100.0).round() as u64)
    }

    /// Folds another histogram in. Bucket-wise when the bounds match;
    /// otherwise the other histogram's sum/count are preserved by
    /// re-observing its mean per observation (a lossy but total merge —
    /// mismatched bounds indicate a naming collision, which the caller
    /// should avoid).
    pub fn merge(&mut self, other: &Histogram) {
        if self.bounds == other.bounds {
            for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
                *mine += theirs;
            }
            self.count += other.count;
            self.sum += other.sum;
        } else if let Some(mean) = other.sum.checked_div(other.count) {
            for _ in 0..other.count {
                self.observe(mean);
            }
        }
    }
}

/// A registry of named counters, gauges and histograms.
///
/// * **Counters** are monotone `u64` sums (`add`, or `set` for
///   re-expressing an externally accumulated total).
/// * **Gauges** are point-in-time `i64` levels (`set`); merging keeps
///   the maximum, the convention that makes "peak queue depth" style
///   gauges deterministic under merge order.
/// * **Histograms** are fixed-bucket distributions of logical sizes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `delta` to the named counter (created at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named counter to an externally accumulated total.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// The named counter's value (zero when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Raises the named gauge to `value` if that is higher (peak
    /// tracking; also how merge combines gauges).
    pub fn gauge_max(&mut self, name: &str, value: i64) {
        let slot = self.gauges.entry(name.to_string()).or_insert(value);
        *slot = (*slot).max(value);
    }

    /// The named gauge's value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Records one observation into the named histogram, creating it
    /// with `bounds` on first use (later calls ignore `bounds`).
    pub fn observe(&mut self, name: &str, bounds: &[u64], value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// The named histogram, if ever observed into.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in sorted-name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates gauges in sorted-name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates histograms in sorted-name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds another registry in: counters add, gauges keep the max,
    /// histograms merge bucket-wise.
    pub fn merge(&mut self, other: &Registry) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            self.gauge_max(name, *value);
        }
        for (name, theirs) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(theirs),
                None => {
                    self.histograms.insert(name.clone(), theirs.clone());
                }
            }
        }
    }

    /// The registry as a deterministic JSON snapshot:
    ///
    /// ```json
    /// {
    ///   "counters": {"eig.votes_evaluated": 42},
    ///   "gauges": {"sweep.queue_depth_peak": 8},
    ///   "histograms": {
    ///     "span.logical": {"bounds": [10, 100], "buckets": [1, 2, 0],
    ///                      "count": 3, "sum": 140,
    ///                      "p50_x100": 5500, "p90_x100": 9100, "p99_x100": 9910}
    ///   }
    /// }
    /// ```
    ///
    /// Sections are omitted when empty; keys are in sorted-name order,
    /// so two equal registries serialize to identical bytes. The
    /// `p50/p90/p99` fields are [`Histogram::quantile_x100`] estimates —
    /// derived from the buckets (consumers no longer re-derive them),
    /// emitted only when the histogram is non-empty, and ignored by
    /// [`Registry::from_json`] (recomputed on re-serialization, so the
    /// snapshot still round-trips byte-identically).
    pub fn to_json(&self) -> JsonValue {
        let mut fields = Vec::new();
        if !self.counters.is_empty() {
            fields.push((
                "counters".to_string(),
                JsonValue::Object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::UInt(*v)))
                        .collect(),
                ),
            ));
        }
        if !self.gauges.is_empty() {
            fields.push((
                "gauges".to_string(),
                JsonValue::Object(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::Int(*v)))
                        .collect(),
                ),
            ));
        }
        if !self.histograms.is_empty() {
            fields.push((
                "histograms".to_string(),
                JsonValue::Object(
                    self.histograms
                        .iter()
                        .map(|(k, h)| {
                            let mut fields = vec![
                                ("bounds".into(), h.bounds.clone().into()),
                                ("buckets".into(), h.buckets.clone().into()),
                                ("count".into(), h.count.into()),
                                ("sum".into(), h.sum.into()),
                            ];
                            for (key, q) in
                                [("p50_x100", 0.5), ("p90_x100", 0.9), ("p99_x100", 0.99)]
                            {
                                if let Some(v) = h.quantile_x100(q) {
                                    fields.push((key.into(), v.into()));
                                }
                            }
                            (k.clone(), JsonValue::Object(fields))
                        })
                        .collect(),
                ),
            ));
        }
        JsonValue::Object(fields)
    }

    /// Rebuilds a registry from a [`Registry::to_json`] snapshot (the
    /// inverse; used by `cli obs` to summarize and diff report files).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed section.
    pub fn from_json(value: &JsonValue) -> Result<Registry, String> {
        let mut reg = Registry::new();
        if let Some(counters) = value.get("counters") {
            for (name, v) in counters.as_object().ok_or("`counters` must be an object")? {
                reg.set_counter(
                    name,
                    v.as_u64().ok_or(format!("counter `{name}` not a u64"))?,
                );
            }
        }
        if let Some(gauges) = value.get("gauges") {
            for (name, v) in gauges.as_object().ok_or("`gauges` must be an object")? {
                reg.set_gauge(
                    name,
                    v.as_i64().ok_or(format!("gauge `{name}` not an i64"))?,
                );
            }
        }
        if let Some(histograms) = value.get("histograms") {
            for (name, v) in histograms
                .as_object()
                .ok_or("`histograms` must be an object")?
            {
                let nums = |key: &str| -> Result<Vec<u64>, String> {
                    v.get(key)
                        .and_then(JsonValue::as_array)
                        .ok_or(format!("histogram `{name}` missing `{key}`"))?
                        .iter()
                        .map(|x| x.as_u64().ok_or(format!("bad `{key}` in `{name}`")))
                        .collect()
                };
                let bounds = nums("bounds")?;
                let buckets = nums("buckets")?;
                if buckets.len() != bounds.len() + 1 {
                    return Err(format!("histogram `{name}` bucket/bound length mismatch"));
                }
                let mut h = Histogram::new(&bounds);
                h.buckets = buckets;
                h.count = v
                    .get("count")
                    .and_then(JsonValue::as_u64)
                    .ok_or(format!("histogram `{name}` missing `count`"))?;
                h.sum = v
                    .get("sum")
                    .and_then(JsonValue::as_u64)
                    .ok_or(format!("histogram `{name}` missing `sum`"))?;
                reg.histograms.insert(name.clone(), h);
            }
        }
        Ok(reg)
    }
}

impl crate::ScrubTiming for Registry {
    fn scrub_timing(&mut self) {
        // Registries hold logical quantities by convention, with one
        // sanctioned exception: metrics whose dotted name contains
        // "wall" (e.g. `svc.instance.wall_ns`) carry wall-clock
        // measurements for humans. Scrubbing removes those entries
        // wholesale — a zeroed wall histogram would still perturb
        // bucket counts, so removal is the only byte-stable scrub.
        self.counters.retain(|k, _| !k.contains("wall"));
        self.gauges.retain(|k, _| !k.contains("wall"));
        self.histograms.retain(|k, _| !k.contains("wall"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_set() {
        let mut r = Registry::new();
        r.add("a", 2);
        r.add("a", 3);
        r.set_counter("b", 7);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("b"), 7);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn gauges_set_and_peak() {
        let mut r = Registry::new();
        r.set_gauge("depth", 4);
        r.gauge_max("depth", 2);
        assert_eq!(r.gauge("depth"), Some(4));
        r.gauge_max("depth", 9);
        assert_eq!(r.gauge("depth"), Some(9));
        assert_eq!(r.gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[10, 100]);
        for v in [1, 10, 11, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.buckets(), &[2, 2, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1122);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[10, 10]);
    }

    #[test]
    fn merge_adds_counters_maxes_gauges_folds_histograms() {
        let mut a = Registry::new();
        a.add("c", 1);
        a.set_gauge("g", 3);
        a.observe("h", &[10], 5);
        let mut b = Registry::new();
        b.add("c", 2);
        b.add("only_b", 9);
        b.set_gauge("g", 5);
        b.observe("h", &[10], 50);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("only_b"), 9);
        assert_eq!(a.gauge("g"), Some(5));
        assert_eq!(a.histogram("h").unwrap().buckets(), &[1, 1]);
    }

    #[test]
    fn merge_order_is_immaterial() {
        let make = |seed: u64| {
            let mut r = Registry::new();
            r.add("c", seed);
            r.gauge_max("g", seed as i64);
            r.observe("h", &[5, 50], seed);
            r
        };
        let parts = [make(1), make(7), make(60)];
        let mut fwd = Registry::new();
        let mut rev = Registry::new();
        for p in &parts {
            fwd.merge(p);
        }
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, rev);
        assert_eq!(
            fwd.to_json().to_json_string(),
            rev.to_json().to_json_string()
        );
    }

    #[test]
    fn snapshot_round_trips() {
        let mut r = Registry::new();
        r.add("eig.votes", 42);
        r.set_gauge("queue", -3);
        r.observe("sizes", &[10, 100], 7);
        r.observe("sizes", &[10, 100], 700);
        let json = r.to_json();
        let back = Registry::from_json(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json().to_json_string(), json.to_json_string());
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let mut h = Histogram::new(&[10, 100]);
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        for v in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            h.observe(v);
        }
        // All ten observations sit in the (0, 10] bucket: the median is
        // rank 5 of 10 → halfway through the bucket.
        assert_eq!(h.quantile(0.5), Some(5.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
        assert_eq!(h.quantile_x100(0.5), Some(500));
        // Out-of-range q is refused.
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.5), None);
    }

    #[test]
    fn quantile_overflow_saturates_at_last_bound() {
        let mut h = Histogram::new(&[10]);
        h.observe(5);
        h.observe(1_000);
        // p99 lands in the overflow bucket: estimate saturates at the
        // last finite bound (documented underestimate).
        assert_eq!(h.quantile(0.99), Some(10.0));
    }

    #[test]
    fn snapshot_embeds_quantiles_and_still_round_trips() {
        let mut r = Registry::new();
        r.observe("lat", &[10, 100], 5);
        r.observe("lat", &[10, 100], 50);
        let text = r.to_json().to_json_string();
        assert!(text.contains("\"p50_x100\""), "{text}");
        assert!(text.contains("\"p99_x100\""), "{text}");
        // The quantile fields are derived: the parser ignores them and
        // re-serialization recomputes identical bytes.
        let back = Registry::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json().to_json_string(), text);
    }

    #[test]
    fn scrub_timing_removes_wall_metrics_only() {
        let mut r = Registry::new();
        r.add("svc.instances", 4);
        r.add("svc.batch.wall_ns_total", 999);
        r.set_gauge("svc.wall_peak", 7);
        r.observe("svc.instance.logical", &[10], 3);
        r.observe("svc.instance.wall_ns", &[1000], 250);
        crate::scrub_timing(&mut r);
        assert_eq!(r.counter("svc.instances"), 4);
        assert_eq!(r.counter("svc.batch.wall_ns_total"), 0);
        assert_eq!(r.gauge("svc.wall_peak"), None);
        assert!(r.histogram("svc.instance.logical").is_some());
        assert!(r.histogram("svc.instance.wall_ns").is_none());
    }

    #[test]
    fn snapshot_of_empty_registry_is_empty_object() {
        assert_eq!(Registry::new().to_json().to_json_string(), "{}");
        assert!(Registry::new().is_empty());
    }

    #[test]
    fn from_json_rejects_malformed() {
        for bad in [
            "{\"counters\":[]}",
            "{\"counters\":{\"a\":-1}}",
            "{\"gauges\":{\"a\":\"x\"}}",
            "{\"histograms\":{\"h\":{\"bounds\":[1],\"buckets\":[1],\"count\":1,\"sum\":1}}}",
        ] {
            let v = JsonValue::parse(bad).unwrap();
            assert!(Registry::from_json(&v).is_err(), "{bad}");
        }
    }
}
