//! Exporters: Chrome `trace_event` JSON and flat JSONL, plus the
//! parser `cli obs` uses to read either format back.
//!
//! Both exporters are pure functions of an [`Obs`] recorder, so after
//! [`crate::scrub_timing`] their output is bit-identical across
//! machines and worker counts (the golden-trace tests pin exactly
//! this).

use crate::json::JsonValue;
use crate::registry::Registry;
use crate::span::{Obs, SpanRecord};

/// Which duration dimension the Chrome exporter maps onto `ts`/`dur`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeMode {
    /// `ts`/`dur` come from recorded wall nanoseconds (in µs, as the
    /// trace_event spec expects). Human-friendly, non-deterministic.
    Wall,
    /// `ts`/`dur` come from cumulative logical cost (one logical unit
    /// rendered as one "µs"). Deterministic: identical runs produce
    /// identical bytes.
    Logical,
}

/// Renders the recorder as Chrome `trace_event` JSON, loadable in
/// `chrome://tracing` or Perfetto.
///
/// Spans become complete (`"ph":"X"`) events laid out sequentially on
/// one track; each carries its attributes plus `logical` and
/// `wall_nanos` in `args`, so the trace is lossless regardless of
/// `mode`. Registry counters and gauges become counter (`"ph":"C"`)
/// events, and the full registry snapshot rides a metadata
/// (`"ph":"M"`) event named `obs.registry`.
pub fn chrome_trace_json(obs: &Obs, mode: TimeMode) -> String {
    let mut events = Vec::new();
    let mut cursor_us: u64 = 0;
    for span in obs.spans() {
        let dur = match mode {
            TimeMode::Wall => span.wall_nanos / 1_000,
            TimeMode::Logical => span.logical,
        };
        let mut args: Vec<(String, JsonValue)> = span
            .args
            .iter()
            .map(|(k, v)| (k.clone(), JsonValue::UInt(*v)))
            .collect();
        args.push(("logical".into(), span.logical.into()));
        args.push(("wall_nanos".into(), span.wall_nanos.into()));
        events.push(JsonValue::Object(vec![
            ("name".into(), JsonValue::Str(span.name.clone())),
            ("ph".into(), JsonValue::Str("X".into())),
            ("pid".into(), JsonValue::UInt(0)),
            ("tid".into(), JsonValue::UInt(0)),
            ("ts".into(), cursor_us.into()),
            ("dur".into(), dur.into()),
            ("args".into(), JsonValue::Object(args)),
        ]));
        cursor_us += dur;
    }
    let registry = obs.registry();
    for (name, value) in registry.counters() {
        events.push(counter_event(name, JsonValue::UInt(value)));
    }
    for (name, value) in registry.gauges() {
        events.push(counter_event(name, JsonValue::Int(value)));
    }
    if !registry.is_empty() {
        events.push(JsonValue::Object(vec![
            ("name".into(), JsonValue::Str("obs.registry".into())),
            ("ph".into(), JsonValue::Str("M".into())),
            ("pid".into(), JsonValue::UInt(0)),
            ("tid".into(), JsonValue::UInt(0)),
            ("ts".into(), JsonValue::UInt(0)),
            (
                "args".into(),
                JsonValue::Object(vec![("registry".into(), registry.to_json())]),
            ),
        ]));
    }
    JsonValue::Object(vec![("traceEvents".into(), JsonValue::Array(events))]).to_json_string()
}

fn counter_event(name: &str, value: JsonValue) -> JsonValue {
    JsonValue::Object(vec![
        ("name".into(), JsonValue::Str(name.to_string())),
        ("ph".into(), JsonValue::Str("C".into())),
        ("pid".into(), JsonValue::UInt(0)),
        ("tid".into(), JsonValue::UInt(0)),
        ("ts".into(), JsonValue::UInt(0)),
        (
            "args".into(),
            JsonValue::Object(vec![("value".into(), value)]),
        ),
    ])
}

/// Renders the recorder as flat JSONL: one `{"registry": ...}` line
/// (when non-empty) followed by one [`SpanRecord::to_json`] line per
/// span, in recording order.
pub fn jsonl(obs: &Obs) -> String {
    let mut out = String::new();
    let registry = obs.registry();
    if !registry.is_empty() {
        out.push_str(
            &JsonValue::Object(vec![("registry".into(), registry.to_json())]).to_json_string(),
        );
        out.push('\n');
    }
    for span in obs.spans() {
        out.push_str(&span.to_json().to_json_string());
        out.push('\n');
    }
    out
}

/// Spans and registry recovered from an exported trace file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedTrace {
    /// Spans in file order.
    pub spans: Vec<SpanRecord>,
    /// The embedded registry snapshot (empty if the file carried none).
    pub registry: Registry,
}

/// Parses either exporter's output back, auto-detecting the format:
/// a Chrome trace is one JSON object with a `traceEvents` array;
/// anything else is treated as JSONL.
///
/// # Errors
///
/// Returns a description of the first malformed line or event.
pub fn parse_trace(text: &str) -> Result<ParsedTrace, String> {
    let trimmed = text.trim_start();
    if trimmed.starts_with('{') {
        if let Ok(root) = JsonValue::parse(text) {
            if let Some(events) = root.get("traceEvents") {
                return parse_chrome_events(events);
            }
        }
    }
    parse_jsonl(text)
}

fn parse_chrome_events(events: &JsonValue) -> Result<ParsedTrace, String> {
    let events = events.as_array().ok_or("`traceEvents` must be an array")?;
    let mut parsed = ParsedTrace::default();
    for event in events {
        let ph = event
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or("trace event missing `ph`")?;
        match ph {
            "X" => {
                let name = event
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or("span event missing `name`")?
                    .to_string();
                let args = event
                    .get("args")
                    .and_then(JsonValue::as_object)
                    .ok_or("span event missing `args`")?;
                let mut span = SpanRecord {
                    name,
                    ..SpanRecord::default()
                };
                for (key, value) in args {
                    let value = value
                        .as_u64()
                        .ok_or(format!("span arg `{key}` not a u64"))?;
                    match key.as_str() {
                        "logical" => span.logical = value,
                        "wall_nanos" => span.wall_nanos = value,
                        _ => span.args.push((key.clone(), value)),
                    }
                }
                parsed.spans.push(span);
            }
            "M" if event.get("name").and_then(JsonValue::as_str) == Some("obs.registry") => {
                let snapshot = event
                    .get("args")
                    .and_then(|a| a.get("registry"))
                    .ok_or("obs.registry event missing `args.registry`")?;
                parsed.registry = Registry::from_json(snapshot)?;
            }
            // Counter events duplicate the registry snapshot; skip.
            _ => {}
        }
    }
    Ok(parsed)
}

fn parse_jsonl(text: &str) -> Result<ParsedTrace, String> {
    let mut parsed = ParsedTrace::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = JsonValue::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if let Some(snapshot) = value.get("registry") {
            parsed.registry = Registry::from_json(snapshot)?;
        } else {
            parsed.spans.push(
                SpanRecord::from_json(&value).map_err(|e| format!("line {}: {e}", lineno + 1))?,
            );
        }
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub_timing;

    fn sample_obs() -> Obs {
        let mut obs = Obs::enabled();
        obs.record_span(SpanRecord {
            name: "fill".into(),
            args: vec![("n".into(), 4)],
            logical: 10,
            wall_nanos: 2_500,
        });
        obs.record_span(SpanRecord {
            name: "resolve_level".into(),
            args: vec![("level".into(), 1)],
            logical: 6,
            wall_nanos: 1_200,
        });
        obs.add("eig.votes_evaluated", 16);
        obs.gauge_max("queue_depth", 3);
        obs.observe("chunk.sizes", &[8, 64], 6);
        obs
    }

    #[test]
    fn chrome_trace_has_required_fields_and_layout() {
        let obs = sample_obs();
        let text = chrome_trace_json(&obs, TimeMode::Logical);
        let root = JsonValue::parse(&text).unwrap();
        let events = root.get("traceEvents").unwrap().as_array().unwrap();
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .collect();
        assert_eq!(spans.len(), 2);
        for event in &spans {
            for key in ["name", "ph", "pid", "tid", "ts", "dur", "args"] {
                assert!(event.get(key).is_some(), "span event missing `{key}`");
            }
        }
        // Logical mode: sequential layout in logical units.
        assert_eq!(spans[0].get("ts").unwrap().as_u64(), Some(0));
        assert_eq!(spans[0].get("dur").unwrap().as_u64(), Some(10));
        assert_eq!(spans[1].get("ts").unwrap().as_u64(), Some(10));
        assert_eq!(spans[1].get("dur").unwrap().as_u64(), Some(6));
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(JsonValue::as_str) == Some("C")));
    }

    #[test]
    fn wall_mode_uses_wall_microseconds() {
        let obs = sample_obs();
        let root = JsonValue::parse(&chrome_trace_json(&obs, TimeMode::Wall)).unwrap();
        let events = root.get("traceEvents").unwrap().as_array().unwrap();
        let first = events
            .iter()
            .find(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .unwrap();
        assert_eq!(first.get("dur").unwrap().as_u64(), Some(2)); // 2_500ns -> 2µs
    }

    #[test]
    fn chrome_trace_round_trips() {
        let obs = sample_obs();
        let text = chrome_trace_json(&obs, TimeMode::Logical);
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(parsed.spans, obs.spans());
        assert_eq!(parsed.spans[0].wall_nanos, 2_500); // lossless, not just Eq
        assert_eq!(&parsed.registry, obs.registry());
    }

    #[test]
    fn jsonl_round_trips() {
        let obs = sample_obs();
        let text = jsonl(&obs);
        assert_eq!(text.lines().count(), 3); // registry + 2 spans
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(parsed.spans, obs.spans());
        assert_eq!(&parsed.registry, obs.registry());
    }

    fn sample_obs_with_wall(wall_nanos: u64) -> Obs {
        let mut obs = Obs::enabled();
        for mut span in sample_obs().spans().iter().cloned() {
            span.wall_nanos = wall_nanos;
            obs.record_span(span);
        }
        obs.add("eig.votes_evaluated", 16);
        obs.gauge_max("queue_depth", 3);
        obs.observe("chunk.sizes", &[8, 64], 6);
        obs
    }

    #[test]
    fn logical_export_is_identical_after_scrub() {
        // Different wall times, same logical work.
        let mut a = sample_obs_with_wall(1);
        let mut b = sample_obs_with_wall(999);
        scrub_timing(&mut a);
        scrub_timing(&mut b);
        assert_eq!(
            chrome_trace_json(&a, TimeMode::Logical),
            chrome_trace_json(&b, TimeMode::Logical)
        );
        assert_eq!(jsonl(&a), jsonl(&b));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse_trace("{\"traceEvents\":[{\"ts\":0}]}").is_err());
        assert!(parse_trace("{\"span\":42,\"logical\":1}").is_err());
        assert!(parse_trace("not json at all").is_err());
    }
}
