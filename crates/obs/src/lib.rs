//! Deterministic observability core for the degradable-agreement
//! workspace.
//!
//! `obs` sits at the bottom of the dependency graph (zero external
//! dependencies, std only) and gives every layer above it — simnet,
//! the EIG engine, the sweep harness, the CLI and the benches — one
//! shared vocabulary for instrumentation:
//!
//! * [`Registry`] — named counters, gauges and fixed-bucket
//!   histograms with sorted, bit-stable JSON snapshots.
//! * [`Obs`] / [`SpanRecord`] / [`span!`] — lightweight spans that
//!   record *both* wall nanoseconds and a deterministic **logical
//!   cost** (events delivered, votes evaluated, messages
//!   materialized). Equality compares only the logical dimension, so
//!   reports and golden traces stay bit-identical across machines and
//!   worker counts; wall time rides along for humans.
//! * [`export`] — a Chrome `trace_event` exporter (loadable in
//!   `chrome://tracing`/Perfetto) and a flat JSONL exporter, plus the
//!   parser the `cli obs` subcommand uses to read either back.
//! * [`scrub_timing`] — the one place the "wall time is not part of
//!   the result" rule lives; `EigPerf` and the harness report both
//!   route through it.
//!
//! The design generalizes the `EigPerf` convention that predates this
//! crate: carry the clock, never compare it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod json;
pub mod registry;
mod span;
pub mod tracectx;

pub use export::{chrome_trace_json, jsonl, parse_trace, ParsedTrace, TimeMode};
pub use json::JsonValue;
pub use registry::{Histogram, Registry};
pub use span::{Obs, SpanRecord, SpanTimer};
pub use tracectx::TraceCtx;

/// Types that carry wall-clock measurements alongside deterministic
/// counters, and can zero the former while keeping the latter.
///
/// Implementations should destructure `self` exhaustively so that a
/// newly added field is a compile error until it is classified as
/// logical (kept) or timing (scrubbed).
pub trait ScrubTiming {
    /// Zeroes every wall-time field, leaving logical counters intact.
    fn scrub_timing(&mut self);
}

/// Zeroes wall-time fields on any [`ScrubTiming`] value — the single
/// entry point used by `--no-timing` style flags across the workspace.
pub fn scrub_timing<T: ScrubTiming + ?Sized>(value: &mut T) {
    value.scrub_timing();
}
