//! Deterministic JSON values: emission *and* parsing.
//!
//! This is the workspace's single hand-rolled JSON model (the vendored
//! `serde` is a derive-only marker stub — see `vendor/README.md`). It
//! began life as `harness::report::JsonValue` and moved here so the
//! observability layer below the harness can emit trace files and the
//! CLI above it can read them back; `harness::report` re-exports it
//! unchanged. Object keys keep insertion order, which is what makes
//! byte-identical reports and traces possible for identical runs.
//!
//! The parser follows RFC 8259 for escapes: `\uXXXX` surrogate *pairs*
//! decode to their astral-plane scalar (`\uD83D\uDE00` → 😀), lone or
//! mispaired surrogates decode to U+FFFD, and integers that fit neither
//! `u64` (non-negative) nor `i64` (negative) fall back to `Float` rather
//! than erroring — matching how the emitter serializes out-of-range
//! numbers.

use std::fmt::Write as _;

/// A JSON value with deterministic (insertion-ordered) object keys.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (seeds and counters exceed `i64` range).
    UInt(u64),
    /// A finite float (non-finite values serialize as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}
impl<T: Into<JsonValue>> From<Vec<T>> for JsonValue {
    fn from(v: Vec<T>) -> Self {
        JsonValue::Array(v.into_iter().map(Into::into).collect())
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl JsonValue {
    /// Serializes to compact JSON text.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => escape_into(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, key);
                    out.push(':');
                    value.write_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text. Numbers without sign, fraction or exponent
    /// parse as [`JsonValue::UInt`]; other integers as
    /// [`JsonValue::Int`]; the rest as [`JsonValue::Float`] — matching
    /// what the emitter would have produced for each variant.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object (first match; `None` otherwise).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (UInt, or a non-negative Int / integral Float).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::UInt(u) => Some(u),
            JsonValue::Int(i) => u64::try_from(i).ok(),
            // `u64::MAX as f64` rounds *up* to 2^64, which is out of
            // range — the bound must be strict or the cast saturates.
            // Everything below 2^64 with zero fraction casts exactly.
            JsonValue::Float(f) if f >= 0.0 && f.fract() == 0.0 && f < u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            JsonValue::Int(i) => Some(i),
            JsonValue::UInt(u) => i64::try_from(u).ok(),
            // `i64::MAX as f64` rounds up to 2^63 (out of range), so the
            // upper bound is strict; `i64::MIN as f64` is exactly -2^63
            // and stays inclusive.
            JsonValue::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f < i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object fields.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| JsonValue::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = read_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        match hi {
                            // High surrogate: pairs with an immediately
                            // following `\uDC00..=\uDFFF` escape to form
                            // one astral-plane scalar; unpaired it reads
                            // as U+FFFD.
                            0xD800..=0xDBFF => {
                                let tail = *pos + 1;
                                let lo = if bytes.get(tail) == Some(&b'\\')
                                    && bytes.get(tail + 1) == Some(&b'u')
                                {
                                    read_hex4(bytes, tail + 2)
                                        .ok()
                                        .filter(|c| (0xDC00..=0xDFFF).contains(c))
                                } else {
                                    None
                                };
                                match lo {
                                    Some(lo) => {
                                        let code = 0x1_0000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                        out.push(
                                            char::from_u32(code).expect("surrogate pair is valid"),
                                        );
                                        *pos += 6;
                                    }
                                    None => out.push('\u{fffd}'),
                                }
                            }
                            // Lone low surrogate.
                            0xDC00..=0xDFFF => out.push('\u{fffd}'),
                            code => {
                                out.push(char::from_u32(code).expect("non-surrogate BMP scalar"));
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 scalar (input is a &str, so
                // boundaries are valid).
                let s = &bytes[*pos..];
                let ch_len = std::str::from_utf8(s)
                    .ok()
                    .and_then(|s| s.chars().next())
                    .map(char::len_utf8)
                    .ok_or("invalid utf-8 in string")?;
                out.push_str(std::str::from_utf8(&s[..ch_len]).expect("checked above"));
                *pos += ch_len;
            }
        }
    }
}

/// Four hex digits starting at byte `at` (the body of a `\uXXXX` escape).
fn read_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes
        .get(at..at + 4)
        .and_then(|h| std::str::from_utf8(h).ok())
        .ok_or("truncated \\u escape")?;
    u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii digits");
    if text.is_empty() || text == "-" {
        return Err(format!("expected a value at byte {start}"));
    }
    if !text.contains(['.', 'e', 'E']) {
        if text.starts_with('-') {
            // Negative integers below `i64::MIN` fall through to Float,
            // exactly like positives above `u64::MAX` do.
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
        } else if let Ok(u) = text.parse::<u64>() {
            return Ok(JsonValue::UInt(u));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Float)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_and_shapes() {
        let v = JsonValue::Object(vec![
            ("s".into(), "a\"b\\c\nd\u{1}".into()),
            ("i".into(), JsonValue::Int(-3)),
            ("u".into(), JsonValue::UInt(u64::MAX)),
            ("f".into(), JsonValue::Float(0.25)),
            ("nan".into(), JsonValue::Float(f64::NAN)),
            ("b".into(), true.into()),
            ("n".into(), JsonValue::Null),
            ("a".into(), vec![1u64, 2].into()),
        ]);
        assert_eq!(
            v.to_json_string(),
            "{\"s\":\"a\\\"b\\\\c\\nd\\u0001\",\"i\":-3,\"u\":18446744073709551615,\
             \"f\":0.25,\"nan\":null,\"b\":true,\"n\":null,\"a\":[1,2]}"
        );
    }

    #[test]
    fn parse_round_trips_emitted_text() {
        let v = JsonValue::Object(vec![
            ("s".into(), "a\"b\\c\nd\u{1}".into()),
            ("i".into(), JsonValue::Int(-3)),
            ("u".into(), JsonValue::UInt(u64::MAX)),
            ("f".into(), JsonValue::Float(0.25)),
            ("b".into(), true.into()),
            ("n".into(), JsonValue::Null),
            ("a".into(), vec![1u64, 2].into()),
            ("o".into(), JsonValue::Object(vec![])),
        ]);
        let text = v.to_json_string();
        let parsed = JsonValue::parse(&text).unwrap();
        assert_eq!(parsed, v);
        // And re-emission is byte-stable.
        assert_eq!(parsed.to_json_string(), text);
    }

    #[test]
    fn parse_accepts_whitespace_and_unicode() {
        let v = JsonValue::parse(" { \"k\" : [ 1 , -2.5 , \"\\u00e9é\" ] } ").unwrap();
        let arr = v.get("k").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1], JsonValue::Float(-2.5));
        assert_eq!(arr[2].as_str(), Some("éé"));
    }

    #[test]
    fn surrogate_pairs_decode_to_astral_scalars() {
        assert_eq!(
            JsonValue::parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("😀")
        );
        // Mixed-case hex, with surrounding text.
        assert_eq!(
            JsonValue::parse("\"a\\uD83D\\uDE80b\"").unwrap().as_str(),
            Some("a🚀b")
        );
        // Raw astral-plane text round-trips through emit + parse.
        let v = JsonValue::Str("x😀𝕊🚀".into());
        let text = v.to_json_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
        assert_eq!(JsonValue::parse(&text).unwrap().to_json_string(), text);
    }

    #[test]
    fn lone_surrogates_become_replacement_chars() {
        for (text, expect) in [
            ("\"\\ud83d\"", "\u{fffd}"),                 // lone high at end
            ("\"\\ud83dx\"", "\u{fffd}x"),               // high + literal
            ("\"\\ud83d\\n\"", "\u{fffd}\n"),            // high + non-\u escape
            ("\"\\ude00\"", "\u{fffd}"),                 // lone low
            ("\"\\ud83d\\ud83d\\ude00\"", "\u{fffd}😀"), // high, then a pair
        ] {
            assert_eq!(
                JsonValue::parse(text).unwrap().as_str(),
                Some(expect),
                "{text}"
            );
        }
    }

    #[test]
    fn integer_overflow_falls_through_to_float() {
        assert_eq!(
            JsonValue::parse("-9223372036854775808").unwrap(),
            JsonValue::Int(i64::MIN)
        );
        // One below i64::MIN: must parse as Float, not error out.
        let below_min = JsonValue::parse("-9223372036854775809").unwrap();
        assert!(
            matches!(below_min, JsonValue::Float(f) if f == i64::MIN as f64),
            "{below_min:?}"
        );
        assert_eq!(
            JsonValue::parse("18446744073709551615").unwrap(),
            JsonValue::UInt(u64::MAX)
        );
        let above_max = JsonValue::parse("18446744073709551616").unwrap();
        assert!(
            matches!(above_max, JsonValue::Float(f) if f == u64::MAX as f64),
            "{above_max:?}"
        );
    }

    #[test]
    fn float_accessors_reject_out_of_range_boundaries() {
        // 2^64 and 2^63 are exactly representable floats but sit one past
        // the integer ranges; a saturating cast would silently clamp them.
        assert_eq!(JsonValue::Float(u64::MAX as f64).as_u64(), None);
        assert_eq!(
            JsonValue::Float(18446744073709549568.0).as_u64(), // 2^64 - 2048
            Some(18446744073709549568)
        );
        assert_eq!(JsonValue::Float(i64::MAX as f64).as_i64(), None);
        assert_eq!(JsonValue::Float(i64::MIN as f64).as_i64(), Some(i64::MIN));
        assert_eq!(
            JsonValue::Float(9223372036854774784.0).as_i64(), // 2^63 - 1024
            Some(9223372036854774784)
        );
        assert_eq!(JsonValue::Float(f64::NAN).as_u64(), None);
        assert_eq!(JsonValue::Float(f64::INFINITY).as_i64(), None);
        assert_eq!(JsonValue::Float(0.5).as_u64(), None);
        assert_eq!(JsonValue::Float(-1.0).as_u64(), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1x",
            "\"unterminated",
            "{}extra",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors() {
        let v = JsonValue::parse("{\"a\":7,\"b\":-7,\"c\":\"x\"}").unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("b").unwrap().as_i64(), Some(-7));
        assert_eq!(v.get("b").unwrap().as_u64(), None);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        assert!(v.get("d").is_none());
        assert!(v.as_object().is_some());
        assert!(JsonValue::Null.get("a").is_none());
    }
}
