//! Property-based invariants of the arena-backed EIG engine
//! ([`degradable::engine`]): path interning is a bijection, the arena
//! size matches the closed-form path census, and the memoized resolve is
//! insensitive to the order in which relay envelopes filled the store.

use degradable::engine::{EigEngine, EigStore, PathId};
use degradable::{path_count, paths_of_length, Path, Val, VoteRule};
use proptest::prelude::*;
use simnet::{NodeId, SimRng};

/// Fisher–Yates driven by the deterministic simulation RNG.
fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut rng = SimRng::seed(seed);
    for i in (1..items.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `intern` and `resolve_path` are mutually inverse over the full
    /// label space, and the arena enumerates exactly the lexicographic
    /// path order of `paths_of_length`.
    #[test]
    fn intern_resolve_roundtrip(n in 1usize..11, sender_raw in 0usize..10, depth in 1usize..5) {
        let sender = NodeId::new(sender_raw % n);
        let engine = EigEngine::new(n, sender, depth);
        let arena = engine.arena();

        // id -> path -> id round-trips for every arena node.
        for id in arena.ids() {
            let path = arena.resolve_path(id);
            prop_assert_eq!(arena.intern(&path), Some(id));
        }

        // path -> id -> path round-trips for every enumerable label, and
        // enumeration order matches the arena's level-ordered ids.
        let mut expect = 0usize;
        for len in 1..=depth.min(n) {
            for path in paths_of_length(sender, n, len) {
                let id = arena.intern(&path);
                prop_assert_eq!(id.map(PathId::index), Some(expect));
                prop_assert_eq!(&arena.resolve_path(id.unwrap()), &path);
                expect += 1;
            }
        }
        prop_assert_eq!(expect, arena.node_count());

        // Labels outside the space are rejected, not aliased.
        if n > 1 {
            let other = NodeId::new((sender.index() + 1) % n);
            prop_assert_eq!(arena.intern(&Path::root(other)), None);
        }
    }

    /// The arena holds exactly `Σ_{ℓ=1}^{depth} ∏_{i=0}^{ℓ-2} (n-1-i)`
    /// nodes — the EIG path census for a depth-round unfolding.
    #[test]
    fn node_count_matches_closed_form(n in 1usize..13, sender_raw in 0usize..12, depth in 1usize..5) {
        let sender = NodeId::new(sender_raw % n);
        let arena_nodes = EigEngine::new(n, sender, depth).arena().node_count() as u128;

        let mut expected: u128 = 0;
        for len in 1..=depth {
            // ∏_{i=0}^{len-2} (n-1-i): one sender root fanning out through
            // distinct relayers; zero once relayers are exhausted.
            let mut product: u128 = 1;
            for i in 0..len - 1 {
                product *= (n - 1).saturating_sub(i) as u128;
            }
            expected += product;
            // ... and path_count agrees with the direct product.
            prop_assert_eq!(path_count(n, len), product);
        }
        prop_assert_eq!(arena_nodes, expected);
    }

    /// Resolve is a pure function of the store *contents*: recording the
    /// same envelopes in any order — with same-value duplicates sprinkled
    /// in — yields bit-identical decisions AND bit-identical deterministic
    /// perf counters (the memoization collapse never depends on arrival
    /// order).
    #[test]
    fn resolve_is_fill_order_independent(
        n in 2usize..8,
        depth in 2usize..4,
        value_seed in 0u64..u64::MAX,
        order_seed in 0u64..u64::MAX,
    ) {
        let sender = NodeId::new(0);
        // VOTE(n - path_len - m, ..) needs n > path_len + m at every
        // internal level (path_len <= depth - 1, m = depth - 1), so clamp
        // the depth to the feasible BYZ range for this n.
        let depth = depth.min(n.div_ceil(2)).max(1);
        let engine = EigEngine::new(n, sender, depth);
        let arena = engine.arena();
        let rule = VoteRule::Degradable { m: depth - 1 };

        // Draw one value per (path, receiver) slot in canonical order, so
        // both fills record identical contents.
        let mut rng = SimRng::seed(value_seed);
        let mut envelopes: Vec<(PathId, NodeId, Val)> = Vec::new();
        for id in arena.ids() {
            for r in NodeId::all(n) {
                if arena.on_path(id, r) {
                    continue;
                }
                let value = match rng.below(4) {
                    0 => Val::Default,
                    v => Val::Value(v),
                };
                envelopes.push((id, r, value));
            }
        }

        let canonical = {
            let mut store = EigStore::new(arena);
            for (id, r, v) in &envelopes {
                prop_assert!(store.record(arena, *id, *r, *v));
            }
            engine.resolve(rule, &store)
        };

        let shuffled = {
            let mut order = envelopes.clone();
            shuffle(&mut order, order_seed);
            let mut store = EigStore::new(arena);
            let mut dup = SimRng::seed(order_seed ^ 0xD0B);
            for (id, r, v) in &order {
                prop_assert!(store.record(arena, *id, *r, *v));
                // A same-value duplicate relay must be a no-op.
                if dup.chance(0.25) {
                    prop_assert!(!store.record(arena, *id, *r, *v));
                }
            }
            engine.resolve(rule, &store)
        };

        prop_assert_eq!(&canonical.decisions, &shuffled.decisions);
        prop_assert_eq!(
            canonical.perf.deterministic_counters(),
            shuffled.perf.deterministic_counters()
        );
    }

    /// The bitpacked VOTE evaluator is a drop-in for the scalar
    /// resolver: the same store yields bit-identical decisions AND
    /// bit-identical deterministic counters. The draw space crosses the
    /// packed word boundary (n − 1 receiver codes span one u64 lane at
    /// n = 9) and flavors force the interesting columns — all-absent
    /// words (code 0 throughout), uniform n−1 columns sitting exactly
    /// on the vote threshold, and a high-cardinality palette that
    /// overflows u8 interning and must fall back to the scalar oracle.
    #[test]
    fn packed_vote_matches_scalar_resolve(
        n in 2usize..18,
        depth in 2usize..4,
        value_seed in 0u64..u64::MAX,
        flavor in 0usize..3,
    ) {
        let sender = NodeId::new(0);
        // Clamp to the feasible BYZ range (n > path_len + m throughout).
        let depth = depth.min(n.div_ceil(2)).max(1);
        let engine = EigEngine::new(n, sender, depth);
        let packed_engine = engine.clone().with_packed_vote();
        let arena = engine.arena();
        let rule = VoteRule::Degradable { m: depth - 1 };

        let mut rng = SimRng::seed(value_seed);
        let mut store = EigStore::new(arena);
        for id in arena.ids() {
            // Per-node column shape: 0 = mixed small palette (near-tie
            // votes), 1 = degenerate columns (all-absent or uniform),
            // 2 = high-cardinality values (palette overflow on larger
            // stores).
            let degenerate = if flavor == 1 {
                match rng.below(3) {
                    0 => Some(Val::Default),
                    1 => Some(Val::Value(rng.below(4) + 1)),
                    _ => None,
                }
            } else {
                None
            };
            for r in NodeId::all(n) {
                if arena.on_path(id, r) {
                    continue;
                }
                let value = match (&degenerate, flavor) {
                    (Some(v), _) => *v,
                    (None, 2) => Val::Value(rng.below(1 << 32)),
                    _ => match rng.below(4) {
                        0 => Val::Default,
                        v => Val::Value(v),
                    },
                };
                prop_assert!(store.record(arena, id, r, value));
            }
        }

        let scalar = engine.resolve(rule, &store);
        let packed = packed_engine.resolve(rule, &store);
        prop_assert_eq!(&scalar.decisions, &packed.decisions);
        prop_assert_eq!(
            scalar.perf.deterministic_counters(),
            packed.perf.deterministic_counters()
        );
    }
}
