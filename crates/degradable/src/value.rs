//! Agreement values and the distinguished default value `V_d`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A value circulating in an agreement protocol: either a proper value of
/// type `V` or the **default value `V_d`**, which the paper requires to be
/// *distinguishable from all other values*.
///
/// Encoding the default as a dedicated enum variant (rather than a reserved
/// bit pattern of `V`) makes that distinguishability a type-level
/// guarantee: no proper value can collide with `V_d`.
///
/// ```
/// use degradable::AgreementValue;
/// let v: AgreementValue<u64> = AgreementValue::Value(7);
/// assert!(!v.is_default());
/// assert!(AgreementValue::<u64>::Default.is_default());
/// assert_ne!(v, AgreementValue::Default);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AgreementValue<V> {
    /// The default value `V_d`.
    Default,
    /// A proper (non-default) value.
    Value(V),
}

/// The value type used throughout the experiments: 64-bit payloads.
pub type Val = AgreementValue<u64>;

impl<V> AgreementValue<V> {
    /// Whether this is the default value `V_d`.
    pub fn is_default(&self) -> bool {
        matches!(self, AgreementValue::Default)
    }

    /// The proper value, if any.
    pub fn value(&self) -> Option<&V> {
        match self {
            AgreementValue::Default => None,
            AgreementValue::Value(v) => Some(v),
        }
    }

    /// Consumes `self`, returning the proper value if any.
    pub fn into_value(self) -> Option<V> {
        match self {
            AgreementValue::Default => None,
            AgreementValue::Value(v) => Some(v),
        }
    }

    /// Maps the proper value, preserving `Default`.
    pub fn map<W>(self, f: impl FnOnce(V) -> W) -> AgreementValue<W> {
        match self {
            AgreementValue::Default => AgreementValue::Default,
            AgreementValue::Value(v) => AgreementValue::Value(f(v)),
        }
    }

    /// Borrowing variant of [`AgreementValue::map`].
    pub fn as_ref(&self) -> AgreementValue<&V> {
        match self {
            AgreementValue::Default => AgreementValue::Default,
            AgreementValue::Value(v) => AgreementValue::Value(v),
        }
    }
}

impl<V> Default for AgreementValue<V> {
    /// The `Default` trait instance is, fittingly, `V_d`.
    fn default() -> Self {
        AgreementValue::Default
    }
}

impl<V> From<V> for AgreementValue<V> {
    fn from(v: V) -> Self {
        AgreementValue::Value(v)
    }
}

impl<V: fmt::Display> fmt::Display for AgreementValue<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgreementValue::Default => write!(f, "V_d"),
            AgreementValue::Value(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_distinguishable() {
        assert_ne!(Val::Default, Val::Value(0));
        assert_ne!(Val::Default, Val::Value(u64::MAX));
        assert_eq!(Val::Default, Val::Default);
    }

    #[test]
    fn accessors() {
        let v = Val::Value(3);
        assert_eq!(v.value(), Some(&3));
        assert_eq!(v.into_value(), Some(3));
        assert_eq!(Val::Default.value(), None);
        assert!(Val::default().is_default());
    }

    #[test]
    fn map_preserves_default() {
        assert_eq!(Val::Default.map(|x| x + 1), Val::Default);
        assert_eq!(Val::Value(1).map(|x| x + 1), Val::Value(2));
    }

    #[test]
    fn display_marks_default() {
        assert_eq!(Val::Default.to_string(), "V_d");
        assert_eq!(Val::Value(9).to_string(), "9");
    }

    #[test]
    fn from_value() {
        let v: Val = 5u64.into();
        assert_eq!(v, Val::Value(5));
    }

    #[test]
    fn ordering_puts_default_first() {
        // Not semantically required, but relied upon for deterministic
        // BTreeMap iteration in vote counting.
        assert!(Val::Default < Val::Value(0));
    }
}
