//! Algorithm BYZ over sparse topologies (Theorem 3).
//!
//! BYZ assumes full connectivity; on a sparse network every point-to-point
//! message instead travels over `m+u+1` vertex-disjoint paths
//! ([`simnet::RelayNetwork`]) and is accepted under the degradable delivery
//! rule. The composite guarantees (module docs of [`simnet::routing`]):
//!
//! * `f <= m` — all messages between fault-free nodes delivered intact:
//!   BYZ behaves exactly as on the complete graph, so D.1/D.2 hold;
//! * `m < f <= u` — messages between fault-free nodes are delivered intact
//!   **or absent** (`V_d`), never altered: exactly the relaxed assumptions
//!   of Section 6.1 under which D.3/D.4 still hold.
//!
//! Below the Theorem 3 bound (connectivity `<= m+u`) the adversary can
//! place its faults on a vertex cut and fully control the traffic between
//! the two sides; [`run_sparse`] with `allow_below_bound` exposes that
//! failure mode for the connectivity experiments.

use crate::adversary::Strategy;
use crate::byz::ByzInstance;
use crate::conditions::RunRecord;
use crate::path::{paths_of_length, Path};
use crate::value::AgreementValue;
use simnet::routing::Delivery;
use simnet::routing::{CopyAction, RelayError, RelayHop, RelayNetwork};
use simnet::{NodeId, SimRng, Topology};
use std::collections::{BTreeMap, BTreeSet};
use std::hash::Hash;

/// How faulty *intermediate* nodes treat protocol traffic relayed through
/// them (their behaviour as protocol *participants* is still governed by
/// their [`Strategy`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelayCorruption<V> {
    /// Forward everything unchanged (faults attack only as participants).
    Forward,
    /// Drop every copy passing through.
    DropAll,
    /// Replace every copy with a fixed value.
    ReplaceWith(AgreementValue<V>),
}

impl<V: Clone> RelayCorruption<V> {
    fn action(&self, _hop: RelayHop) -> CopyAction<AgreementValue<V>> {
        match self {
            RelayCorruption::Forward => CopyAction::Forward,
            RelayCorruption::DropAll => CopyAction::Drop,
            RelayCorruption::ReplaceWith(v) => CopyAction::Replace(v.clone()),
        }
    }
}

/// Link-level chaos applied to individual path copies in flight, on top of
/// whatever the faulty relays do. Models a lossy, duplicating, reordering
/// fabric whose garbling is *detectable* (the paper's oral-message axiom):
/// a corrupted copy is discarded by the receiver and reads as absent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelayChaos {
    /// Probability an in-flight copy is silently lost.
    pub drop_p: f64,
    /// Probability a copy is garbled; garbling is detectable, so the copy
    /// is discarded on arrival (absence, never a wrong value).
    pub corrupt_p: f64,
    /// Probability a copy arrives twice.
    pub duplicate_p: f64,
    /// Shuffle arrival order of the copies of each logical message.
    pub reorder: bool,
    /// Seed for the chaos stream (independent of protocol randomness).
    pub seed: u64,
}

impl RelayChaos {
    /// No chaos at all; [`run_sparse_chaotic`] degenerates to
    /// [`run_sparse`].
    pub fn none(seed: u64) -> Self {
        RelayChaos {
            drop_p: 0.0,
            corrupt_p: 0.0,
            duplicate_p: 0.0,
            reorder: false,
            seed,
        }
    }

    /// Duplication and reordering only — the perturbations the degradable
    /// acceptance rule must be *invariant* under.
    pub fn benign(duplicate_p: f64, seed: u64) -> Self {
        RelayChaos {
            drop_p: 0.0,
            corrupt_p: 0.0,
            duplicate_p,
            reorder: true,
            seed,
        }
    }

    /// Applies chaos to the copies of one logical message. Each surviving
    /// copy becomes an *envelope* tagged with its path index; duplicates
    /// append a second envelope, reordering shuffles the arrival sequence.
    /// Returns the envelopes plus the number of chaos events injected.
    fn perturb<V: Clone>(
        &self,
        copies: &[Option<V>],
        rng: &mut SimRng,
    ) -> (Vec<(usize, V)>, usize) {
        let mut envelopes: Vec<(usize, V)> = Vec::with_capacity(copies.len());
        let mut events = 0usize;
        for (path_index, copy) in copies.iter().enumerate() {
            let Some(v) = copy else { continue };
            if rng.chance(self.drop_p) {
                events += 1;
                continue;
            }
            if rng.chance(self.corrupt_p) {
                // Detectably garbled: the receiver discards it (absence).
                events += 1;
                continue;
            }
            envelopes.push((path_index, v.clone()));
            if rng.chance(self.duplicate_p) {
                events += 1;
                envelopes.push((path_index, v.clone()));
            }
        }
        if self.reorder {
            // Fisher–Yates over arrival order.
            for i in (1..envelopes.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                envelopes.swap(i, j);
            }
        }
        (envelopes, events)
    }
}

/// Folds chaos-perturbed envelopes back into per-path slots: the first
/// envelope seen for each path index wins, later duplicates are discarded.
/// This is the receiver-side idempotent fold that makes acceptance
/// invariant under duplication and arrival order.
fn dedup_envelopes<V: Clone>(path_count: usize, envelopes: &[(usize, V)]) -> Vec<Option<V>> {
    let mut slots: Vec<Option<V>> = vec![None; path_count];
    for (path_index, v) in envelopes {
        if slots[*path_index].is_none() {
            slots[*path_index] = Some(v.clone());
        }
    }
    slots
}

/// Result of a sparse-network execution.
#[derive(Debug, Clone)]
pub struct SparseRun<V: Ord> {
    /// Every receiver's decision.
    pub decisions: BTreeMap<NodeId, AgreementValue<V>>,
    /// Count of point-to-point transmissions whose delivery degraded to
    /// absent at the relay layer (between *fault-free* endpoint pairs).
    pub degraded_deliveries: usize,
    /// Count of chaos events (drops, detectable corruptions, duplicates)
    /// injected by a [`RelayChaos`] plan; zero for [`run_sparse`].
    pub chaos_events: usize,
    /// Arena-engine counters for the final fold (see
    /// [`simnet::EigPerf`]); wall-time fields do not participate in
    /// equality.
    pub eig: simnet::EigPerf,
}

impl<V: Clone + Ord> SparseRun<V> {
    /// Packages the run for condition checking.
    pub fn record(
        &self,
        instance: &ByzInstance,
        sender_value: AgreementValue<V>,
        faulty: BTreeSet<NodeId>,
    ) -> RunRecord<V> {
        RunRecord {
            params: instance.params(),
            n: instance.n(),
            sender: instance.sender(),
            sender_value,
            faulty,
            decisions: self.decisions.clone(),
        }
    }
}

/// Runs BYZ over `topo`, relaying every point-to-point message across
/// vertex-disjoint paths with degradable delivery.
///
/// With `allow_below_bound = false` the topology must provide `m+u+1`
/// disjoint paths between every pair (Theorem 3's sufficient condition);
/// otherwise an error is returned. With `allow_below_bound = true` the run
/// proceeds with however many paths exist — used to demonstrate failures
/// below the bound.
///
/// # Errors
///
/// [`RelayError::InsufficientConnectivity`] when the bound is enforced and
/// violated.
pub fn run_sparse<V: Clone + Ord + Hash + Send + Sync>(
    instance: &ByzInstance,
    topo: &Topology,
    sender_value: &AgreementValue<V>,
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    corruption: &RelayCorruption<V>,
    allow_below_bound: bool,
) -> Result<SparseRun<V>, RelayError> {
    run_sparse_inner(
        instance,
        topo,
        sender_value,
        strategies,
        corruption,
        allow_below_bound,
        None,
    )
}

/// [`run_sparse`] with a [`RelayChaos`] plan perturbing every in-flight
/// path copy. Corrupted copies read as absent (the oral-message axiom:
/// garbling is detectable), duplicated copies are discarded by the
/// receiver-side idempotent fold, and arrival order never matters — so
/// benign chaos leaves decisions bit-identical to the chaos-free run.
///
/// # Errors
///
/// [`RelayError::InsufficientConnectivity`] when the bound is enforced and
/// violated.
pub fn run_sparse_chaotic<V: Clone + Ord + Hash + Send + Sync>(
    instance: &ByzInstance,
    topo: &Topology,
    sender_value: &AgreementValue<V>,
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    corruption: &RelayCorruption<V>,
    allow_below_bound: bool,
    chaos: &RelayChaos,
) -> Result<SparseRun<V>, RelayError> {
    run_sparse_inner(
        instance,
        topo,
        sender_value,
        strategies,
        corruption,
        allow_below_bound,
        Some(chaos),
    )
}

fn run_sparse_inner<V: Clone + Ord + Hash + Send + Sync>(
    instance: &ByzInstance,
    topo: &Topology,
    sender_value: &AgreementValue<V>,
    strategies: &BTreeMap<NodeId, Strategy<V>>,
    corruption: &RelayCorruption<V>,
    allow_below_bound: bool,
    chaos: Option<&RelayChaos>,
) -> Result<SparseRun<V>, RelayError> {
    let params = instance.params();
    let relay = if allow_below_bound {
        RelayNetwork::new_unchecked(topo, params.m(), params.u())
    } else {
        RelayNetwork::new(topo, params.m(), params.u())?
    };
    let n = instance.n();
    let sender = instance.sender();
    let depth = instance.depth();
    let faulty: BTreeSet<NodeId> = strategies.keys().copied().collect();
    let mut degraded = 0usize;
    let mut chaos_events = 0usize;
    let mut chaos_rng = SimRng::seed(chaos.map_or(0, |c| c.seed));

    // transmit src -> dst through the relay fabric.
    let mut send = |src: NodeId,
                    dst: NodeId,
                    value: &AgreementValue<V>,
                    degraded: &mut usize|
     -> Option<AgreementValue<V>> {
        let mut adversary = |hop: RelayHop| corruption.action(hop);
        let d = match chaos {
            None => relay.transmit(src, dst, value, &faulty, &mut adversary),
            Some(c) => {
                let copies = relay.copies(src, dst, value, &faulty, &mut adversary);
                let (envelopes, events) = c.perturb(&copies, &mut chaos_rng);
                chaos_events += events;
                let slots = dedup_envelopes(copies.len(), &envelopes);
                relay.link().resolve(&slots)
            }
        };
        match d {
            Delivery::Accepted(v) => Some(v),
            Delivery::Absent => {
                if !faulty.contains(&src) && !faulty.contains(&dst) {
                    *degraded += 1;
                }
                None
            }
        }
    };

    // The shared arena slot table `store[σ][r]` (None = absent) replaces
    // the old `BTreeMap<Path, Vec<Option<_>>>`: the final fold is then a
    // single memoized resolution over all receivers at once.
    let eig_engine = instance.engine();
    let arena = eig_engine.arena();
    let mut store = crate::engine::EigStore::new(arena);

    // Level 1.
    let root = Path::root(sender);
    for r in NodeId::all(n) {
        if r == sender {
            continue;
        }
        let claimed: Option<AgreementValue<V>> = match strategies.get(&sender) {
            None => Some(sender_value.clone()),
            Some(Strategy::Silent) => None,
            Some(s) => Some(s.claim(&root, r, sender_value)),
        };
        if let Some(v) = claimed.and_then(|v| send(sender, r, &v, &mut degraded)) {
            store.record(arena, crate::engine::PathId::ROOT, r, v);
        }
    }

    // Levels 2..=depth.
    for level in 2..=depth {
        for sigma in paths_of_length(sender, n, level - 1) {
            let sigma_id = arena.intern(&sigma).expect("enumerated labels intern");
            for child in sigma.children(n) {
                let relayer = child.last();
                let child_id = arena.intern(&child).expect("enumerated labels intern");
                // What the relayer holds for sigma (absent reads as V_d).
                let held: AgreementValue<V> =
                    store.get(sigma_id, relayer).cloned().unwrap_or_default();
                for r in NodeId::all(n) {
                    if child.contains(r) {
                        continue;
                    }
                    let claimed: Option<AgreementValue<V>> = match strategies.get(&relayer) {
                        None => Some(held.clone()),
                        Some(Strategy::Silent) => None,
                        Some(s) => Some(s.claim(&child, r, &held)),
                    };
                    if let Some(v) = claimed.and_then(|v| send(relayer, r, &v, &mut degraded)) {
                        store.record(arena, child_id, r, v);
                    }
                }
            }
        }
    }

    // Fold: one arena resolution covering every receiver.
    let resolved = eig_engine.resolve(instance.rule(), &store);
    Ok(SparseRun {
        decisions: resolved.decisions,
        degraded_deliveries: degraded,
        chaos_events,
        eig: resolved.perf,
    })
}

/// The Theorem 3 proof topology: the sender (node 0) is connected *only*
/// to a cut `F = {1, …, cut_size}`, while all other nodes (and the cut)
/// form a complete subgraph. The graph's vertex connectivity is exactly
/// `cut_size` (removing `F` isolates the sender), so choosing
/// `cut_size = m+u` realizes the "connectivity `m+u`" premise of the
/// theorem's impossibility argument with a maximally connected remainder.
pub fn sender_cut_topology(n: usize, cut_size: usize) -> Topology {
    assert!(cut_size + 1 < n, "need at least one node beyond the cut");
    let mut g = simnet::Graph::empty(n);
    for a in 1..n {
        for b in (a + 1)..n {
            g.add_edge(NodeId::new(a), NodeId::new(b));
        }
    }
    for c in 1..=cut_size {
        g.add_edge(NodeId::new(0), NodeId::new(c));
    }
    Topology::from_graph(format!("sender-cut({cut_size},{n})"), g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conditions::check_degradable;
    use crate::params::Params;
    use crate::value::Val;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn instance(nodes: usize, m: usize, u: usize) -> ByzInstance {
        ByzInstance::new(nodes, Params::new(m, u).unwrap(), n(0)).unwrap()
    }

    #[test]
    fn complete_topology_matches_reference() {
        let inst = instance(5, 1, 2);
        let strategies: BTreeMap<_, _> = [(n(3), Strategy::ConstantLie(Val::Value(9)))]
            .into_iter()
            .collect();
        let sparse = run_sparse(
            &inst,
            &Topology::complete(5),
            &Val::Value(7),
            &strategies,
            &RelayCorruption::Forward,
            false,
        )
        .unwrap();
        let sc = crate::adversary::AdversaryRun {
            instance: inst,
            sender_value: Val::Value(7),
            strategies,
        };
        assert_eq!(sparse.decisions, sc.run().decisions);
        assert_eq!(sparse.degraded_deliveries, 0);
    }

    #[test]
    fn harary_at_connectivity_bound_satisfies_conditions() {
        // 1/2-degradable on 8 nodes over H(4,8): connectivity exactly
        // m+u+1 = 4. Two faults, corrupting both as participants and as
        // relays.
        let inst = instance(8, 1, 2);
        let topo = Topology::harary(4, 8);
        let strategies: BTreeMap<_, _> = [
            (n(3), Strategy::ConstantLie(Val::Value(9))),
            (n(5), Strategy::ConstantLie(Val::Value(9))),
        ]
        .into_iter()
        .collect();
        let run = run_sparse(
            &inst,
            &topo,
            &Val::Value(7),
            &strategies,
            &RelayCorruption::ReplaceWith(Val::Value(9)),
            false,
        )
        .unwrap();
        let rec = run.record(&inst, Val::Value(7), [n(3), n(5)].into_iter().collect());
        let verdict = check_degradable(&rec);
        assert!(verdict.is_satisfied(), "{verdict:?}");
    }

    #[test]
    fn single_fault_on_sparse_graph_gives_full_agreement() {
        // f = 1 <= m: despite relays through the faulty node, D.1 holds
        // with the *sender's exact value* (no degradation).
        let inst = instance(8, 1, 2);
        let topo = Topology::harary(4, 8);
        let strategies: BTreeMap<_, _> = [(n(4), Strategy::ConstantLie(Val::Value(9)))]
            .into_iter()
            .collect();
        let run = run_sparse(
            &inst,
            &topo,
            &Val::Value(7),
            &strategies,
            &RelayCorruption::ReplaceWith(Val::Value(9)),
            false,
        )
        .unwrap();
        for r in 1..8 {
            if r == 4 {
                continue;
            }
            assert_eq!(run.decisions[&n(r)], Val::Value(7), "receiver {r}");
        }
    }

    #[test]
    fn below_connectivity_bound_rejected_by_default() {
        let inst = instance(8, 1, 2);
        let topo = Topology::harary(3, 8); // connectivity 3 < 4
        let err = run_sparse(
            &inst,
            &topo,
            &Val::Value(7),
            &BTreeMap::new(),
            &RelayCorruption::Forward,
            false,
        )
        .unwrap_err();
        assert!(matches!(err, RelayError::InsufficientConnectivity { .. }));
    }

    #[test]
    fn cut_adversary_breaks_below_connectivity_bound() {
        // The Theorem 3 proof structure for (m,u) = (1,2): the sender's
        // only links go through a cut F of size m+u = 3; the subset
        // F_2 = {2,3} of size u is faulty, corrupting crossing copies to 9
        // and lying 9 as protocol participants. A sender message reaches
        // each receiver over 3 disjoint paths: one honest copy (7, via
        // node 1) and two corrupted (9) — with only k = m+u paths the
        // acceptance rule sees u = k-m copies of 9 and just m < m+1 honest
        // copies, so it accepts the *wrong* value. Every fault-free
        // receiver beyond the cut then decides 9 while the fault-free
        // sender sent 7: D.3 violated with f = u faults.
        let params = Params::new(1, 2).unwrap();
        let inst = ByzInstance::new(8, params, n(0)).unwrap();
        let topo = sender_cut_topology(8, 3);
        assert_eq!(simnet::vertex_connectivity(topo.graph()), 3);
        let f2 = [n(2), n(3)];
        let strategies: BTreeMap<_, _> = f2
            .iter()
            .map(|&c| (c, Strategy::ConstantLie(Val::Value(9))))
            .collect();
        let run = run_sparse(
            &inst,
            &topo,
            &Val::Value(7),
            &strategies,
            &RelayCorruption::ReplaceWith(Val::Value(9)),
            true,
        )
        .unwrap();
        let rec = run.record(&inst, Val::Value(7), f2.into_iter().collect());
        let verdict = check_degradable(&rec);
        assert!(
            verdict.is_violated(),
            "expected violation below connectivity bound: {verdict:?}"
        );
    }

    #[test]
    fn same_cut_attack_harmless_at_connectivity_bound() {
        // Control: widen the cut to m+u+1 = 4. The same adversary can no
        // longer force a wrong acceptance (2 corrupted copies of 4 never
        // reach the k-m = 3 threshold); deliveries degrade to absent at
        // worst and D.3 holds.
        let params = Params::new(1, 2).unwrap();
        let inst = ByzInstance::new(8, params, n(0)).unwrap();
        let topo = sender_cut_topology(8, 4);
        assert_eq!(simnet::vertex_connectivity(topo.graph()), 4);
        let f2 = [n(2), n(3)];
        let strategies: BTreeMap<_, _> = f2
            .iter()
            .map(|&c| (c, Strategy::ConstantLie(Val::Value(9))))
            .collect();
        let run = run_sparse(
            &inst,
            &topo,
            &Val::Value(7),
            &strategies,
            &RelayCorruption::ReplaceWith(Val::Value(9)),
            false,
        )
        .unwrap();
        let rec = run.record(&inst, Val::Value(7), f2.into_iter().collect());
        let verdict = check_degradable(&rec);
        assert!(verdict.is_satisfied(), "{verdict:?}");
    }

    #[test]
    fn degraded_deliveries_counted() {
        // With f = u = 2 > m = 1 faults acting as relay droppers on a
        // minimal-connectivity graph, some fault-free pair loses messages.
        let inst = instance(8, 1, 2);
        let topo = Topology::harary(4, 8);
        let strategies: BTreeMap<_, _> = [(n(2), Strategy::Truthful), (n(6), Strategy::Truthful)]
            .into_iter()
            .collect();
        let run = run_sparse(
            &inst,
            &topo,
            &Val::Value(7),
            &strategies,
            &RelayCorruption::DropAll,
            false,
        )
        .unwrap();
        assert!(run.degraded_deliveries > 0);
        // Conditions must still hold (degraded, not broken).
        let rec = run.record(&inst, Val::Value(7), [n(2), n(6)].into_iter().collect());
        assert!(check_degradable(&rec).is_satisfied());
    }

    #[test]
    fn zero_chaos_matches_run_sparse_exactly() {
        let inst = instance(8, 1, 2);
        let topo = Topology::harary(4, 8);
        let strategies: BTreeMap<_, _> = [(n(3), Strategy::ConstantLie(Val::Value(9)))]
            .into_iter()
            .collect();
        let baseline = run_sparse(
            &inst,
            &topo,
            &Val::Value(7),
            &strategies,
            &RelayCorruption::ReplaceWith(Val::Value(9)),
            false,
        )
        .unwrap();
        let chaotic = run_sparse_chaotic(
            &inst,
            &topo,
            &Val::Value(7),
            &strategies,
            &RelayCorruption::ReplaceWith(Val::Value(9)),
            false,
            &RelayChaos::none(3),
        )
        .unwrap();
        assert_eq!(chaotic.decisions, baseline.decisions);
        assert_eq!(chaotic.degraded_deliveries, baseline.degraded_deliveries);
        assert_eq!(chaotic.chaos_events, 0);
    }

    #[test]
    fn benign_chaos_is_decision_invariant() {
        // Duplication + reordering must be invisible: the receiver-side
        // fold discards late duplicates and ignores arrival order, so the
        // decisions match the chaos-free run bit-for-bit at every seed.
        let inst = instance(8, 1, 2);
        let topo = Topology::harary(4, 8);
        let strategies: BTreeMap<_, _> = [
            (n(3), Strategy::ConstantLie(Val::Value(9))),
            (n(5), Strategy::ConstantLie(Val::Value(9))),
        ]
        .into_iter()
        .collect();
        let baseline = run_sparse(
            &inst,
            &topo,
            &Val::Value(7),
            &strategies,
            &RelayCorruption::ReplaceWith(Val::Value(9)),
            false,
        )
        .unwrap();
        for seed in 0..5 {
            let chaotic = run_sparse_chaotic(
                &inst,
                &topo,
                &Val::Value(7),
                &strategies,
                &RelayCorruption::ReplaceWith(Val::Value(9)),
                false,
                &RelayChaos::benign(0.8, seed),
            )
            .unwrap();
            assert_eq!(chaotic.decisions, baseline.decisions, "seed {seed}");
            assert!(chaotic.chaos_events > 0, "seed {seed}");
        }
    }

    #[test]
    fn corrupting_chaos_never_yields_foreign_values() {
        // No faulty nodes, heavy link chaos. Corruption is detectable
        // (oral-message axiom), so the worst the fabric can do is absence:
        // every decision is the sender's value or V_d, never foreign.
        let inst = instance(8, 1, 2);
        let topo = Topology::harary(4, 8);
        let chaos = RelayChaos {
            drop_p: 0.25,
            corrupt_p: 0.25,
            duplicate_p: 0.25,
            reorder: true,
            seed: 11,
        };
        let run = run_sparse_chaotic(
            &inst,
            &topo,
            &Val::Value(7),
            &BTreeMap::new(),
            &RelayCorruption::Forward,
            false,
            &chaos,
        )
        .unwrap();
        assert!(run.chaos_events > 0);
        for (r, d) in &run.decisions {
            assert!(
                matches!(d, Val::Value(7) | Val::Default),
                "receiver {r:?} decided {d:?}"
            );
        }
    }

    #[test]
    fn chaotic_runs_are_deterministic_per_seed() {
        let inst = instance(8, 1, 2);
        let topo = Topology::harary(4, 8);
        let chaos = RelayChaos {
            drop_p: 0.2,
            corrupt_p: 0.1,
            duplicate_p: 0.3,
            reorder: true,
            seed: 42,
        };
        let run = |_: usize| {
            run_sparse_chaotic(
                &inst,
                &topo,
                &Val::Value(7),
                &BTreeMap::new(),
                &RelayCorruption::Forward,
                false,
                &chaos,
            )
            .unwrap()
        };
        let (a, b) = (run(0), run(1));
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.chaos_events, b.chaos_events);
        assert_eq!(a.degraded_deliveries, b.degraded_deliveries);
    }

    #[test]
    fn dedup_keeps_first_envelope_per_path() {
        let slots = dedup_envelopes(3, &[(1, 9u64), (0, 7), (1, 8)]);
        assert_eq!(slots, vec![Some(7), Some(9), None]);
    }
}
