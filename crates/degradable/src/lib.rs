//! # degradable — `m/u`-degradable Byzantine agreement
//!
//! A faithful implementation of **Nitin H. Vaidya, "Degradable Agreement in
//! the Presence of Byzantine Faults" (1993)**.
//!
//! A sender distributes a value to receivers despite arbitrary (Byzantine)
//! faults. Classic Byzantine agreement is impossible once a third of the
//! nodes are faulty; *degradable agreement* trades some of that strength
//! for graceful degradation. With parameters `m <= u`
//! ([`Params`]):
//!
//! * up to `m` faults — full Byzantine agreement (conditions D.1/D.2);
//! * up to `u` faults — fault-free receivers split into at most two
//!   classes, one of which holds the distinguished default value `V_d`
//!   (conditions D.3/D.4), and at least `m + 1` fault-free nodes still
//!   agree on one identical value.
//!
//! `2m + u + 1` nodes are necessary and sufficient (Theorems 1 & 2), and
//! network connectivity `m + u + 1` is necessary and sufficient
//! (Theorem 3).
//!
//! ## Quick start
//!
//! ```
//! use degradable::{AdversaryRun, ByzInstance, Params, Strategy, Val};
//! use simnet::NodeId;
//!
//! // 1/2-degradable agreement among 5 nodes: Byzantine agreement up to 1
//! // fault, degraded agreement up to 2.
//! let instance = ByzInstance::new(5, Params::new(1, 2)?, NodeId::new(0))?;
//!
//! // Two colluding liars (f = u = 2):
//! let scenario = AdversaryRun {
//!     instance,
//!     sender_value: Val::Value(42),
//!     strategies: [
//!         (NodeId::new(3), Strategy::ConstantLie(Val::Value(7))),
//!         (NodeId::new(4), Strategy::ConstantLie(Val::Value(7))),
//!     ]
//!     .into_iter()
//!     .collect(),
//! };
//!
//! // The degraded guarantee D.3 holds: every fault-free receiver decided
//! // either 42 or the default value.
//! assert!(scenario.verdict().is_satisfied());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Module map
//!
//! | module | contents |
//! |--------|----------|
//! | [`value`] | [`AgreementValue`] with the distinguished default `V_d` |
//! | [`mod@vote`] | the paper's `VOTE(α, β)` primitive, majority, `k`-of-`n` |
//! | [`params`] | [`Params`] = `(m, u)` plus the resource-bound formulas |
//! | [`path`] / [`eig`] | relay paths, per-receiver views, reference executor |
//! | [`engine`] | arena-backed iterative EIG engine (shared-prefix memoization) |
//! | [`byz`] | [`ByzInstance`] — algorithm BYZ itself |
//! | [`protocol`] | message-passing BYZ on the `simnet` round engine |
//! | [`service`] | batched agreement: many instances multiplexed over one run |
//! | [`churn`] | crash/rejoin across epochs of the batched service |
//! | [`spec`] | executable abstract spec of BYZ + conformance checker |
//! | [`adaptive`] | online adversaries that pick lies from observed traffic |
//! | [`sparse`] | BYZ over sparse topologies via disjoint-path relays |
//! | [`baselines`] / [`sm`] | OM(m), Crusader agreement, interactive consistency, naive broadcast, signed-messages SM(m) |
//! | [`ic`] | degradable interactive consistency (the Bhandari discussion) |
//! | [`conditions`] | checkers for D.1–D.4 and the `m+1` corollary |
//! | [`adversary`] | strategy battery, exhaustive & randomized adversary search |
//! | [`lower_bound`] | the executable Figure 2 impossibility argument |
//! | [`analysis`] | closed-form tables: node bounds, trade-offs, message complexity |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod adversary;
pub mod analysis;
pub mod baselines;
pub mod byz;
pub mod certify;
pub mod churn;
pub mod conditions;
pub mod eig;
pub mod engine;
pub mod explain;
pub mod ic;
pub mod lower_bound;
pub mod node;
mod packed;
pub mod params;
pub mod path;
pub mod protocol;
pub mod service;
pub mod sm;
pub mod sparse;
pub mod spec;
pub mod value;
pub mod vote;

pub use adaptive::{
    adversary_by_id, adversary_name, engine_corruptor, AdaptiveAdversary, MajorityHijacker,
    SplitBrain, TrafficWithholder, ADAPTIVE_KINDS,
};
pub use adversary::{AdversaryRun, ExhaustiveSearch, HillClimbSearch, RandomizedSearch, Strategy};
pub use byz::{ByzError, ByzInstance};
pub use certify::{certify, CertificationReport};
pub use churn::{run_churn, run_churn_with, ChurnRun, EpochOutcome, EpochPlan};
pub use conditions::{
    check_byzantine, check_degradable, check_weak_byzantine, largest_fault_free_class, Condition,
    RunRecord, Satisfaction, Verdict, Violation,
};
/// The recursive per-receiver evaluator, preserved verbatim as the
/// differential oracle for the arena engine (`tests/engine_equivalence.rs`).
pub use eig::run_eig_full as reference_eval;
pub use eig::{prunable_path, run_eig, run_eig_full, EigOutcome, EigView, FoldStep, VoteRule};
pub use engine::{EigEngine, EigStore, EngineError, EngineRun, PathArena, PathId};
pub use explain::explain_receiver;
pub use ic::{check_degradable_ic, run_degradable_ic, IcOutcome, IcViolation};
pub use node::{Action as NodeAction, Event as NodeEvent, NodeStateMachine};
pub use params::{Params, ParamsError};
pub use path::{path_count, paths_of_length, Path};
pub use protocol::{run_protocol, run_protocol_full, run_protocol_with, ByzMsg, ProtocolRun};
pub use service::{
    run_batch, run_batch_full, run_batch_observed, run_batch_observed_early_stop,
    run_batch_reference, run_batch_traced, run_batch_with, try_run_batch, BatchInstance, BatchMsg,
    BatchRun, BatchTraceEvent, ServiceBatch, ServiceConfig, ServiceError, ServiceState,
    ServiceStats,
};
pub use sm::{run_sm, run_sm_honest, SmAdversary, SmRelayAction};
pub use sparse::{
    run_sparse, run_sparse_chaotic, sender_cut_topology, RelayChaos, RelayCorruption, SparseRun,
};
pub use spec::{DeliveryClass, SpecChecker, SpecInstance, SpecViolation};
pub use value::{AgreementValue, Val};
pub use vote::{k_of_n, majority, vote};
