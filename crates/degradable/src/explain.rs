//! Human-readable narration of a BYZ execution.
//!
//! For small systems it is genuinely illuminating to watch the recursion
//! fold: which relay paths carried lies, where `VOTE` filtered them, and
//! why a receiver landed on the sender's value or on `V_d`. This module
//! renders that story from a [`AdversaryRun`]:
//!
//! ```
//! use degradable::{explain_receiver, ByzInstance, Params, AdversaryRun, Strategy, Val};
//! use simnet::NodeId;
//!
//! let scenario = AdversaryRun {
//!     instance: ByzInstance::new(5, Params::new(1, 2)?, NodeId::new(0))?,
//!     sender_value: Val::Value(42),
//!     strategies: [(NodeId::new(4), Strategy::ConstantLie(Val::Value(7)))]
//!         .into_iter()
//!         .collect(),
//! };
//! let text = explain_receiver(&scenario, NodeId::new(1));
//! assert!(text.contains("decides"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::adversary::AdversaryRun;
use crate::eig::FoldStep;
use crate::value::AgreementValue;
use simnet::NodeId;
use std::fmt::Write as _;
use std::hash::Hash;

/// Renders the complete fold of `receiver`'s view in `scenario`: every
/// recorded path value, every internal vote, and the final decision.
///
/// # Panics
///
/// Panics if `receiver` is the sender or out of range.
pub fn explain_receiver<V>(scenario: &AdversaryRun<V>, receiver: NodeId) -> String
where
    V: Clone + Ord + Hash + Send + Sync + std::fmt::Display,
{
    let instance = &scenario.instance;
    assert!(
        receiver != instance.sender() && receiver.index() < instance.n(),
        "receiver must be a non-sender node of the instance"
    );
    let (_, outcome) = scenario.run_full();
    let view = &outcome.views[&receiver];
    let faulty = scenario.faulty();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{instance}; sender value {}; faulty: {}",
        scenario.sender_value_display(),
        if faulty.is_empty() {
            "none".to_string()
        } else {
            faulty
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        }
    );
    let _ = writeln!(out, "view of receiver {receiver}:");
    for (path, value) in view.entries() {
        let liar = faulty.contains(&path.last());
        let _ = writeln!(
            out,
            "  {path} -> {value}{}",
            if liar {
                "   (relayed by a faulty node)"
            } else {
                ""
            }
        );
    }
    let (decision, steps) = view.resolve_traced(instance.sender(), instance.rule());
    let _ = writeln!(out, "folds (deepest first):");
    for FoldStep {
        path,
        gathered,
        result,
    } in &steps
    {
        let n_level = instance.n() - path.len();
        let m = instance.params().m();
        let gathered_s = gathered
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "  at {path}: VOTE({}, {}) of [{gathered_s}] = {result}",
            n_level - m,
            n_level
        );
    }
    let _ = writeln!(out, "receiver {receiver} decides {decision}");
    out
}

impl<V: std::fmt::Display> AdversaryRun<V> {
    fn sender_value_display(&self) -> String {
        match &self.sender_value {
            AgreementValue::Default => "V_d".to_string(),
            AgreementValue::Value(v) => v.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::Strategy;
    use crate::byz::ByzInstance;
    use crate::params::Params;
    use crate::value::Val;
    use std::collections::BTreeMap;

    fn scenario() -> AdversaryRun<u64> {
        AdversaryRun {
            instance: ByzInstance::new(5, Params::new(1, 2).unwrap(), NodeId::new(0)).unwrap(),
            sender_value: Val::Value(42),
            strategies: [
                (NodeId::new(3), Strategy::ConstantLie(Val::Value(7))),
                (NodeId::new(4), Strategy::ConstantLie(Val::Value(7))),
            ]
            .into_iter()
            .collect::<BTreeMap<_, _>>(),
        }
    }

    #[test]
    fn explanation_names_the_parts() {
        let text = explain_receiver(&scenario(), NodeId::new(1));
        assert!(text.contains("BYZ(1,1) on 5 nodes"));
        assert!(text.contains("faulty: n3, n4"));
        assert!(text.contains("view of receiver n1"));
        assert!(text.contains("VOTE(3, 4)"));
        assert!(text.contains("decides"));
    }

    #[test]
    fn explanation_marks_faulty_relays() {
        let text = explain_receiver(&scenario(), NodeId::new(1));
        assert!(text.contains("(relayed by a faulty node)"));
    }

    #[test]
    fn decision_in_explanation_matches_run() {
        let sc = scenario();
        let record = sc.run();
        let text = explain_receiver(&sc, NodeId::new(2));
        let expected = format!("receiver n2 decides {}", record.decisions[&NodeId::new(2)]);
        assert!(text.contains(&expected), "{text}");
    }

    #[test]
    #[should_panic(expected = "non-sender")]
    fn sender_cannot_be_explained() {
        explain_receiver(&scenario(), NodeId::new(0));
    }

    #[test]
    fn traced_resolution_matches_untraced() {
        let sc = scenario();
        let (_, outcome) = sc.run_full();
        for (r, view) in &outcome.views {
            let (traced, steps) = view.resolve_traced(NodeId::new(0), sc.instance.rule());
            assert_eq!(traced, view.resolve(NodeId::new(0), sc.instance.rule()));
            assert!(!steps.is_empty());
            // the last (outermost) step is the root fold
            assert_eq!(steps.last().unwrap().path.len(), 1);
            assert_eq!(&steps.last().unwrap().result, &outcome.decisions[r]);
        }
    }
}
