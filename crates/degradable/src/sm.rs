//! Lamport's **signed-messages** algorithm SM(m) — the authenticated
//! baseline.
//!
//! The paper's reference \[7\] (Lamport–Shostak–Pease) defines two
//! algorithms: OM(m) for oral messages (implemented in
//! [`crate::baselines`]) and SM(m) for signed messages. With unforgeable
//! signatures a faulty relayer cannot *alter* a value — only withhold it —
//! and a faulty sender is limited to signing several different values.
//! SM(m) then achieves Byzantine agreement with only `n >= m + 2` nodes
//! for **any** `m`, which contextualizes what degradable agreement buys:
//! graceful degradation beyond `N/3` *without* cryptography.
//!
//! ## Authentication model
//!
//! Signatures are simulated structurally: a message is `(value, chain)`
//! where `chain` is the list of distinct signers beginning with the
//! sender, and the executor only lets a node extend chains of messages it
//! actually received — faulty nodes get no constructor for forged chains,
//! which is precisely the unforgeability assumption. Their whole freedom
//! is captured by two callbacks:
//!
//! * a faulty **sender** chooses, per receiver, which value to sign for it
//!   (or to stay silent);
//! * a faulty **relayer** chooses, per (message, receiver), whether to
//!   withhold the relay.
//!
//! ## Decision rule
//!
//! After `m + 1` rounds each receiver holds the set `V_i` of validly
//! signed values; it decides the unique element of `V_i`, or `V_d` when
//! `V_i` is empty or has two or more elements (the paper's distinguished
//! default in the role of SM's `choice` fallback).

use crate::value::AgreementValue;
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// What a faulty relayer does with one (message, receiver) relay decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmRelayAction {
    /// Sign and forward (a faulty node may behave).
    Forward,
    /// Withhold the relay for this receiver.
    Withhold,
}

/// Adversary callbacks for SM. See module docs for the authentication
/// model that shapes this interface.
pub struct SmAdversary<'a, V> {
    /// For a faulty sender: the value signed for each receiver (`None`
    /// stays silent toward that receiver). Ignored when the sender is
    /// fault-free.
    pub sender_claims: &'a mut dyn FnMut(NodeId) -> Option<AgreementValue<V>>,
    /// For a faulty relayer: whether to withhold relaying the message with
    /// the given signature chain to the given receiver.
    pub relay_action: &'a mut dyn FnMut(NodeId, &[NodeId], NodeId) -> SmRelayAction,
}

/// Runs SM(m): `m + 1` signing rounds, then the `choice` fold.
///
/// Returns each receiver's decision. Requires `n >= m + 2` (any smaller
/// system has no two receivers to agree).
///
/// # Panics
///
/// Panics if `n < m + 2` or the sender id is out of range.
pub fn run_sm<V: Clone + Ord>(
    n: usize,
    m: usize,
    sender: NodeId,
    sender_value: &AgreementValue<V>,
    faulty: &BTreeSet<NodeId>,
    adversary: &mut SmAdversary<'_, V>,
) -> BTreeMap<NodeId, AgreementValue<V>> {
    assert!(n >= m + 2, "SM(m) needs at least m + 2 nodes");
    assert!(sender.index() < n, "sender out of range");

    // Per node, the set of values it accepted (with valid chains), plus
    // the frontier of messages to relay next round.
    let mut accepted: Vec<BTreeSet<AgreementValue<V>>> = vec![BTreeSet::new(); n];
    // frontier messages: (value, chain) delivered this round, per node.
    type Msg<V> = (AgreementValue<V>, Vec<NodeId>);
    let mut frontier: Vec<Vec<Msg<V>>> = vec![Vec::new(); n];

    // Round 1: the sender signs and sends.
    for r in NodeId::all(n) {
        if r == sender {
            continue;
        }
        let signed: Option<AgreementValue<V>> = if faulty.contains(&sender) {
            (adversary.sender_claims)(r)
        } else {
            Some(sender_value.clone())
        };
        if let Some(v) = signed {
            accepted[r.index()].insert(v.clone());
            frontier[r.index()].push((v, vec![sender]));
        }
    }

    // Rounds 2..=m+1: relay with appended signatures.
    for _round in 2..=(m + 1) {
        let mut next: Vec<Vec<Msg<V>>> = vec![Vec::new(); n];
        for relayer in NodeId::all(n) {
            let outgoing: Vec<Msg<V>> = frontier[relayer.index()].clone();
            for (value, chain) in outgoing {
                if chain.contains(&relayer) {
                    continue; // cannot double-sign
                }
                let mut new_chain = chain.clone();
                new_chain.push(relayer);
                for r in NodeId::all(n) {
                    if new_chain.contains(&r) {
                        continue;
                    }
                    let deliver = if faulty.contains(&relayer) {
                        (adversary.relay_action)(relayer, &new_chain, r) == SmRelayAction::Forward
                    } else {
                        true
                    };
                    if !deliver {
                        continue;
                    }
                    // Receiver validates the chain (structural validity is
                    // guaranteed by construction) and accepts new values.
                    if accepted[r.index()].insert(value.clone()) {
                        next[r.index()].push((value.clone(), new_chain.clone()));
                    }
                }
            }
        }
        frontier = next;
    }

    // choice(V_i): unique element, else V_d.
    NodeId::all(n)
        .filter(|r| *r != sender)
        .map(|r| {
            let set = &accepted[r.index()];
            let decision = if set.len() == 1 {
                set.iter().next().expect("len 1").clone()
            } else {
                AgreementValue::Default
            };
            (r, decision)
        })
        .collect()
}

/// Convenience: an honest adversary (used when `faulty` is empty or for
/// faulty nodes that happen to behave).
pub fn run_sm_honest<V: Clone + Ord>(
    n: usize,
    m: usize,
    sender: NodeId,
    sender_value: &AgreementValue<V>,
) -> BTreeMap<NodeId, AgreementValue<V>> {
    let sv = sender_value.clone();
    let mut sender_claims = move |_r: NodeId| Some(sv.clone());
    let mut relay_action = |_l: NodeId, _c: &[NodeId], _r: NodeId| SmRelayAction::Forward;
    run_sm(
        n,
        m,
        sender,
        sender_value,
        &BTreeSet::new(),
        &mut SmAdversary {
            sender_claims: &mut sender_claims,
            relay_action: &mut relay_action,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Val;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn consistent(decisions: &BTreeMap<NodeId, Val>, faulty: &BTreeSet<NodeId>) -> bool {
        let vals: BTreeSet<_> = decisions
            .iter()
            .filter(|(r, _)| !faulty.contains(r))
            .map(|(_, v)| *v)
            .collect();
        vals.len() <= 1
    }

    #[test]
    fn honest_run_delivers_value() {
        let d = run_sm_honest(4, 1, n(0), &Val::Value(7));
        assert!(d.values().all(|v| *v == Val::Value(7)));
    }

    #[test]
    fn two_faced_sender_on_three_nodes() {
        // SM(1) works with n = 3 — impossible for oral messages (OM needs
        // 4). The two-faced sender's second value reaches everyone via the
        // relay round, so all honest receivers see |V| = 2 and agree on
        // V_d.
        let faulty: BTreeSet<_> = [n(0)].into_iter().collect();
        let mut sender_claims = |r: NodeId| Some(Val::Value(if r.index() == 1 { 1 } else { 2 }));
        let mut relay_action = |_: NodeId, _: &[NodeId], _: NodeId| SmRelayAction::Forward;
        let d = run_sm(
            3,
            1,
            n(0),
            &Val::Value(0),
            &faulty,
            &mut SmAdversary {
                sender_claims: &mut sender_claims,
                relay_action: &mut relay_action,
            },
        );
        assert!(consistent(&d, &faulty), "{d:?}");
        assert_eq!(d[&n(1)], Val::Default);
        assert_eq!(d[&n(2)], Val::Default);
    }

    #[test]
    fn withholding_relayer_cannot_split() {
        // SM(2) on 4 nodes with faulty sender + faulty withholding
        // relayer (f = 2 = m): honest receivers still agree.
        let faulty: BTreeSet<_> = [n(0), n(1)].into_iter().collect();
        let mut sender_claims = |r: NodeId| {
            if r.index() == 1 {
                Some(Val::Value(5)) // secret value only to the accomplice
            } else {
                Some(Val::Value(7))
            }
        };
        // The accomplice relays the secret value only to node 2, hoping to
        // split 2 from 3.
        let mut relay_action = |relayer: NodeId, chain: &[NodeId], r: NodeId| {
            if relayer == n(1) && chain.first() == Some(&n(0)) && r == n(3) {
                SmRelayAction::Withhold
            } else {
                SmRelayAction::Forward
            }
        };
        let d = run_sm(
            4,
            2,
            n(0),
            &Val::Value(0),
            &faulty,
            &mut SmAdversary {
                sender_claims: &mut sender_claims,
                relay_action: &mut relay_action,
            },
        );
        // Node 2 receives {7, 5}; it relays 5 onward (honest), so node 3
        // also ends with {7, 5}: both decide V_d.
        assert!(consistent(&d, &faulty), "{d:?}");
    }

    #[test]
    fn silent_sender_yields_default_everywhere() {
        let faulty: BTreeSet<_> = [n(0)].into_iter().collect();
        let mut sender_claims = |_: NodeId| None;
        let mut relay_action = |_: NodeId, _: &[NodeId], _: NodeId| SmRelayAction::Forward;
        let d = run_sm(
            4,
            1,
            n(0),
            &Val::Value(0),
            &faulty,
            &mut SmAdversary {
                sender_claims: &mut sender_claims,
                relay_action: &mut relay_action,
            },
        );
        assert!(d.values().all(|v| v.is_default()));
    }

    #[test]
    fn fault_free_sender_with_withholding_relayers() {
        // IC2: f <= m faulty *relayers* cannot stop the fault-free
        // sender's value (it reaches everyone directly in round 1).
        let faulty: BTreeSet<_> = [n(2), n(3)].into_iter().collect();
        let mut sender_claims = |_: NodeId| None;
        let mut relay_action = |_: NodeId, _: &[NodeId], _: NodeId| SmRelayAction::Withhold;
        let d = run_sm(
            5,
            2,
            n(0),
            &Val::Value(7),
            &faulty,
            &mut SmAdversary {
                sender_claims: &mut sender_claims,
                relay_action: &mut relay_action,
            },
        );
        for r in [1usize, 4] {
            assert_eq!(d[&n(r)], Val::Value(7));
        }
    }

    #[test]
    fn exhaustive_withholding_never_splits_small_system() {
        // Enumerate ALL withholding behaviours of one faulty relayer under
        // a two-faced sender on 4 nodes, SM(2): consistency always holds.
        // Relay decision points for relayer 1: messages (value from 0) x
        // receivers {2,3} x both values -> 4 independent booleans.
        for mask in 0u32..16 {
            let faulty: BTreeSet<_> = [n(0), n(1)].into_iter().collect();
            let mut sender_claims =
                |r: NodeId| Some(Val::Value(if r.index() == 1 { 1 } else { 2 }));
            let mut relay_action = move |relayer: NodeId, chain: &[NodeId], r: NodeId| {
                if relayer != n(1) {
                    return SmRelayAction::Forward;
                }
                // bit index: by (receiver, which value it would carry) —
                // approximate by chain length + receiver parity
                let bit = (chain.len() % 2) * 2 + (r.index() % 2);
                if mask & (1 << bit) != 0 {
                    SmRelayAction::Withhold
                } else {
                    SmRelayAction::Forward
                }
            };
            let d = run_sm(
                4,
                2,
                n(0),
                &Val::Value(0),
                &faulty,
                &mut SmAdversary {
                    sender_claims: &mut sender_claims,
                    relay_action: &mut relay_action,
                },
            );
            assert!(consistent(&d, &faulty), "mask {mask}: {d:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least m + 2")]
    fn too_few_nodes_rejected() {
        run_sm_honest(2, 1, n(0), &Val::Value(1));
    }
}
