//! Sans-io per-node protocol logic for algorithm BYZ.
//!
//! [`crate::protocol`] runs the whole protocol inside one closure handed
//! to the simulator — fine for differential testing, useless for running a
//! node over a real network. This module extracts the per-node logic into
//! a [`NodeStateMachine`] that performs **no I/O**: it consumes
//! [`Event`]s (a message delivery, a round timeout) and emits
//! [`Action`]s (send a message, decide). What delivers the events — the
//! deterministic simulator, in-process channels, or a TCP mesh — lives
//! behind a `Transport` trait in the `transport` crate; the protocol logic
//! is byte-for-byte the same on every backend, which is what makes the
//! sim-vs-real differential gate meaningful.
//!
//! The round structure is emergent: the machine does not tick rounds
//! itself. Its transport fires [`Event::Timeout`] for round `r` when, by
//! its own clock, everything that will arrive for round `r` has arrived —
//! that timeout *is* the paper's message-absence detection (assumption
//! (b)). Messages delivered between timeouts are buffered and classified
//! only when the round closes: a path of the current level is an on-time
//! relay (recorded and re-relayed), a path of an earlier level is a late
//! envelope (recorded as a direct observation, never relayed), anything
//! malformed reads as absent. This matches [`crate::protocol`]'s
//! treatment exactly, so a lockstep drive of `n` machines reproduces
//! `run_protocol` decisions bit-for-bit (pinned by tests here and by the
//! differential suite).

use crate::adversary::Strategy;
use crate::byz::ByzInstance;
use crate::eig::{prunable_path, EigView, VoteRule};
use crate::path::Path;
use crate::protocol::ByzMsg;
use crate::value::AgreementValue;
use simnet::NodeId;
use std::collections::BTreeSet;
use std::hash::Hash;

/// An input to the state machine: something the transport observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event<V> {
    /// A protocol envelope arrived from `src` (the transport-authenticated
    /// source, per the paper's oral-message assumption (c) — the state
    /// machine trusts it, so transports must stamp it honestly).
    Deliver {
        /// True originator of the envelope.
        src: NodeId,
        /// The envelope.
        msg: ByzMsg<V>,
    },
    /// Round `round` has closed: every message that will be delivered for
    /// it has been delivered, everything else is *absent* (assumption (b)).
    Timeout {
        /// The round that just closed (0-based; round 0 opens the run).
        round: usize,
    },
}

/// An output of the state machine: something the transport must perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<V> {
    /// Hand `msg` to node `to` (delivery may fail — faults are the
    /// transport's business, absence handling is the machine's).
    Send {
        /// Destination node.
        to: NodeId,
        /// The envelope.
        msg: ByzMsg<V>,
    },
    /// The final round closed and this receiver decided `value`.
    Decide {
        /// The agreement decision.
        value: AgreementValue<V>,
    },
}

/// The per-node BYZ protocol engine, sans-io.
///
/// Feed it [`Event`]s via [`NodeStateMachine::on_event`]; execute the
/// [`Action`]s it returns. After the round-`depth` timeout the machine is
/// [`NodeStateMachine::is_done`]; receivers (every node but the sender)
/// additionally emit [`Action::Decide`].
#[derive(Debug, Clone)]
pub struct NodeStateMachine<V> {
    me: NodeId,
    n: usize,
    sender: NodeId,
    depth: usize,
    rule: VoteRule,
    sender_value: AgreementValue<V>,
    strategy: Option<Strategy<V>>,
    view: EigView<V>,
    pending: Vec<(NodeId, ByzMsg<V>)>,
    next_round: usize,
    decided: Option<AgreementValue<V>>,
    early_stop: Option<BTreeSet<NodeId>>,
    subtrees_pruned: u64,
    messages_saved: u64,
}

impl<V: Clone + Ord + Hash> NodeStateMachine<V> {
    /// A fresh machine for node `me` of `instance`.
    ///
    /// `sender_value` is the value the sender proposes (ignored on other
    /// nodes). `strategy` makes the node Byzantine; `None` is honest.
    pub fn new(
        instance: &ByzInstance,
        me: NodeId,
        sender_value: AgreementValue<V>,
        strategy: Option<Strategy<V>>,
    ) -> Self {
        NodeStateMachine {
            me,
            n: instance.n(),
            sender: instance.sender(),
            depth: instance.depth(),
            rule: instance.rule(),
            sender_value,
            strategy,
            view: EigView::new(instance.n(), instance.depth(), me),
            pending: Vec::new(),
            next_round: 0,
            decided: None,
            early_stop: None,
            subtrees_pruned: 0,
            messages_saved: 0,
        }
    }

    /// Arms certified-fault-set early stopping (DESIGN.md §5h): a relay
    /// whose received path `p` satisfies the prune criterion — `last(p)`
    /// fault-free and every certified fault already on `p` — is skipped,
    /// and the final decision folds through
    /// [`EigView::resolve_pruned`], which stops at exactly those paths.
    /// Every machine of a run must be armed with the *same* fault set,
    /// or honest nodes would disagree about which slots are absent by
    /// design versus absent by fault.
    pub fn with_early_stop(mut self, faulty: &BTreeSet<NodeId>) -> Self {
        self.early_stop = Some(faulty.clone());
        self
    }

    /// Whether early stopping is armed.
    pub fn early_stop_enabled(&self) -> bool {
        self.early_stop.is_some()
    }

    /// Subtrees this node declined to relay below (zero unless early
    /// stopping is armed). Every skip happens at a prune frontier: the
    /// path was received at all only because its own parent was *not*
    /// prunable.
    pub fn subtrees_pruned(&self) -> u64 {
        self.subtrees_pruned
    }

    /// Individual sends skipped by early stopping (zero unless armed).
    pub fn messages_saved(&self) -> u64 {
        self.messages_saved
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Total number of rounds the machine expects (`depth + 1` timeouts,
    /// rounds `0..=depth`).
    pub fn rounds(&self) -> usize {
        self.depth + 1
    }

    /// The next round timeout the machine expects.
    pub fn next_round(&self) -> usize {
        self.next_round
    }

    /// Whether the final round has closed (no further events expected).
    pub fn is_done(&self) -> bool {
        self.next_round > self.depth
    }

    /// The decision, once made. The sender never decides (the paper's
    /// conditions quantify over receivers only); receivers decide at the
    /// round-`depth` timeout.
    pub fn decided(&self) -> Option<&AgreementValue<V>> {
        self.decided.as_ref()
    }

    /// This node's EIG receive view — the exact fold input, exposed so
    /// differential gates can re-derive the decision through the
    /// reference [`EigView::resolve`] fold.
    pub fn view(&self) -> &EigView<V> {
        &self.view
    }

    /// Feeds one event, returning the actions it triggered (possibly
    /// none). Deliveries are buffered; all protocol work happens on
    /// timeouts.
    ///
    /// # Panics
    ///
    /// Panics on a timeout for any round other than the next expected one
    /// (transports own the clock, but they may not skip or repeat rounds),
    /// or on any event after the machine [`is done`](Self::is_done).
    pub fn on_event(&mut self, event: Event<V>) -> Vec<Action<V>> {
        match event {
            Event::Deliver { src, msg } => {
                assert!(!self.is_done(), "delivery after the final timeout");
                self.pending.push((src, msg));
                Vec::new()
            }
            Event::Timeout { round } => {
                assert_eq!(
                    round, self.next_round,
                    "timeout for round {round} but node {} expects round {}",
                    self.me, self.next_round
                );
                assert!(!self.is_done(), "timeout after the final round");
                self.next_round += 1;
                self.close_round(round)
            }
        }
    }

    /// Round `round` just closed: fold everything that arrived for it,
    /// then send this round's messages (root broadcast in round 0, relays
    /// afterwards) and decide at the final round.
    fn close_round(&mut self, round: usize) -> Vec<Action<V>> {
        let mut actions = Vec::new();
        let mut to_relay: Vec<(Path, AgreementValue<V>)> = Vec::new();
        if round >= 1 {
            for (src, msg) in std::mem::take(&mut self.pending) {
                // Same validation as `crate::protocol`: a path of level
                // `< round` is a late envelope — its relay slot has
                // passed but the direct observation still folds in.
                // Malformed paths (impersonated, self-referential, from a
                // future level, not sender-rooted, repetitive, or past
                // the tree depth — the ones the arena refuses to intern)
                // read as absent.
                let valid = msg.path.len() <= round
                    && !msg.path.is_empty()
                    && msg.path.last() == src
                    && !msg.path.contains(self.me)
                    && msg.path.sender() == self.sender
                    && msg.path.len() <= self.depth
                    && repetition_free(&msg.path);
                if !valid {
                    continue;
                }
                let on_time = msg.path.len() == round;
                // First write wins: duplicated envelopes fold
                // idempotently.
                let fresh = self.view.record(msg.path.clone(), msg.value.clone());
                if fresh && on_time && round < self.depth {
                    to_relay.push((msg.path, msg.value));
                }
            }
        }
        if round == 0 {
            if self.me == self.sender {
                let root = Path::root(self.sender);
                let value = self.sender_value.clone();
                self.send_claims(&root, &value, &mut actions);
            }
        } else {
            for (path, value) in to_relay {
                if let Some(faulty) = &self.early_stop {
                    if prunable_path(&path, faulty) {
                        // The subtree below `path` fills uniformly with
                        // the value every receiver already holds, so
                        // the whole fan-out is traffic without
                        // information.
                        self.subtrees_pruned += 1;
                        self.messages_saved += (self.n - path.len() - 1) as u64;
                        continue;
                    }
                }
                let child = path.child(self.me);
                self.send_claims(&child, &value, &mut actions);
            }
        }
        if round == self.depth && self.me != self.sender {
            let value = match &self.early_stop {
                Some(faulty) => self.view.resolve_pruned(self.sender, self.rule, faulty),
                None => self.view.resolve(self.sender, self.rule),
            };
            self.decided = Some(value.clone());
            actions.push(Action::Decide { value });
        }
        actions
    }

    /// Emits one send per eligible receiver of `child`, routing the
    /// truthful value through this node's strategy (Byzantine nodes
    /// fabricate per-receiver claims; `Silent` sends nothing).
    fn send_claims(
        &self,
        child: &Path,
        truthful: &AgreementValue<V>,
        actions: &mut Vec<Action<V>>,
    ) {
        for r in NodeId::all(self.n) {
            if child.contains(r) {
                continue;
            }
            let claim = match &self.strategy {
                None => Some(truthful.clone()),
                Some(Strategy::Silent) => None,
                Some(s) => Some(s.claim(child, r, truthful)),
            };
            if let Some(value) = claim {
                actions.push(Action::Send {
                    to: r,
                    msg: ByzMsg {
                        path: child.clone(),
                        value,
                    },
                });
            }
        }
    }
}

/// Whether no node appears twice on `path` (the arena interns only
/// repetition-free labels; anything else reads as absent).
fn repetition_free(path: &Path) -> bool {
    let s = path.as_slice();
    s.iter()
        .enumerate()
        .all(|(i, a)| s[i + 1..].iter().all(|b| a != b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::protocol::run_protocol;
    use crate::value::Val;
    use std::collections::BTreeMap;

    fn nid(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn instance(nodes: usize, m: usize, u: usize) -> ByzInstance {
        ByzInstance::new(nodes, Params::new(m, u).unwrap(), nid(0)).unwrap()
    }

    /// Reference harness: drives `n` machines in lockstep with a perfect
    /// network (every send delivered next round).
    fn drive_lockstep(
        inst: &ByzInstance,
        sender_value: &Val,
        strategies: &BTreeMap<NodeId, Strategy<u64>>,
    ) -> BTreeMap<NodeId, Val> {
        let n = inst.n();
        let mut machines: Vec<NodeStateMachine<u64>> = (0..n)
            .map(|i| {
                NodeStateMachine::new(
                    inst,
                    nid(i),
                    *sender_value,
                    strategies.get(&nid(i)).cloned(),
                )
            })
            .collect();
        let mut mailboxes: Vec<Vec<(NodeId, ByzMsg<u64>)>> = vec![Vec::new(); n];
        let mut decisions = BTreeMap::new();
        for round in 0..machines[0].rounds() {
            for (i, machine) in machines.iter_mut().enumerate() {
                for (src, msg) in std::mem::take(&mut mailboxes[i]) {
                    let out = machine.on_event(Event::Deliver { src, msg });
                    assert!(out.is_empty(), "deliveries must not trigger actions");
                }
            }
            let mut outgoing: Vec<(NodeId, NodeId, ByzMsg<u64>)> = Vec::new();
            for (i, machine) in machines.iter_mut().enumerate() {
                for action in machine.on_event(Event::Timeout { round }) {
                    match action {
                        Action::Send { to, msg } => outgoing.push((nid(i), to, msg)),
                        Action::Decide { value } => {
                            decisions.insert(nid(i), value);
                        }
                    }
                }
            }
            for (src, to, msg) in outgoing {
                mailboxes[to.index()].push((src, msg));
            }
        }
        for m in &machines {
            assert!(m.is_done());
        }
        decisions
    }

    #[test]
    fn lockstep_machines_match_run_protocol() {
        // The extraction proof: on a fault-free network, n state machines
        // decide exactly what the monolithic protocol run decides, across
        // instance shapes and the whole adversary battery.
        for (nodes, m, u) in [(4usize, 1usize, 1usize), (5, 1, 2), (7, 2, 2)] {
            let inst = instance(nodes, m, u);
            let mut batteries: Vec<BTreeMap<NodeId, Strategy<u64>>> = vec![BTreeMap::new()];
            for (_, strat) in Strategy::battery(1, 2, 7) {
                batteries.push([(nid(nodes - 1), strat.clone())].into_iter().collect());
                batteries.push(
                    [(nid(0), strat), (nid(1), Strategy::Silent)]
                        .into_iter()
                        .collect(),
                );
            }
            for strategies in batteries {
                let reference = run_protocol(&inst, &Val::Value(7), &strategies, 1).decisions;
                let machines = drive_lockstep(&inst, &Val::Value(7), &strategies);
                assert_eq!(
                    reference, machines,
                    "N={nodes} m={m} u={u} strategies={strategies:?}"
                );
            }
        }
    }

    /// Like `drive_lockstep`, with every machine armed for early
    /// stopping against the strategy keys as the certified fault set.
    /// Returns decisions plus the pruning totals across all machines.
    fn drive_lockstep_early(
        inst: &ByzInstance,
        sender_value: &Val,
        strategies: &BTreeMap<NodeId, Strategy<u64>>,
    ) -> (BTreeMap<NodeId, Val>, u64, u64) {
        let n = inst.n();
        let faulty: std::collections::BTreeSet<NodeId> = strategies.keys().copied().collect();
        let mut machines: Vec<NodeStateMachine<u64>> = (0..n)
            .map(|i| {
                NodeStateMachine::new(
                    inst,
                    nid(i),
                    *sender_value,
                    strategies.get(&nid(i)).cloned(),
                )
                .with_early_stop(&faulty)
            })
            .collect();
        let mut mailboxes: Vec<Vec<(NodeId, ByzMsg<u64>)>> = vec![Vec::new(); n];
        let mut decisions = BTreeMap::new();
        for round in 0..machines[0].rounds() {
            for (i, machine) in machines.iter_mut().enumerate() {
                for (src, msg) in std::mem::take(&mut mailboxes[i]) {
                    machine.on_event(Event::Deliver { src, msg });
                }
            }
            let mut outgoing: Vec<(NodeId, NodeId, ByzMsg<u64>)> = Vec::new();
            for (i, machine) in machines.iter_mut().enumerate() {
                for action in machine.on_event(Event::Timeout { round }) {
                    match action {
                        Action::Send { to, msg } => outgoing.push((nid(i), to, msg)),
                        Action::Decide { value } => {
                            decisions.insert(nid(i), value);
                        }
                    }
                }
            }
            for (src, to, msg) in outgoing {
                mailboxes[to.index()].push((src, msg));
            }
        }
        let pruned = machines.iter().map(|m| m.subtrees_pruned()).sum();
        let saved = machines.iter().map(|m| m.messages_saved()).sum();
        (decisions, pruned, saved)
    }

    #[test]
    fn early_stopped_machines_match_run_protocol_and_save_messages() {
        // Early stopping must be decision-invisible: armed machines
        // decide exactly what the monolithic protocol decides, while
        // genuinely skipping sends whenever the certified fault set is
        // already exhausted on a path.
        for (nodes, m, u) in [(4usize, 1usize, 1usize), (5, 1, 2), (7, 2, 2)] {
            let inst = instance(nodes, m, u);
            let mut batteries: Vec<BTreeMap<NodeId, Strategy<u64>>> = vec![BTreeMap::new()];
            for (_, strat) in Strategy::battery(1, 2, 11) {
                batteries.push([(nid(nodes - 1), strat.clone())].into_iter().collect());
                batteries.push(
                    [(nid(1), strat), (nid(2), Strategy::Silent)]
                        .into_iter()
                        .collect(),
                );
            }
            for strategies in batteries {
                let reference = run_protocol(&inst, &Val::Value(7), &strategies, 1).decisions;
                let (decisions, pruned, saved) =
                    drive_lockstep_early(&inst, &Val::Value(7), &strategies);
                assert_eq!(
                    reference, decisions,
                    "N={nodes} m={m} u={u} strategies={strategies:?}"
                );
                if strategies.is_empty() {
                    assert!(pruned > 0, "fault-free runs prune (N={nodes})");
                    assert!(saved > 0, "fault-free runs save sends (N={nodes})");
                }
            }
        }
    }

    #[test]
    fn late_envelope_folds_as_direct_observation_only() {
        // A relay delivered one round late must enter the view but never
        // be re-relayed — mirroring the reordering semantics of the
        // monolithic protocol.
        let inst = instance(5, 1, 2);
        let mut machine: NodeStateMachine<u64> =
            NodeStateMachine::new(&inst, nid(1), Val::Value(7), None);
        assert!(machine.on_event(Event::Timeout { round: 0 }).is_empty());
        // Root envelope [0] (level 1) arrives late: delivered after the
        // round-1 timeout, processed at round 2.
        assert!(machine.on_event(Event::Timeout { round: 1 }).is_empty());
        machine.on_event(Event::Deliver {
            src: nid(0),
            msg: ByzMsg {
                path: Path::root(nid(0)),
                value: Val::Value(7),
            },
        });
        let actions = machine.on_event(Event::Timeout { round: 2 });
        assert!(
            actions.iter().all(|a| !matches!(a, Action::Send { .. })),
            "late envelope must not be relayed: {actions:?}"
        );
        assert_eq!(machine.view().seen(&Path::root(nid(0))), Val::Value(7));
    }

    #[test]
    fn malformed_envelopes_read_as_absent() {
        let inst = instance(5, 1, 2);
        let mut machine: NodeStateMachine<u64> =
            NodeStateMachine::new(&inst, nid(1), Val::Value(7), None);
        machine.on_event(Event::Timeout { round: 0 });
        let root = Path::root(nid(0));
        // Impersonation: src does not match the path's last element.
        machine.on_event(Event::Deliver {
            src: nid(2),
            msg: ByzMsg {
                path: root.clone(),
                value: Val::Value(9),
            },
        });
        // Future level: a depth-2 path during round 1.
        machine.on_event(Event::Deliver {
            src: nid(2),
            msg: ByzMsg {
                path: root.child(nid(2)),
                value: Val::Value(9),
            },
        });
        // Not sender-rooted.
        machine.on_event(Event::Deliver {
            src: nid(2),
            msg: ByzMsg {
                path: Path::root(nid(2)),
                value: Val::Value(9),
            },
        });
        machine.on_event(Event::Timeout { round: 1 });
        assert!(
            machine.view().is_empty(),
            "all malformed envelopes must read as absent"
        );
    }

    #[test]
    fn duplicate_envelopes_fold_idempotently() {
        let inst = instance(5, 1, 2);
        let mut machine: NodeStateMachine<u64> =
            NodeStateMachine::new(&inst, nid(1), Val::Value(7), None);
        machine.on_event(Event::Timeout { round: 0 });
        for value in [7u64, 9] {
            machine.on_event(Event::Deliver {
                src: nid(0),
                msg: ByzMsg {
                    path: Path::root(nid(0)),
                    value: Val::Value(value),
                },
            });
        }
        let actions = machine.on_event(Event::Timeout { round: 1 });
        // Exactly one relay fan-out (first copy), not two.
        let sends = actions
            .iter()
            .filter(|a| matches!(a, Action::Send { .. }))
            .count();
        assert_eq!(sends, 3, "one relay to each of the 3 eligible receivers");
        assert_eq!(machine.view().seen(&Path::root(nid(0))), Val::Value(7));
    }

    #[test]
    fn sender_is_done_without_deciding() {
        let inst = instance(4, 1, 1);
        let mut machine: NodeStateMachine<u64> =
            NodeStateMachine::new(&inst, nid(0), Val::Value(7), None);
        let mut last = Vec::new();
        for round in 0..machine.rounds() {
            last = machine.on_event(Event::Timeout { round });
        }
        assert!(machine.is_done());
        assert!(machine.decided().is_none(), "the sender never decides");
        assert!(last.iter().all(|a| !matches!(a, Action::Decide { .. })));
    }

    #[test]
    #[should_panic(expected = "expects round")]
    fn skipped_timeout_panics() {
        let inst = instance(4, 1, 1);
        let mut machine: NodeStateMachine<u64> =
            NodeStateMachine::new(&inst, nid(1), Val::Value(7), None);
        machine.on_event(Event::Timeout { round: 1 });
    }
}
