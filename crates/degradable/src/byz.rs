//! Algorithm BYZ — the paper's `m/u`-degradable agreement protocol
//! (Section 4).
//!
//! BYZ(m, m) is a recursive oral-messages protocol. Unfolded into
//! message-passing form it runs `m + 1` rounds (sender round plus `m` relay
//! rounds) and resolves the gathered values bottom-up with the threshold
//! vote `VOTE(n' - 1 - m, n' - 1)`, where `n'` is the size of each
//! sub-instance. Theorem 1 of the paper: BYZ(m, m) achieves
//! `m/u`-degradable agreement whenever `N > 2m + u`.
//!
//! ## The `m = 0` base case
//!
//! The paper omits the algorithm for `m = 0`. We reconstruct it as the
//! one-echo-round protocol: the sender broadcasts, every receiver echoes
//! the received value, and each receiver applies the unanimity vote
//! `VOTE(n-1, n-1)` — i.e. the same message pattern as BYZ(1, m) with the
//! `m = 0` threshold. Correctness for `0/u`-degradable agreement with
//! `N > u`:
//!
//! * `f = 0` (conditions D.1/D.2): all nodes are fault-free, every receiver
//!   sees `n-1` identical copies of the sender's value and decides it.
//! * `0 < f <= u`, sender fault-free (D.3): every fault-free receiver's
//!   multiset contains the sender's value `α` from itself and every
//!   fault-free peer; a faulty echo can only break unanimity, so each
//!   fault-free receiver decides `α` or `V_d` — at most two classes, one
//!   default.
//! * `0 < f <= u`, sender faulty (D.4): for a fault-free receiver to decide
//!   `ω != V_d` it needs all `n-1` values equal to `ω`, including the
//!   echoes of every fault-free peer — so every fault-free receiver
//!   received `ω` from the sender, and any receiver not deciding `ω` (due
//!   to faulty echoes) decides `V_d`. Non-default decisions are therefore
//!   identical.
//!
//! This reconstruction is exercised by the `0/6`-degradable arm of the
//! seven-node trade-off experiment (E3).

use crate::eig::{run_eig, Fabricate, VoteRule};
use crate::params::Params;
use crate::value::AgreementValue;
use serde::{Deserialize, Serialize};
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Error constructing a [`ByzInstance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzError {
    /// The node count violates `n > 2m + u` (Theorem 2 bound).
    TooFewNodes {
        /// Offered node count.
        n: usize,
        /// Required minimum (`2m + u + 1`).
        required: usize,
    },
    /// The sender id is not in `0..n`.
    SenderOutOfRange {
        /// Offending sender.
        sender: NodeId,
        /// Node count.
        n: usize,
    },
}

impl fmt::Display for ByzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ByzError::TooFewNodes { n, required } => {
                write!(
                    f,
                    "{n} nodes given but degradable agreement needs at least {required}"
                )
            }
            ByzError::SenderOutOfRange { sender, n } => {
                write!(f, "sender {sender} out of range for {n} nodes")
            }
        }
    }
}

impl std::error::Error for ByzError {}

/// A configured instance of algorithm BYZ: `n` fully connected nodes, one
/// designated sender, and the `(m, u)` parameters.
///
/// ```
/// use degradable::{ByzInstance, Params, Val};
/// use simnet::NodeId;
/// use std::collections::BTreeSet;
///
/// let inst = ByzInstance::new(5, Params::new(1, 2)?, NodeId::new(0))?;
/// // No faults: everyone decides the sender's value.
/// let decisions = inst.run_reference(
///     &Val::Value(7),
///     &BTreeSet::new(),
///     &mut |_, _, truthful: &Val| truthful.clone(),
/// );
/// assert!(decisions.values().all(|v| *v == Val::Value(7)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ByzInstance {
    n: usize,
    params: Params,
    sender: NodeId,
}

impl ByzInstance {
    /// Creates an instance, validating the Theorem 2 node-count bound.
    ///
    /// # Errors
    ///
    /// * [`ByzError::TooFewNodes`] when `n <= 2m + u`;
    /// * [`ByzError::SenderOutOfRange`] when the sender id is not < `n`.
    pub fn new(n: usize, params: Params, sender: NodeId) -> Result<Self, ByzError> {
        if !params.admits(n) {
            return Err(ByzError::TooFewNodes {
                n,
                required: params.min_nodes(),
            });
        }
        if sender.index() >= n {
            return Err(ByzError::SenderOutOfRange { sender, n });
        }
        Ok(ByzInstance { n, params, sender })
    }

    /// Creates an instance **without** the node-count check. Only used by
    /// lower-bound experiments that deliberately run BYZ below the bound to
    /// exhibit the resulting violations.
    pub fn new_below_bound(n: usize, params: Params, sender: NodeId) -> Result<Self, ByzError> {
        if sender.index() >= n {
            return Err(ByzError::SenderOutOfRange { sender, n });
        }
        Ok(ByzInstance { n, params, sender })
    }

    /// Node count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Agreement parameters.
    pub fn params(&self) -> Params {
        self.params
    }

    /// The designated sender.
    pub fn sender(&self) -> NodeId {
        self.sender
    }

    /// Protocol depth in rounds (`m + 1`, or 2 for the `m = 0` base case).
    pub fn depth(&self) -> usize {
        self.params.rounds()
    }

    /// The vote rule used at every fold level.
    pub fn rule(&self) -> VoteRule {
        VoteRule::Degradable { m: self.params.m() }
    }

    /// Runs BYZ via the reference executor: no message objects, the
    /// adversary is a behaviour function (see [`crate::eig::run_eig`]).
    ///
    /// Returns each receiver's decision (faulty receivers included; filter
    /// with the fault set for condition checking).
    pub fn run_reference<V: Clone + Ord>(
        &self,
        sender_value: &AgreementValue<V>,
        faulty: &BTreeSet<NodeId>,
        fabricate: Fabricate<'_, V>,
    ) -> BTreeMap<NodeId, AgreementValue<V>> {
        run_eig(
            self.n,
            self.sender,
            self.depth(),
            self.rule(),
            sender_value,
            faulty,
            fabricate,
        )
    }

    /// Builds the arena-backed engine for this instance shape
    /// ([`crate::engine::EigEngine`]). The arena depends only on
    /// `(n, sender, depth)`, so one engine serves every adversary,
    /// fault set and sender value of the instance — build it once per
    /// sweep and pass it to [`ByzInstance::run_engine`].
    pub fn engine(&self) -> crate::engine::EigEngine {
        crate::engine::EigEngine::new(self.n, self.sender, self.depth())
    }

    /// Runs BYZ via the arena-backed engine: decisions bit-identical to
    /// [`ByzInstance::run_reference`], evaluated iteratively with
    /// shared-prefix memoization (see [`crate::engine`]).
    pub fn run_engine<V: Clone + Ord + Send + Sync>(
        &self,
        engine: &crate::engine::EigEngine,
        sender_value: &AgreementValue<V>,
        faulty: &BTreeSet<NodeId>,
        fabricate: Fabricate<'_, V>,
    ) -> crate::engine::EngineRun<V> {
        debug_assert_eq!(engine.arena().n(), self.n);
        debug_assert_eq!(engine.arena().sender(), self.sender);
        debug_assert_eq!(engine.arena().depth(), self.depth());
        engine.run(self.rule(), sender_value, faulty, fabricate)
    }
}

impl fmt::Display for ByzInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BYZ({m},{m}) on {n} nodes ({params}, sender {s})",
            m = self.params.m(),
            n = self.n,
            params = self.params,
            s = self.sender
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::Path;
    use crate::value::Val;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn inst(nodes: usize, m: usize, u: usize) -> ByzInstance {
        ByzInstance::new(nodes, Params::new(m, u).unwrap(), n(0)).unwrap()
    }

    #[test]
    fn node_bound_enforced() {
        let p = Params::new(1, 2).unwrap();
        assert!(matches!(
            ByzInstance::new(4, p, n(0)),
            Err(ByzError::TooFewNodes { required: 5, .. })
        ));
        assert!(ByzInstance::new(5, p, n(0)).is_ok());
    }

    #[test]
    fn sender_range_enforced() {
        let p = Params::new(1, 2).unwrap();
        assert!(matches!(
            ByzInstance::new(5, p, n(5)),
            Err(ByzError::SenderOutOfRange { .. })
        ));
    }

    #[test]
    fn d1_holds_with_m_faulty_receivers() {
        // 1/2-degradable on 5 nodes; 1 faulty receiver lies arbitrarily.
        let i = inst(5, 1, 2);
        let faulty: BTreeSet<_> = [n(3)].into_iter().collect();
        let mut fab = |_p: &Path, r: NodeId, _t: &Val| Val::Value(100 + r.index() as u64);
        let d = i.run_reference(&Val::Value(7), &faulty, &mut fab);
        for r in [1, 2, 4] {
            assert_eq!(d[&n(r)], Val::Value(7), "receiver {r}");
        }
    }

    #[test]
    fn d3_holds_with_u_faulty_receivers() {
        // 1/2-degradable on 5 nodes; 2 faulty receivers conspire.
        let i = inst(5, 1, 2);
        let faulty: BTreeSet<_> = [n(3), n(4)].into_iter().collect();
        let mut fab = |_p: &Path, _r: NodeId, _t: &Val| Val::Value(99);
        let d = i.run_reference(&Val::Value(7), &faulty, &mut fab);
        for r in [1, 2] {
            let v = &d[&n(r)];
            assert!(
                *v == Val::Value(7) || *v == Val::Default,
                "receiver {r} decided {v}, violating D.3"
            );
        }
    }

    #[test]
    fn d4_nondefault_decisions_agree() {
        // Faulty sender plus one faulty receiver (f = 2 = u) on 5 nodes.
        let i = inst(5, 1, 2);
        let faulty: BTreeSet<_> = [n(0), n(4)].into_iter().collect();
        let mut fab = |p: &Path, r: NodeId, _t: &Val| {
            if p.len() == 1 {
                // two-faced sender
                Val::Value(if r.index().is_multiple_of(2) { 1 } else { 2 })
            } else {
                Val::Value(3)
            }
        };
        let d = i.run_reference(&Val::Value(0), &faulty, &mut fab);
        let nondefault: BTreeSet<_> = [n(1), n(2), n(3)]
            .iter()
            .map(|r| d[r])
            .filter(|v| !v.is_default())
            .collect();
        assert!(nondefault.len() <= 1, "non-default decisions differ: {d:?}");
    }

    #[test]
    fn m0_base_case_echo_round() {
        // 0/2-degradable on 3 nodes: two rounds, unanimity vote.
        let i = inst(3, 0, 2);
        assert_eq!(i.depth(), 2);
        // Faulty sender sends different values: both receivers fault-free,
        // echoes differ -> both decide V_d (identical value, D.2 with f<=u).
        let faulty: BTreeSet<_> = [n(0)].into_iter().collect();
        let mut fab = |_p: &Path, r: NodeId, _t: &Val| Val::Value(r.index() as u64);
        let d = i.run_reference(&Val::Value(0), &faulty, &mut fab);
        assert_eq!(d[&n(1)], Val::Default);
        assert_eq!(d[&n(2)], Val::Default);
    }

    #[test]
    fn classic_byzantine_when_m_equals_u() {
        // 2/2 on 7 nodes with 2 colluding liars: all fault-free receivers
        // agree on the sender's value (D.1).
        let i = inst(7, 2, 2);
        let faulty: BTreeSet<_> = [n(5), n(6)].into_iter().collect();
        let mut fab = |_p: &Path, _r: NodeId, _t: &Val| Val::Value(13);
        let d = i.run_reference(&Val::Value(4), &faulty, &mut fab);
        for r in 1..=4 {
            assert_eq!(d[&n(r)], Val::Value(4), "receiver {r}");
        }
    }

    #[test]
    fn display_summarizes() {
        let i = inst(5, 1, 2);
        assert_eq!(
            i.to_string(),
            "BYZ(1,1) on 5 nodes (1/2-degradable, sender n0)"
        );
    }
}
