//! Checkers for the paper's agreement conditions.
//!
//! `m/u`-degradable agreement (Section 2) requires, with `f` faulty nodes:
//!
//! * `f <= m`:
//!   * **D.1** — fault-free sender: all fault-free receivers agree on the
//!     sender's value;
//!   * **D.2** — faulty sender: all fault-free receivers agree on one
//!     identical value.
//! * `m < f <= u`:
//!   * **D.3** — fault-free sender: fault-free receivers split into at most
//!     two classes, one agreeing on the sender's value, the other on `V_d`;
//!   * **D.4** — faulty sender: at most two classes, one on `V_d`, the
//!     other on some single identical value.
//!
//! The corollary checked by [`largest_fault_free_class`]: with
//! `N > 2m + u`, at least `m + 1` fault-free nodes (sender included) agree
//! on an identical value whenever `f <= u`.
//!
//! These checkers consume a [`RunRecord`] — a protocol-agnostic snapshot of
//! one execution — so the same code audits BYZ, the baselines, the
//! message-passing executor and the sparse-network executor.

use crate::params::Params;
use crate::value::AgreementValue;
use serde::{Deserialize, Serialize};
use simnet::NodeId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Snapshot of one agreement execution, sufficient to decide every paper
/// condition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunRecord<V: Ord> {
    /// Agreement parameters in force.
    pub params: Params,
    /// Total number of nodes (sender + receivers).
    pub n: usize,
    /// The designated sender.
    pub sender: NodeId,
    /// The sender's (intended) value. For a faulty sender this is the
    /// nominal value it was given; conditions D.2/D.4 do not reference it.
    pub sender_value: AgreementValue<V>,
    /// The set of faulty nodes (any fault kind).
    pub faulty: BTreeSet<NodeId>,
    /// Every receiver's decision (faulty receivers' entries are ignored by
    /// the checkers).
    pub decisions: BTreeMap<NodeId, AgreementValue<V>>,
}

impl<V: Clone + Ord> RunRecord<V> {
    /// The number of faulty nodes (`f`).
    pub fn f(&self) -> usize {
        self.faulty.len()
    }

    /// Whether the sender is faulty.
    pub fn sender_faulty(&self) -> bool {
        self.faulty.contains(&self.sender)
    }

    /// Decisions of the fault-free receivers only, in id order.
    pub fn fault_free_decisions(&self) -> BTreeMap<NodeId, AgreementValue<V>> {
        self.decisions
            .iter()
            .filter(|(r, _)| !self.faulty.contains(r))
            .map(|(r, v)| (*r, v.clone()))
            .collect()
    }

    /// Groups the fault-free receivers by decided value, descending by
    /// class size (ties broken by value order).
    pub fn classes(&self) -> Vec<(AgreementValue<V>, usize)> {
        let mut counts: BTreeMap<AgreementValue<V>, usize> = BTreeMap::new();
        for v in self.fault_free_decisions().values() {
            *counts.entry(v.clone()).or_insert(0) += 1;
        }
        let mut classes: Vec<_> = counts.into_iter().collect();
        classes.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        classes
    }
}

/// The condition that applied to a satisfied run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Condition {
    /// Fault-free sender, `f <= m`.
    D1,
    /// Faulty sender, `f <= m`.
    D2,
    /// Fault-free sender, `m < f <= u`.
    D3,
    /// Faulty sender, `m < f <= u`.
    D4,
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::D1 => write!(f, "D.1"),
            Condition::D2 => write!(f, "D.2"),
            Condition::D3 => write!(f, "D.3"),
            Condition::D4 => write!(f, "D.4"),
        }
    }
}

/// Evidence of a satisfied condition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Satisfaction<V: Ord> {
    /// Which condition applied.
    pub condition: Condition,
    /// Fault-free receiver classes, largest first.
    pub classes: Vec<(AgreementValue<V>, usize)>,
    /// Size of the largest class of *fault-free nodes* (sender included if
    /// fault-free) agreeing on one identical value.
    pub largest_agreeing: usize,
}

/// A condition violation, with the offending evidence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Violation<V: Ord> {
    /// D.1: a fault-free receiver decided something other than the
    /// fault-free sender's value.
    NotSenderValue {
        /// The offending receiver.
        receiver: NodeId,
        /// What it decided.
        decided: AgreementValue<V>,
    },
    /// D.2: fault-free receivers decided differing values.
    Disagreement {
        /// The distinct decisions observed.
        values: Vec<AgreementValue<V>>,
    },
    /// D.3: a fault-free receiver decided a value that is neither the
    /// sender's value nor `V_d`.
    ForeignValue {
        /// The offending receiver.
        receiver: NodeId,
        /// What it decided.
        decided: AgreementValue<V>,
    },
    /// D.4: two fault-free receivers decided two distinct non-default
    /// values.
    TwoNonDefault {
        /// First non-default decision.
        a: AgreementValue<V>,
        /// Second, different non-default decision.
        b: AgreementValue<V>,
    },
}

impl<V: Ord + fmt::Debug> fmt::Display for Violation<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NotSenderValue { receiver, decided } => {
                write!(
                    f,
                    "D.1 violated: {receiver} decided {decided:?} instead of the sender's value"
                )
            }
            Violation::Disagreement { values } => {
                write!(
                    f,
                    "D.2 violated: fault-free receivers split over {values:?}"
                )
            }
            Violation::ForeignValue { receiver, decided } => {
                write!(
                    f,
                    "D.3 violated: {receiver} decided foreign value {decided:?}"
                )
            }
            Violation::TwoNonDefault { a, b } => {
                write!(f, "D.4 violated: two non-default decisions {a:?} and {b:?}")
            }
        }
    }
}

/// Overall verdict for one run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict<V: Ord> {
    /// The applicable condition holds.
    Satisfied(Satisfaction<V>),
    /// `f > u`: the definition makes no promise; nothing to check.
    BeyondU {
        /// Observed fault count.
        f: usize,
    },
    /// The applicable condition is violated.
    Violated(Violation<V>),
}

impl<V: Ord> Verdict<V> {
    /// Whether the run satisfied its applicable condition.
    pub fn is_satisfied(&self) -> bool {
        matches!(self, Verdict::Satisfied(_))
    }

    /// Whether the run violated its applicable condition.
    pub fn is_violated(&self) -> bool {
        matches!(self, Verdict::Violated(_))
    }
}

/// Size of the largest class of fault-free **nodes** (receivers plus the
/// sender, when fault-free) agreeing on one identical value. The paper's
/// Section 2 observation promises this is at least `m + 1` whenever
/// `N > 2m + u` and `f <= u`.
pub fn largest_fault_free_class<V: Clone + Ord>(rec: &RunRecord<V>) -> usize {
    let mut counts: BTreeMap<AgreementValue<V>, usize> = BTreeMap::new();
    for v in rec.fault_free_decisions().values() {
        *counts.entry(v.clone()).or_insert(0) += 1;
    }
    if !rec.sender_faulty() {
        *counts.entry(rec.sender_value.clone()).or_insert(0) += 1;
    }
    counts.values().copied().max().unwrap_or(0)
}

/// Checks the applicable `m/u`-degradable agreement condition for `rec`.
pub fn check_degradable<V: Clone + Ord>(rec: &RunRecord<V>) -> Verdict<V> {
    let f = rec.f();
    let (m, u) = (rec.params.m(), rec.params.u());
    if f > u {
        return Verdict::BeyondU { f };
    }
    let decisions = rec.fault_free_decisions();
    let satisfied = |condition: Condition| {
        Verdict::Satisfied(Satisfaction {
            condition,
            classes: rec.classes(),
            largest_agreeing: largest_fault_free_class(rec),
        })
    };
    match (rec.sender_faulty(), f <= m) {
        (false, true) => {
            // D.1: everyone decides the sender's value.
            for (r, v) in &decisions {
                if *v != rec.sender_value {
                    return Verdict::Violated(Violation::NotSenderValue {
                        receiver: *r,
                        decided: v.clone(),
                    });
                }
            }
            satisfied(Condition::D1)
        }
        (true, true) => {
            // D.2: all identical.
            let distinct: BTreeSet<_> = decisions.values().cloned().collect();
            if distinct.len() > 1 {
                return Verdict::Violated(Violation::Disagreement {
                    values: distinct.into_iter().collect(),
                });
            }
            satisfied(Condition::D2)
        }
        (false, false) => {
            // D.3: every decision is the sender's value or V_d.
            for (r, v) in &decisions {
                if *v != rec.sender_value && !v.is_default() {
                    return Verdict::Violated(Violation::ForeignValue {
                        receiver: *r,
                        decided: v.clone(),
                    });
                }
            }
            satisfied(Condition::D3)
        }
        (true, false) => {
            // D.4: at most one distinct non-default decision.
            let nondefault: BTreeSet<_> = decisions
                .values()
                .filter(|v| !v.is_default())
                .cloned()
                .collect();
            if nondefault.len() > 1 {
                let mut it = nondefault.into_iter();
                let a = it.next().expect("len > 1");
                let b = it.next().expect("len > 1");
                return Verdict::Violated(Violation::TwoNonDefault { a, b });
            }
            satisfied(Condition::D4)
        }
    }
}

/// Checks the classic interactive-consistency-style conditions for the OM
/// baseline (IC1: all fault-free receivers agree; IC2: if the sender is
/// fault-free they agree on its value). Valid promise only for `f <= m`.
pub fn check_byzantine<V: Clone + Ord>(rec: &RunRecord<V>) -> Verdict<V> {
    let f = rec.f();
    let m = rec.params.m();
    if f > m {
        return Verdict::BeyondU { f };
    }
    // Reuse the degradable checker: for f <= m it checks exactly IC1/IC2.
    check_degradable(rec)
}

/// Checks **weak** Byzantine agreement (Lamport, the paper's reference
/// \[6\]): for `f <= m`, all fault-free receivers must agree on one
/// identical value (agreement), and the agreed value must be the sender's
/// **only when no node at all is faulty** (weak validity). Any protocol
/// satisfying the strong conditions also satisfies these; the checker
/// exists so the baselines can be audited against the exact contract the
/// paper's opening sentence cites ("Byzantine agreement (weak \[6\] or
/// otherwise \[7\])").
pub fn check_weak_byzantine<V: Clone + Ord>(rec: &RunRecord<V>) -> Verdict<V> {
    let f = rec.f();
    let m = rec.params.m();
    if f > m {
        return Verdict::BeyondU { f };
    }
    let decisions = rec.fault_free_decisions();
    let distinct: BTreeSet<_> = decisions.values().cloned().collect();
    if distinct.len() > 1 {
        return Verdict::Violated(Violation::Disagreement {
            values: distinct.into_iter().collect(),
        });
    }
    if f == 0 {
        if let Some((r, v)) = decisions.iter().find(|(_, v)| **v != rec.sender_value) {
            return Verdict::Violated(Violation::NotSenderValue {
                receiver: *r,
                decided: v.clone(),
            });
        }
    }
    Verdict::Satisfied(Satisfaction {
        condition: if rec.sender_faulty() {
            Condition::D2
        } else {
            Condition::D1
        },
        classes: rec.classes(),
        largest_agreeing: largest_fault_free_class(rec),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Val;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn record(
        m: usize,
        u: usize,
        nn: usize,
        faulty: &[usize],
        sender_value: Val,
        decisions: &[(usize, Val)],
    ) -> RunRecord<u64> {
        RunRecord {
            params: Params::new(m, u).unwrap(),
            n: nn,
            sender: n(0),
            sender_value,
            faulty: faulty.iter().map(|&i| n(i)).collect(),
            decisions: decisions.iter().map(|&(i, v)| (n(i), v)).collect(),
        }
    }

    #[test]
    fn d1_satisfied() {
        let rec = record(
            1,
            2,
            5,
            &[3],
            Val::Value(7),
            &[
                (1, Val::Value(7)),
                (2, Val::Value(7)),
                (3, Val::Value(0)),
                (4, Val::Value(7)),
            ],
        );
        let v = check_degradable(&rec);
        match v {
            Verdict::Satisfied(s) => {
                assert_eq!(s.condition, Condition::D1);
                assert_eq!(s.largest_agreeing, 4); // 3 receivers + sender
            }
            other => panic!("expected satisfied, got {other:?}"),
        }
    }

    #[test]
    fn d1_violated_by_wrong_value() {
        let rec = record(
            1,
            2,
            5,
            &[3],
            Val::Value(7),
            &[
                (1, Val::Value(7)),
                (2, Val::Default),
                (3, Val::Value(0)),
                (4, Val::Value(7)),
            ],
        );
        assert!(matches!(
            check_degradable(&rec),
            Verdict::Violated(Violation::NotSenderValue { receiver, .. }) if receiver == n(2)
        ));
    }

    #[test]
    fn d2_satisfied_even_on_default() {
        let rec = record(
            1,
            2,
            5,
            &[0],
            Val::Value(7),
            &[
                (1, Val::Default),
                (2, Val::Default),
                (3, Val::Default),
                (4, Val::Default),
            ],
        );
        match check_degradable(&rec) {
            Verdict::Satisfied(s) => assert_eq!(s.condition, Condition::D2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn d2_violated_by_split() {
        let rec = record(
            1,
            2,
            5,
            &[0],
            Val::Value(7),
            &[
                (1, Val::Value(1)),
                (2, Val::Value(2)),
                (3, Val::Value(1)),
                (4, Val::Value(1)),
            ],
        );
        assert!(check_degradable(&rec).is_violated());
    }

    #[test]
    fn d3_satisfied_two_classes() {
        let rec = record(
            1,
            2,
            5,
            &[3, 4],
            Val::Value(7),
            &[
                (1, Val::Value(7)),
                (2, Val::Default),
                (3, Val::Value(0)),
                (4, Val::Value(0)),
            ],
        );
        match check_degradable(&rec) {
            Verdict::Satisfied(s) => {
                assert_eq!(s.condition, Condition::D3);
                // sender + receiver 1 agree on 7
                assert_eq!(s.largest_agreeing, 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn d3_violated_by_foreign_value() {
        let rec = record(
            1,
            2,
            5,
            &[3, 4],
            Val::Value(7),
            &[
                (1, Val::Value(9)),
                (2, Val::Default),
                (3, Val::Value(0)),
                (4, Val::Value(0)),
            ],
        );
        assert!(matches!(
            check_degradable(&rec),
            Verdict::Violated(Violation::ForeignValue {
                decided: Val::Value(9),
                ..
            })
        ));
    }

    #[test]
    fn d4_satisfied_one_nondefault_class() {
        let rec = record(
            1,
            2,
            5,
            &[0, 4],
            Val::Value(7),
            &[
                (1, Val::Value(3)),
                (2, Val::Default),
                (3, Val::Value(3)),
                (4, Val::Value(0)),
            ],
        );
        match check_degradable(&rec) {
            Verdict::Satisfied(s) => assert_eq!(s.condition, Condition::D4),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn d4_violated_by_two_nondefault() {
        let rec = record(
            1,
            2,
            5,
            &[0, 4],
            Val::Value(7),
            &[
                (1, Val::Value(3)),
                (2, Val::Value(5)),
                (3, Val::Value(3)),
                (4, Val::Value(0)),
            ],
        );
        assert!(matches!(
            check_degradable(&rec),
            Verdict::Violated(Violation::TwoNonDefault { .. })
        ));
    }

    #[test]
    fn beyond_u_is_out_of_scope() {
        let rec = record(
            1,
            2,
            5,
            &[1, 2, 3],
            Val::Value(7),
            &[
                (1, Val::Value(0)),
                (2, Val::Value(0)),
                (3, Val::Value(0)),
                (4, Val::Value(8)),
            ],
        );
        assert!(matches!(check_degradable(&rec), Verdict::BeyondU { f: 3 }));
    }

    #[test]
    fn byzantine_checker_scope() {
        // f = 2 > m = 1: the OM baseline promises nothing.
        let rec = record(
            1,
            1,
            4,
            &[2, 3],
            Val::Value(7),
            &[(1, Val::Value(9)), (2, Val::Value(0)), (3, Val::Value(0))],
        );
        assert!(matches!(check_byzantine(&rec), Verdict::BeyondU { f: 2 }));
    }

    #[test]
    fn weak_byzantine_allows_non_sender_value_with_faults() {
        // f = 1 <= m, everyone agrees on a value that is NOT the sender's:
        // strong validity would reject this; weak validity accepts it.
        let rec = record(
            1,
            1,
            4,
            &[3],
            Val::Value(7),
            &[(1, Val::Value(9)), (2, Val::Value(9)), (3, Val::Value(0))],
        );
        assert!(check_weak_byzantine(&rec).is_satisfied());
        assert!(check_byzantine(&rec).is_violated());
    }

    #[test]
    fn weak_byzantine_demands_validity_without_faults() {
        let rec = record(
            1,
            1,
            4,
            &[],
            Val::Value(7),
            &[(1, Val::Value(9)), (2, Val::Value(9)), (3, Val::Value(9))],
        );
        assert!(matches!(
            check_weak_byzantine(&rec),
            Verdict::Violated(Violation::NotSenderValue { .. })
        ));
    }

    #[test]
    fn weak_byzantine_demands_agreement() {
        let rec = record(
            1,
            1,
            4,
            &[0],
            Val::Value(7),
            &[(1, Val::Value(1)), (2, Val::Value(2)), (3, Val::Value(1))],
        );
        assert!(check_weak_byzantine(&rec).is_violated());
    }

    #[test]
    fn classes_sorted_by_size() {
        let rec = record(
            1,
            2,
            6,
            &[5],
            Val::Value(7),
            &[
                (1, Val::Default),
                (2, Val::Value(7)),
                (3, Val::Value(7)),
                (4, Val::Default),
                (5, Val::Value(1)),
            ],
        );
        let classes = rec.classes();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].1, 2);
    }

    #[test]
    fn largest_class_counts_sender() {
        // Sender fault-free with value 7; only one receiver decides 7, two
        // decide V_d: largest class is V_d at 2... plus sender's 7-class is
        // also 2; max = 2.
        let rec = record(
            1,
            2,
            5,
            &[4, 3],
            Val::Value(7),
            &[
                (1, Val::Value(7)),
                (2, Val::Default),
                (3, Val::Default),
                (4, Val::Default),
            ],
        );
        assert_eq!(largest_fault_free_class(&rec), 2);
    }
}
